"""Tests for repro.spatial: quadtree and r-tree baselines."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.bbox import WORLD, BBox
from repro.geo.point import Point
from repro.spatial.quadtree import QuadTree
from repro.spatial.rtree import RTree


def small_boxes(n=40, seed=7):
    """Deterministic list of small boxes scattered over a city area."""
    from random import Random

    rng = Random(seed)
    out = []
    for i in range(n):
        lat = rng.uniform(51.3, 51.7)
        lon = rng.uniform(-0.4, 0.1)
        d_lat = rng.uniform(0.001, 0.02)
        d_lon = rng.uniform(0.001, 0.02)
        out.append((i, BBox(lat, lon, lat + d_lat, lon + d_lon)))
    return out


def brute_force_query(entries, region):
    return sorted(k for k, box in entries if box.intersects(region))


REGIONS = [
    BBox(51.3, -0.4, 51.7, 0.1),
    BBox(51.4, -0.2, 51.5, -0.1),
    BBox(51.69, 0.05, 51.7, 0.1),
    BBox(0.0, 10.0, 1.0, 11.0),  # far away: empty
]


class TestQuadTree:
    def test_empty_query(self):
        tree = QuadTree()
        assert tree.query(WORLD) == []
        assert len(tree) == 0

    def test_insert_and_query_all(self):
        tree = QuadTree(node_capacity=4)
        entries = small_boxes()
        for key, box in entries:
            tree.insert(key, box)
        assert len(tree) == len(entries)
        assert sorted(tree.query(WORLD)) == sorted(k for k, _ in entries)

    @pytest.mark.parametrize("region", REGIONS)
    def test_query_matches_brute_force(self, region):
        tree = QuadTree(node_capacity=4)
        entries = small_boxes()
        for key, box in entries:
            tree.insert(key, box)
        assert sorted(tree.query(region)) == brute_force_query(entries, region)

    def test_out_of_bounds_insert_rejected(self):
        tree = QuadTree(bounds=BBox(0.0, 0.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            tree.insert("x", BBox(2.0, 2.0, 3.0, 3.0))

    def test_split_grows_depth(self):
        tree = QuadTree(node_capacity=2)
        for key, box in small_boxes(50):
            tree.insert(key, box)
        assert tree.depth() >= 1

    def test_insert_trajectory(self):
        tree = QuadTree()
        tree.insert_trajectory("t", [Point(51.5, -0.1), Point(51.6, -0.2)])
        assert tree.query(BBox(51.55, -0.15, 51.56, -0.14)) == ["t"]

    def test_iteration(self):
        tree = QuadTree(node_capacity=4)
        entries = small_boxes(10)
        for key, box in entries:
            tree.insert(key, box)
        assert sorted(k for k, _ in tree) == sorted(k for k, _ in entries)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QuadTree(node_capacity=0)
        with pytest.raises(ValueError):
            QuadTree(max_depth=0)


class TestRTree:
    def test_empty_query(self):
        tree = RTree()
        assert tree.query(WORLD) == []
        assert len(tree) == 0

    def test_insert_and_query_all(self):
        tree = RTree(max_entries=4)
        entries = small_boxes()
        for key, box in entries:
            tree.insert(key, box)
        assert len(tree) == len(entries)
        assert sorted(tree.query(WORLD)) == sorted(k for k, _ in entries)

    @pytest.mark.parametrize("region", REGIONS)
    def test_query_matches_brute_force(self, region):
        tree = RTree(max_entries=4)
        entries = small_boxes()
        for key, box in entries:
            tree.insert(key, box)
        assert sorted(tree.query(region)) == brute_force_query(entries, region)

    @given(st.integers(min_value=1, max_value=120))
    def test_height_grows_logarithmically(self, n):
        tree = RTree(max_entries=4)
        for key, box in small_boxes(n, seed=n):
            tree.insert(key, box)
        assert len(tree) == n
        # Height bounded by log_2(n) + constant for max_entries=4.
        assert tree.height() <= max(2, n.bit_length() + 1)

    def test_insert_trajectory(self):
        tree = RTree()
        tree.insert_trajectory("t", [Point(51.5, -0.1), Point(51.6, -0.2)])
        assert tree.query(BBox(51.55, -0.15, 51.56, -0.14)) == ["t"]

    def test_iteration(self):
        tree = RTree(max_entries=5)
        entries = small_boxes(25)
        for key, box in entries:
            tree.insert(key, box)
        assert sorted(k for k, _ in tree) == sorted(k for k, _ in entries)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_duplicate_boxes_supported(self):
        tree = RTree(max_entries=4)
        box = BBox(51.5, -0.1, 51.51, -0.09)
        for i in range(10):
            tree.insert(i, box)
        assert sorted(tree.query(box)) == list(range(10))
