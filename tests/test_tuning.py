"""Tests for repro.tuning: hill-climbing configuration search."""

import pytest

from repro.core.config import GeodabConfig
from repro.tuning.hillclimb import (
    EvaluatedConfig,
    _neighbours,
    evaluate_config,
    hill_climb,
)


class TestNeighbours:
    def test_six_moves_in_the_interior(self):
        config = GeodabConfig(normalization_depth=36, k=6, t=12)
        moves = _neighbours(config)
        assert len(moves) == 6
        assert all(isinstance(m, GeodabConfig) for m in moves)

    def test_constraints_respected(self):
        # k cannot drop below 2; t cannot drop below k.
        config = GeodabConfig(normalization_depth=36, k=2, t=2)
        moves = _neighbours(config)
        assert all(m.k >= 2 and m.t >= m.k for m in moves)

    def test_depth_bounds(self):
        config = GeodabConfig(normalization_depth=8, k=6, t=12)
        moves = _neighbours(config)
        assert all(m.normalization_depth >= 8 for m in moves)


class TestHillClimbWithSurrogate:
    """Drive the search with a synthetic objective to test the mechanics."""

    @staticmethod
    def _surrogate(optimum_depth=36, optimum_k=6, optimum_t=12):
        def score(config, dataset):
            return -(
                abs(config.normalization_depth - optimum_depth)
                + 2 * abs(config.k - optimum_k)
                + abs(config.t - optimum_t)
            )

        return score

    def test_converges_to_optimum(self, small_dataset):
        seed = GeodabConfig(normalization_depth=30, k=4, t=8)
        result = hill_climb(
            small_dataset, seed=seed, evaluator=self._surrogate()
        )
        assert result.best.config.normalization_depth == 36
        assert result.best.config.k == 6
        assert result.best.config.t == 12
        assert result.improved

    def test_already_optimal_stops_immediately(self, small_dataset):
        seed = GeodabConfig(normalization_depth=36, k=6, t=12)
        result = hill_climb(
            small_dataset, seed=seed, evaluator=self._surrogate()
        )
        assert not result.improved
        assert result.best.config == seed

    def test_max_steps_bounds_search(self, small_dataset):
        seed = GeodabConfig(normalization_depth=20, k=3, t=6)
        result = hill_climb(
            small_dataset, seed=seed, max_steps=2, evaluator=self._surrogate()
        )
        assert len(result.steps) <= 3  # seed + at most 2 moves

    def test_evaluations_are_cached(self, small_dataset):
        calls = []

        def counting(config, dataset):
            calls.append(config)
            return self._surrogate()(config, dataset)

        hill_climb(
            small_dataset,
            seed=GeodabConfig(normalization_depth=34, k=6, t=12),
            evaluator=counting,
        )
        assert len(calls) == len(set(calls))

    def test_invalid_max_steps(self, small_dataset):
        with pytest.raises(ValueError):
            hill_climb(small_dataset, max_steps=0)

    def test_steps_scores_monotone(self, small_dataset):
        result = hill_climb(
            small_dataset,
            seed=GeodabConfig(normalization_depth=28, k=4, t=10),
            evaluator=self._surrogate(),
        )
        scores = [step.score for step in result.steps]
        assert scores == sorted(scores)


class TestRealEvaluation:
    def test_evaluate_config_returns_map(self, small_dataset):
        score = evaluate_config(GeodabConfig(k=3, t=6), small_dataset)
        assert 0.0 <= score <= 1.0

    def test_evaluate_requires_queries(self, small_dataset):
        import dataclasses

        from repro.workload.dataset import TrajectoryDataset

        empty = TrajectoryDataset(records=list(small_dataset.records), queries=[])
        with pytest.raises(ValueError):
            evaluate_config(GeodabConfig(), empty)

    def test_real_hill_climb_one_step(self, small_dataset):
        # One bounded step with the true MAP objective: must not crash and
        # must never return something worse than the seed.
        seed = GeodabConfig(normalization_depth=36, k=3, t=6)
        result = hill_climb(small_dataset, seed=seed, max_steps=1)
        seed_score = [s for s in result.steps if s.config == seed][0].score
        assert result.best.score >= seed_score
