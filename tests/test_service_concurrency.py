"""Tests for the serving tier's concurrency story.

The invariant under test: a query served while a writer is ingesting
always reflects a *consistent generation* — the set of trajectories it
ranks is exactly the corpus after some whole write, never a half-applied
batch.  Writes here are applied one trajectory per generation, so every
valid answer set is a prefix of the ingest order.
"""

import threading

import pytest

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.service import IndexService, QueryExecutor, ReadWriteLock

CONFIG = GeodabConfig(k=3, t=5)


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        entered = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                entered.wait()  # all three readers inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        observed = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                observed.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=0.1)
        assert observed == []  # reader blocked behind the writer
        lock.release_write()
        thread.join(timeout=5)
        assert observed == ["read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_done = threading.Event()

        def writer():
            with lock.write_locked():
                writer_done.set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        # Give the writer time to queue up, then try a new reader: it
        # must wait behind the announced writer.
        late = []

        def late_reader():
            with lock.read_locked():
                late.append(True)

        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        reader_thread.join(timeout=0.1)
        assert late == [] and not writer_done.is_set()
        lock.release_read()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert writer_done.is_set() and late == [True]


@pytest.mark.parametrize("make_index", [
    lambda: GeodabIndex(CONFIG),
    lambda: ShardedGeodabIndex(CONFIG, ShardingConfig(num_shards=8, num_nodes=2)),
], ids=["single", "sharded"])
def test_queries_see_only_whole_generations(small_dataset, make_index):
    records = small_dataset.records
    ingest_order = [r.trajectory_id for r in records]
    prefixes = [
        frozenset(ingest_order[:i]) for i in range(len(ingest_order) + 1)
    ]
    query = small_dataset.queries[0]

    index = make_index()
    service = IndexService(index, result_cache_size=8)
    stop = threading.Event()
    violations = []

    def read_loop():
        while not stop.is_set():
            response = service.query(query.points, max_distance=1.0)
            returned = frozenset(r.trajectory_id for r in response.results)
            # Every candidate the query can see must belong to exactly
            # the corpus of some completed generation (a prefix).
            expected = prefixes[response.generation]
            if not returned <= expected:
                violations.append((response.generation, returned - expected))

    readers = [threading.Thread(target=read_loop) for _ in range(4)]
    for thread in readers:
        thread.start()
    for record in records:
        service.add(record.trajectory_id, record.points)
    stop.set()
    for thread in readers:
        thread.join(timeout=10)
    assert not violations
    # After the writer finishes, the query sees the full corpus answer.
    final = service.query(query.points, max_distance=1.0)
    assert final.generation == len(records)


def test_concurrent_readers_with_pooled_executor(small_dataset):
    index = ShardedGeodabIndex(CONFIG, ShardingConfig(num_shards=8, num_nodes=2))
    reference = GeodabIndex(CONFIG)
    for record in small_dataset.records:
        reference.add(record.trajectory_id, record.points)
    with QueryExecutor(index, pool_size=4) as executor:
        service = IndexService(index, executor=executor)
        service.ingest(
            (r.trajectory_id, r.points) for r in small_dataset.records
        )
        expected = {
            q.query_id: reference.query(q.points, limit=10)
            for q in small_dataset.queries
        }
        mismatches = []

        def worker(query):
            for _ in range(5):
                response = service.query(query.points, limit=10)
                if list(response.results) != expected[query.query_id]:
                    mismatches.append(query.query_id)

        threads = [
            threading.Thread(target=worker, args=(q,))
            for q in small_dataset.queries
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not mismatches


def test_bulk_ingest_is_one_generation(small_dataset):
    service = IndexService(GeodabIndex(CONFIG))
    count, generation = service.ingest(
        (r.trajectory_id, r.points) for r in small_dataset.records
    )
    assert count == len(small_dataset.records)
    assert generation == 1


def test_failed_bulk_ingest_leaves_no_partial_state(small_dataset):
    service = IndexService(GeodabIndex(CONFIG))
    records = small_dataset.records
    service.add(records[2].trajectory_id, records[2].points)
    with pytest.raises(KeyError):
        service.ingest((r.trajectory_id, r.points) for r in records)
    # Nothing from the failed batch landed; generation unchanged.
    assert len(service) == 1
    assert service.generation == 1


def test_mid_batch_failure_rolls_back_applied_items(small_dataset):
    # A failure past the duplicate pre-check (e.g. malformed points on
    # the third item) must undo the items already applied.
    service = IndexService(GeodabIndex(CONFIG))
    records = small_dataset.records
    with pytest.raises(Exception):
        service.ingest([
            (records[0].trajectory_id, records[0].points),
            (records[1].trajectory_id, records[1].points),
            ("malformed", None),
        ])
    assert len(service) == 0
    assert records[0].trajectory_id not in service
    assert service.generation == 0


def test_ingest_preserves_stored_points(small_dataset):
    # Regression: the out-of-lock fingerprinting path must still hand
    # raw points to an index built with store_points=True.
    index = GeodabIndex(CONFIG, store_points=True)
    service = IndexService(index)
    record = small_dataset.records[0]
    service.add(record.trajectory_id, record.points)
    assert index.points_of(record.trajectory_id) == list(record.points)


def test_delete_bumps_generation_and_invalidates(small_dataset):
    service = IndexService(GeodabIndex(CONFIG))
    service.ingest((r.trajectory_id, r.points) for r in small_dataset.records)
    query = small_dataset.queries[0]
    first = service.query(query.points, limit=5)
    assert first.cached is False
    assert service.query(query.points, limit=5).cached is True
    victim = first.results[0].trajectory_id
    assert service.delete(victim) == 2
    # The write purged every cached result eagerly, not just lazily.
    assert len(service.result_cache) == 0
    after = service.query(query.points, limit=5)
    assert after.cached is False
    assert all(r.trajectory_id != victim for r in after.results)
    assert service.result_cache.stats().invalidations >= 1
