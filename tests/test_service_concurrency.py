"""Tests for the serving tier's concurrency story.

The invariant under test: a query served while a writer is ingesting
always reflects a *consistent generation* — the set of trajectories it
ranks is exactly the corpus after some whole write, never a half-applied
batch.  Writes here are applied one trajectory per generation, so every
valid answer set is a prefix of the ingest order.
"""

import threading
from pathlib import Path

import pytest

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.service import IndexService, QueryExecutor, ReadWriteLock

CONFIG = GeodabConfig(k=3, t=5)


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        entered = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                entered.wait()  # all three readers inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        observed = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                observed.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=0.1)
        assert observed == []  # reader blocked behind the writer
        lock.release_write()
        thread.join(timeout=5)
        assert observed == ["read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_done = threading.Event()

        def writer():
            with lock.write_locked():
                writer_done.set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        # Give the writer time to queue up, then try a new reader: it
        # must wait behind the announced writer.
        late = []

        def late_reader():
            with lock.read_locked():
                late.append(True)

        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        reader_thread.join(timeout=0.1)
        assert late == [] and not writer_done.is_set()
        lock.release_read()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert writer_done.is_set() and late == [True]


@pytest.mark.parametrize("make_index", [
    lambda: GeodabIndex(CONFIG),
    lambda: ShardedGeodabIndex(CONFIG, ShardingConfig(num_shards=8, num_nodes=2)),
], ids=["single", "sharded"])
def test_queries_see_only_whole_generations(small_dataset, make_index):
    records = small_dataset.records
    ingest_order = [r.trajectory_id for r in records]
    prefixes = [
        frozenset(ingest_order[:i]) for i in range(len(ingest_order) + 1)
    ]
    query = small_dataset.queries[0]

    index = make_index()
    service = IndexService(index, result_cache_size=8)
    stop = threading.Event()
    violations = []

    def read_loop():
        while not stop.is_set():
            response = service.query(query.points, max_distance=1.0)
            returned = frozenset(r.trajectory_id for r in response.results)
            # Every candidate the query can see must belong to exactly
            # the corpus of some completed generation (a prefix).
            expected = prefixes[response.generation]
            if not returned <= expected:
                violations.append((response.generation, returned - expected))

    readers = [threading.Thread(target=read_loop) for _ in range(4)]
    for thread in readers:
        thread.start()
    for record in records:
        service.add(record.trajectory_id, record.points)
    stop.set()
    for thread in readers:
        thread.join(timeout=10)
    assert not violations
    # After the writer finishes, the query sees the full corpus answer.
    final = service.query(query.points, max_distance=1.0)
    assert final.generation == len(records)


def test_concurrent_readers_with_pooled_executor(small_dataset):
    index = ShardedGeodabIndex(CONFIG, ShardingConfig(num_shards=8, num_nodes=2))
    reference = GeodabIndex(CONFIG)
    for record in small_dataset.records:
        reference.add(record.trajectory_id, record.points)
    with QueryExecutor(index, pool_size=4) as executor:
        service = IndexService(index, executor=executor)
        service.ingest(
            (r.trajectory_id, r.points) for r in small_dataset.records
        )
        expected = {
            q.query_id: reference.query(q.points, limit=10)
            for q in small_dataset.queries
        }
        mismatches = []

        def worker(query):
            for _ in range(5):
                response = service.query(query.points, limit=10)
                if list(response.results) != expected[query.query_id]:
                    mismatches.append(query.query_id)

        threads = [
            threading.Thread(target=worker, args=(q,))
            for q in small_dataset.queries
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not mismatches


def test_bulk_ingest_is_one_generation(small_dataset):
    service = IndexService(GeodabIndex(CONFIG))
    count, generation = service.ingest(
        (r.trajectory_id, r.points) for r in small_dataset.records
    )
    assert count == len(small_dataset.records)
    assert generation == 1


def test_failed_bulk_ingest_leaves_no_partial_state(small_dataset):
    service = IndexService(GeodabIndex(CONFIG))
    records = small_dataset.records
    service.add(records[2].trajectory_id, records[2].points)
    with pytest.raises(KeyError):
        service.ingest((r.trajectory_id, r.points) for r in records)
    # Nothing from the failed batch landed; generation unchanged.
    assert len(service) == 1
    assert service.generation == 1


def test_mid_batch_failure_rolls_back_applied_items(small_dataset):
    # A failure past the duplicate pre-check (e.g. malformed points on
    # the third item) must undo the items already applied.
    service = IndexService(GeodabIndex(CONFIG))
    records = small_dataset.records
    with pytest.raises(Exception):
        service.ingest([
            (records[0].trajectory_id, records[0].points),
            (records[1].trajectory_id, records[1].points),
            ("malformed", None),
        ])
    assert len(service) == 0
    assert records[0].trajectory_id not in service
    assert service.generation == 0


def test_ingest_preserves_stored_points(small_dataset):
    # Regression: the out-of-lock fingerprinting path must still hand
    # raw points to an index built with store_points=True.
    index = GeodabIndex(CONFIG, store_points=True)
    service = IndexService(index)
    record = small_dataset.records[0]
    service.add(record.trajectory_id, record.points)
    assert index.points_of(record.trajectory_id) == list(record.points)


def test_delete_bumps_generation_and_invalidates(small_dataset):
    service = IndexService(GeodabIndex(CONFIG))
    service.ingest((r.trajectory_id, r.points) for r in small_dataset.records)
    query = small_dataset.queries[0]
    first = service.query(query.points, limit=5)
    assert first.cached is False
    assert service.query(query.points, limit=5).cached is True
    victim = first.results[0].trajectory_id
    assert service.delete(victim) == 2
    # The write purged every cached result eagerly, not just lazily.
    assert len(service.result_cache) == 0
    after = service.query(query.points, limit=5)
    assert after.cached is False
    assert all(r.trajectory_id != victim for r in after.results)
    assert service.result_cache.stats().invalidations >= 1


class TestSnapshotAndCompaction:
    def _walk(self, n, bearing=90.0):
        from repro.geo.point import Point, destination

        out = [Point(51.5074, -0.1278)]
        for _ in range(n - 1):
            out.append(destination(out[-1], bearing, 90.0))
        return out

    def test_snapshot_round_trips_through_service(self, tmp_path):
        from repro.core.persistence import load_index, resolve_snapshot
        from repro.service import CompactionPolicy

        index = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=8, num_nodes=2, placement="hash")
        )
        service = IndexService(index, compaction=CompactionPolicy())
        service.ingest(
            [("a", self._walk(30, 90.0)), ("b", self._walk(30, 0.0))]
        )
        info = service.snapshot(tmp_path)
        assert info["generation"] == 1
        assert info["trajectories"] == 2
        target = resolve_snapshot(tmp_path)
        assert target is not None and str(target) == info["path"]
        loaded = load_index(target, mmap_mode="r")
        query = self._walk(30, 90.0)
        assert [r.trajectory_id for r in loaded.query(query)] == [
            r.trajectory_id for r in index.query(query)
        ]
        stats = service.stats()
        assert stats["snapshot"]["generation"] == 1

    def test_snapshot_folds_buffers_first(self, tmp_path):
        index = GeodabIndex(CONFIG)
        service = IndexService(index, compaction=None)
        service.ingest([("a", self._walk(30, 90.0))])
        assert index.buffered_postings > 0  # no policy: still buffered
        service.snapshot(tmp_path)
        assert index.buffered_postings == 0

    def test_compaction_policy_folds_after_ingest(self):
        from repro.service import CompactionPolicy

        index = GeodabIndex(CONFIG)
        service = IndexService(
            index,
            compaction=CompactionPolicy(
                max_buffered_postings=1, max_age_s=3600.0
            ),
        )
        service.ingest([("a", self._walk(30, 90.0))])
        assert index.buffered_postings == 0
        assert service.stats()["compaction"]["runs"] == 1

    def test_age_trigger(self):
        from repro.service import CompactionPolicy

        index = GeodabIndex(CONFIG)
        service = IndexService(
            index,
            compaction=CompactionPolicy(
                max_buffered_postings=10**9, max_age_s=0.0
            ),
        )
        service.ingest([("a", self._walk(30, 90.0))])
        # Age 0 means every write is immediately due.
        assert index.buffered_postings == 0

    def test_policy_disabled_leaves_buffers_to_lazy_folds(self):
        index = GeodabIndex(CONFIG)
        service = IndexService(index, compaction=None)
        service.ingest([("a", self._walk(30, 90.0))])
        assert index.buffered_postings > 0
        assert service.stats()["compaction"]["enabled"] is False
        # Reads still fold lazily, as before.
        assert service.query(self._walk(30, 90.0)).results
        assert index.buffered_postings == 0

    def test_forced_compact(self):
        index = GeodabIndex(CONFIG)
        service = IndexService(index, compaction=None)
        service.ingest([("a", self._walk(30, 90.0))])
        folded = service.compact()
        assert folded > 0
        assert index.buffered_postings == 0

    def test_policy_validation(self):
        from repro.service import CompactionPolicy

        with pytest.raises(ValueError):
            CompactionPolicy(max_buffered_postings=0)
        with pytest.raises(ValueError):
            CompactionPolicy(max_age_s=-1.0)

    def test_snapshot_excludes_concurrent_writes(self, tmp_path):
        """A snapshot captures one generation: writes issued while it is
        being taken either land entirely before or entirely after."""
        from repro.core.persistence import load_index

        index = GeodabIndex(CONFIG)
        service = IndexService(index)
        service.ingest([(f"t{i}", self._walk(30, float(i))) for i in range(8)])
        errors = []

        def writer(start):
            try:
                for i in range(start, start + 4):
                    service.ingest([(f"w{i}", self._walk(20, float(i)))])
            except Exception as exc:  # pragma: no cover - surfacing
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(k * 4,)) for k in range(2)]
        for thread in threads:
            thread.start()
        info = service.snapshot(tmp_path)
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        loaded = load_index(
            (tmp_path / Path(info["path"]).name), mmap_mode="r"
        )
        # The snapshot holds a prefix of the write sequence: every base
        # document, and a consistent number of writer documents.
        assert all(f"t{i}" in loaded for i in range(8))
        assert len(loaded) >= 8
        assert len(loaded) <= 16
