"""Executor fault handling: failover, hedging, timeouts, degraded flags.

A scripted transport wraps the in-process one and injects failures and
delays per ``(shard_id, attempt)``, so every fault path of the pooled
scatter-gather — and the sequential fallback — is driven
deterministically with no worker processes involved.
"""

import time

import numpy as np
import pytest

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.config import GeodabConfig
from repro.service import IndexService
from repro.service.executor import QueryExecutor
from repro.service.tracing import Trace
from repro.service.transport import InProcessTransport, TransportError

CONFIG = GeodabConfig(k=3, t=5)
# Hash placement spreads a city-local query over all shards (prefix
# placement would put the whole test area in one cell → one shard, and
# single-shard plans bypass the pooled scatter under test here).
SHARDING = ShardingConfig(num_shards=4, num_nodes=2, placement="hash")


class ScriptedTransport:
    """In-process transport with per-(shard, attempt) faults and delays."""

    kind = "scripted"

    def __init__(self, index, fail=(), delay=(), blank=(), raises=()):
        self.inner = InProcessTransport(index)
        self.fail = set(fail)  # (shard, attempt) -> TransportError
        self.raises = set(raises)  # (shard, attempt) -> RuntimeError
        self.delay = dict(delay)  # (shard, attempt) -> seconds
        self.blank = set(blank)  # shard -> empty partial
        self.calls: list[tuple[int, int]] = []

    def _faults(self, shard_id, attempt):
        self.calls.append((shard_id, attempt))
        pause = self.delay.get((shard_id, attempt))
        if pause:
            time.sleep(pause)
        if (shard_id, attempt) in self.raises:
            raise RuntimeError("scripted bug")
        if (shard_id, attempt) in self.fail:
            raise TransportError(
                f"scripted failure shard={shard_id} attempt={attempt}"
            )
        return shard_id in self.blank

    def shard_partial(
        self, shard_id, terms, attempt=0, meta=None, variant="default"
    ):
        if self._faults(shard_id, attempt):
            return np.array([], dtype=np.int64)
        return self.inner.shard_partial(shard_id, terms, attempt, meta, variant)

    def shard_postings(
        self, shard_id, terms, attempt=0, meta=None, variant="default"
    ):
        # The batched fan-out fetches raw postings instead of partials;
        # the same fault script applies to both shapes.
        if self._faults(shard_id, attempt):
            return {}
        return self.inner.shard_postings(
            shard_id, terms, attempt, meta, variant
        )

    def shard_term_counts(
        self, shard_id, terms, attempt=0, meta=None, variant="default"
    ):
        # The planner's df fetch hits the same fault script, so a
        # scripted shard loss makes bounded collection fall back to the
        # exhaustive scatter (which then degrades as scripted).
        if self._faults(shard_id, attempt):
            return np.zeros(len(terms), dtype=np.int64)
        return self.inner.shard_term_counts(
            shard_id, terms, attempt, meta, variant
        )

    def shard_counts(
        self, shard_id, terms, candidates, attempt=0, meta=None, variant="default"
    ):
        if self._faults(shard_id, attempt):
            return np.zeros(len(candidates), dtype=np.int64), 0
        return self.inner.shard_counts(
            shard_id, terms, candidates, attempt, meta, variant
        )

    def stats(self):
        return {"kind": self.kind}

    def maintain(self):
        return {}

    def close(self):
        return None


@pytest.fixture(scope="module")
def sharded(small_dataset):
    index = ShardedGeodabIndex(CONFIG, SHARDING)
    index.add_many(
        [(r.trajectory_id, r.points) for r in small_dataset.records]
    )
    return index


@pytest.fixture(scope="module")
def query(small_dataset):
    return small_dataset.queries[0].points


@pytest.fixture(scope="module")
def planned_shard(sharded, query):
    """A shard the query actually plans onto."""
    plan = sharded.prepare_query(query).plan
    assert plan
    return next(iter(plan))


@pytest.fixture(scope="module")
def expected(sharded, query):
    with QueryExecutor(sharded, pool_size=4) as executor:
        results, _ = executor.execute(query, limit=10)
    return results


class TestFailover:
    @pytest.mark.parametrize("pool_size", [0, 4])
    def test_single_failure_retries_transparently(
        self, sharded, query, planned_shard, expected, pool_size
    ):
        transport = ScriptedTransport(sharded, fail=[(planned_shard, 0)])
        with QueryExecutor(
            sharded, pool_size=pool_size, transport=transport
        ) as executor:
            results, stats = executor.execute(query, limit=10)
            assert results == expected
            assert not stats.degraded
            assert executor.fault_counts()["failovers"] == 1
        assert (planned_shard, 1) in transport.calls

    @pytest.mark.parametrize("pool_size", [0, 4])
    def test_both_attempts_fail_degrades(
        self, sharded, query, planned_shard, pool_size
    ):
        transport = ScriptedTransport(
            sharded, fail=[(planned_shard, 0), (planned_shard, 1)]
        )
        with QueryExecutor(
            sharded, pool_size=pool_size, transport=transport
        ) as executor:
            results, stats = executor.execute(query, limit=10)
            assert stats.degraded
            assert stats.failed_shards == 1
            assert executor.fault_counts()["failed_contacts"] == 1
        # The degraded answer equals ranking without that shard's hits.
        blanked = ScriptedTransport(sharded, blank=[planned_shard])
        with QueryExecutor(
            sharded, pool_size=4, transport=blanked
        ) as executor:
            reference, _ = executor.execute(query, limit=10)
        assert results == reference

    def test_non_transport_errors_propagate(
        self, sharded, query, planned_shard
    ):
        transport = ScriptedTransport(sharded, raises=[(planned_shard, 0)])
        with QueryExecutor(
            sharded, pool_size=4, transport=transport
        ) as executor:
            with pytest.raises(RuntimeError, match="scripted bug"):
                executor.execute(query, limit=10)


class TestHedging:
    def test_straggler_is_hedged(
        self, sharded, query, planned_shard, expected
    ):
        transport = ScriptedTransport(
            sharded, delay={(planned_shard, 0): 0.4}
        )
        with QueryExecutor(
            sharded,
            pool_size=4,
            transport=transport,
            hedge_after_s=0.05,
        ) as executor:
            results, stats = executor.execute(query, limit=10)
            assert results == expected
            assert not stats.degraded
            assert stats.hedged == 1
            assert executor.fault_counts()["hedges"] == 1
        assert (planned_shard, 1) in transport.calls

    def test_fast_shards_are_not_hedged(self, sharded, query, expected):
        transport = ScriptedTransport(sharded)
        with QueryExecutor(
            sharded,
            pool_size=4,
            transport=transport,
            hedge_after_s=5.0,
        ) as executor:
            results, stats = executor.execute(query, limit=10)
            assert results == expected
            assert stats.hedged == 0
            assert executor.fault_counts()["hedges"] == 0
        assert all(attempt == 0 for _, attempt in transport.calls)

    def test_hedge_span_queue_wait_uses_its_own_submit_time(
        self, sharded, query, planned_shard
    ):
        """Queue wait is measured from each task's *own* submit stamp.

        The regression this pins: one shared scatter-epoch stamp made a
        hedge fired at T+hedge_after look like it queued for the whole
        hedge delay.  With per-task stamps an uncontended hedge's queue
        wait is approximately zero.
        """
        transport = ScriptedTransport(
            sharded, delay={(planned_shard, 0): 0.3}
        )
        trace = Trace(detail=True)
        with QueryExecutor(
            sharded,
            pool_size=8,
            transport=transport,
            hedge_after_s=0.1,
        ) as executor:
            executor.execute(query, limit=10, trace=trace)
        hedge_spans = [
            span
            for span in trace.as_dict()["spans"]
            for span in [span, *span.get("children", [])]
            if span["name"] == "shard" and span.get("attempt") == 1
        ]
        assert hedge_spans
        for span in hedge_spans:
            assert span["queue_wait_ms"] < 50.0


class TestShardTimeout:
    def test_timed_out_shard_is_written_off(
        self, sharded, query, planned_shard
    ):
        transport = ScriptedTransport(
            sharded,
            delay={(planned_shard, 0): 1.0, (planned_shard, 1): 1.0},
        )
        with QueryExecutor(
            sharded,
            pool_size=4,
            transport=transport,
            shard_timeout_s=0.1,
        ) as executor:
            start = time.perf_counter()
            results, stats = executor.execute(query, limit=10)
            elapsed = time.perf_counter() - start
            assert stats.degraded
            assert stats.failed_shards == 1
            # The executor gave up at the timeout instead of waiting
            # out the sleeping contacts.
            assert elapsed < 0.8

    def test_timeout_with_successful_retry_recovers(
        self, sharded, query, planned_shard, expected
    ):
        transport = ScriptedTransport(
            sharded, delay={(planned_shard, 0): 1.0}
        )
        with QueryExecutor(
            sharded,
            pool_size=4,
            transport=transport,
            shard_timeout_s=10.0,
            hedge_after_s=0.05,
        ) as executor:
            results, stats = executor.execute(query, limit=10)
            assert results == expected
            assert not stats.degraded

    def test_invalid_knobs_rejected(self, sharded):
        with pytest.raises(ValueError, match="shard_timeout_s"):
            QueryExecutor(sharded, shard_timeout_s=0.0)
        with pytest.raises(ValueError, match="hedge_after_s"):
            QueryExecutor(sharded, hedge_after_s=-1.0)


class TestServiceDegradedHandling:
    def test_degraded_results_are_served_but_never_cached(
        self, sharded, query, planned_shard
    ):
        transport = ScriptedTransport(
            sharded, fail=[(planned_shard, 0), (planned_shard, 1)]
        )
        executor = QueryExecutor(sharded, pool_size=4, transport=transport)
        service = IndexService(sharded, executor=executor)
        try:
            first = service.query(query, limit=10)
            assert first.degraded
            assert not first.cached
            # A degraded answer must not satisfy the next request from
            # cache: the shard may be healthy again by then.
            second = service.query(query, limit=10)
            assert not second.cached
            assert service.metrics.snapshot().degraded_queries == 2
        finally:
            service.close()

    def test_healthy_results_still_cache(self, sharded, query):
        executor = QueryExecutor(
            sharded, pool_size=4, transport=ScriptedTransport(sharded)
        )
        service = IndexService(sharded, executor=executor)
        try:
            first = service.query(query, limit=10)
            assert not first.degraded
            second = service.query(query, limit=10)
            assert second.cached
            assert not second.degraded
            assert service.metrics.snapshot().degraded_queries == 0
        finally:
            service.close()

    def test_degraded_batch_not_cached(self, sharded, query, planned_shard):
        transport = ScriptedTransport(
            sharded, fail=[(planned_shard, 0), (planned_shard, 1)]
        )
        executor = QueryExecutor(sharded, pool_size=4, transport=transport)
        service = IndexService(sharded, executor=executor)
        try:
            batch = service.query_many([query, query], limit=10)
            assert len(batch) == 2
            again = service.query_many([query], limit=10)
            assert not again[0].cached
        finally:
            service.close()
