"""Tests for repro.core.fastpath: the O(n) streaming winnower."""

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GeodabConfig
from repro.core.fastpath import FastTrajectoryWinnower
from repro.core.winnowing import TrajectoryWinnower
from repro.geo.point import Point, destination

LONDON = Point(51.5074, -0.1278)


def random_walk(n, seed, step_lo=10.0, step_hi=200.0):
    rng = Random(seed)
    points = [LONDON]
    bearing = rng.uniform(0.0, 360.0)
    for _ in range(n):
        bearing += rng.uniform(-45.0, 45.0)
        points.append(destination(points[-1], bearing % 360.0, rng.uniform(step_lo, step_hi)))
    return points


class TestEquivalence:
    @pytest.mark.parametrize("k,t", [(2, 2), (3, 5), (4, 9), (6, 12)])
    def test_identical_to_reference(self, k, t):
        config = GeodabConfig(k=k, t=t, suffix_hash="polynomial")
        slow = TrajectoryWinnower(config)
        fast = FastTrajectoryWinnower(config)
        for seed in range(20):
            points = random_walk(50, seed)
            assert fast.select(points) == slow.select(points), (k, t, seed)

    @given(st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40)
    def test_identical_on_random_walks(self, n, seed):
        config = GeodabConfig(k=3, t=6, suffix_hash="polynomial")
        slow = TrajectoryWinnower(config)
        fast = FastTrajectoryWinnower(config)
        points = random_walk(n, seed)
        assert fast.select(points) == slow.select(points)

    def test_fingerprints_helper(self):
        config = GeodabConfig(k=3, t=6, suffix_hash="polynomial")
        fast = FastTrajectoryWinnower(config)
        points = random_walk(40, 1)
        assert fast.fingerprints(points) == [
            s.fingerprint for s in fast.select(points)
        ]


class TestEdgeCases:
    CONFIG = GeodabConfig(k=3, t=6, suffix_hash="polynomial")

    def test_empty(self):
        assert FastTrajectoryWinnower(self.CONFIG).select([]) == []

    def test_below_noise_threshold(self):
        fast = FastTrajectoryWinnower(self.CONFIG)
        assert fast.select(random_walk(1, 0)) == []

    def test_duplicate_points_collapse(self):
        fast = FastTrajectoryWinnower(self.CONFIG)
        points = random_walk(30, 2)
        doubled = [p for p in points for _ in range(2)]
        assert fast.select(points) == fast.select(doubled)

    def test_short_stream_single_selection(self):
        # More than k cells but fewer k-grams than the winnow window.
        config = GeodabConfig(k=3, t=20, suffix_hash="polynomial")
        slow = TrajectoryWinnower(config)
        fast = FastTrajectoryWinnower(config)
        points = random_walk(6, 3, step_lo=150.0, step_hi=250.0)
        assert fast.select(points) == slow.select(points)
        assert len(fast.select(points)) <= 1

    def test_requires_polynomial_suffix(self):
        with pytest.raises(ValueError):
            FastTrajectoryWinnower(GeodabConfig(suffix_hash="chain"))

    def test_default_construction(self):
        fast = FastTrajectoryWinnower()
        assert fast.config.suffix_hash == "polynomial"


class TestSuffixFamilies:
    def test_chain_and_polynomial_differ(self):
        points = random_walk(40, 5)
        chain = TrajectoryWinnower(GeodabConfig(k=3, t=6, suffix_hash="chain"))
        poly = TrajectoryWinnower(GeodabConfig(k=3, t=6, suffix_hash="polynomial"))
        assert chain.fingerprints(points) != poly.fingerprints(points)

    def test_polynomial_suffix_is_order_sensitive(self):
        poly = TrajectoryWinnower(GeodabConfig(k=3, t=6, suffix_hash="polynomial"))
        points = random_walk(40, 6)
        forward = set(poly.fingerprints(points))
        backward = set(poly.fingerprints(list(reversed(points))))
        assert forward and not (forward & backward)

    def test_invalid_family_rejected(self):
        with pytest.raises(ValueError):
            GeodabConfig(suffix_hash="md5")
