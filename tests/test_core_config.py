"""Tests for repro.core.config: pipeline configuration."""

import pytest

from repro.core.config import PAPER_CONFIG, GeodabConfig


class TestValidation:
    def test_defaults_are_the_paper_configuration(self):
        cfg = GeodabConfig()
        assert cfg.normalization_depth == 36
        assert cfg.k == 6
        assert cfg.t == 12
        assert cfg.prefix_bits == 16
        assert cfg.suffix_bits == 16
        assert cfg == PAPER_CONFIG

    def test_window_formula(self):
        # w = t - k + 1 (Section IV-A).
        assert GeodabConfig(k=6, t=12).window == 7
        assert GeodabConfig(k=3, t=3).window == 1

    def test_geodab_bits(self):
        assert GeodabConfig(prefix_bits=16, suffix_bits=16).geodab_bits == 32
        assert GeodabConfig(prefix_bits=20, suffix_bits=20).geodab_bits == 40

    def test_fits_in_32_bits(self):
        assert GeodabConfig().fits_in_32_bits
        assert not GeodabConfig(prefix_bits=20, suffix_bits=16).fits_in_32_bits

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"normalization_depth": 0},
            {"normalization_depth": 61},
            {"k": 0},
            {"k": 10, "t": 9},
            {"prefix_bits": 0},
            {"prefix_bits": 33},
            {"suffix_bits": 0},
            {"suffix_bits": 33},
            {"cover_depth": 8},  # below prefix_bits
            {"cover_depth": 64},
        ],
    )
    def test_invalid_configurations(self, kwargs):
        with pytest.raises(ValueError):
            GeodabConfig(**kwargs)

    def test_frozen(self):
        cfg = GeodabConfig()
        with pytest.raises(AttributeError):
            cfg.k = 3  # type: ignore[misc]


class TestThresholdTranslation:
    def test_cell_size_london(self):
        width, height = GeodabConfig().cell_size_m(51.5)
        assert width == pytest.approx(95.0, abs=5.0)
        assert height == pytest.approx(76.0, abs=5.0)

    def test_noise_threshold_matches_paper(self):
        # Section VI-A2: k=6 at ~85 m per move -> ~510 m.
        cfg = GeodabConfig()
        assert cfg.noise_threshold_m(51.5) == pytest.approx(510.0, rel=0.05)

    def test_guarantee_threshold_matches_paper(self):
        # Section VI-A2: t=12 -> ~1020 m.
        cfg = GeodabConfig()
        assert cfg.guarantee_threshold_m(51.5) == pytest.approx(1020.0, rel=0.05)

    def test_guarantee_at_least_noise_threshold(self):
        cfg = GeodabConfig(k=4, t=9)
        assert cfg.guarantee_threshold_m(40.0) >= cfg.noise_threshold_m(40.0)
