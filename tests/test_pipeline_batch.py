"""Property tests: the vectorized pipeline is bit-identical to the scalar one.

Every stage of the batch engine — geohash encoding, k-gram hashing
(both suffix families), sliding-window minima, winnowing — and the
composed :class:`~repro.pipeline.BatchFingerprinter` are cross-validated
against their scalar reference implementations over randomized inputs,
including the empty/short/single-point edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import GeodabConfig
from repro.core.fingerprint import Fingerprinter
from repro.core.winnowing import winnow
from repro.geo.batch import bit_length_u64, encode_batch
from repro.geo.geohash import encode
from repro.geo.point import Point
from repro.hashing.batch import (
    chain_kgram_hashes,
    polynomial_kgram_hashes,
    sliding_rightmost_minima,
)
from repro.hashing.rolling import rolling_hashes, windowed_minima
from repro.hashing.stable import hash_int_sequence_64
from repro.pipeline import BatchFingerprinter, winnow_array

from .conftest import latitudes, longitudes

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

#: Pipeline configurations covering both suffix families, both bitmap
#: widths, degenerate winnowing bounds, and normalization deeper than
#: the cover depth (where cells equal the deep encodings).
CONFIGS = [
    GeodabConfig(),
    GeodabConfig(suffix_hash="polynomial"),
    GeodabConfig(k=1, t=1),
    GeodabConfig(k=2, t=2, prefix_bits=8, suffix_bits=8),
    GeodabConfig(normalization_depth=50, cover_depth=48),
    GeodabConfig(prefix_bits=32, suffix_bits=32, cover_depth=60, hash_seed=7),
]


def uint64s() -> st.SearchStrategy[int]:
    return st.integers(min_value=0, max_value=(1 << 64) - 1)


def point_lists(min_size: int = 0, max_size: int = 40):
    return st.lists(
        st.builds(Point, latitudes(), longitudes()),
        min_size=min_size,
        max_size=max_size,
    )


def city_walks() -> st.SearchStrategy[list[Point]]:
    """Random walks dense enough to produce k-grams at depth 36."""

    @st.composite
    def walk(draw):
        n = draw(st.integers(min_value=0, max_value=60))
        lat = draw(st.floats(min_value=51.40, max_value=51.62))
        lon = draw(st.floats(min_value=-0.30, max_value=0.05))
        steps = draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=-2e-3, max_value=2e-3),
                    st.floats(min_value=-2e-3, max_value=2e-3),
                ),
                min_size=n,
                max_size=n,
            )
        )
        points = []
        for d_lat, d_lon in steps:
            lat = min(90.0, max(-90.0, lat + d_lat))
            lon = min(180.0, max(-180.0, lon + d_lon))
            points.append(Point(lat, lon))
        return points

    return walk()


# ----------------------------------------------------------------------
# Stage identities
# ----------------------------------------------------------------------


class TestEncodeBatch:
    @given(point_lists(), st.integers(min_value=0, max_value=60))
    def test_matches_scalar_encode(self, points, depth):
        lats = np.array([p.lat for p in points], dtype=np.float64)
        lons = np.array([p.lon for p in points], dtype=np.float64)
        batch = encode_batch(lats, lons, depth)
        assert [int(b) for b in batch] == [encode(p, depth) for p in points]

    @given(st.lists(uint64s(), max_size=50))
    def test_bit_length(self, values):
        array = np.array(values, dtype=np.uint64)
        assert [int(b) for b in bit_length_u64(array)] == [
            v.bit_length() for v in values
        ]


class TestKgramHashes:
    @given(
        st.lists(uint64s(), max_size=60),
        st.integers(min_value=1, max_value=12),
    )
    def test_polynomial_matches_rolling(self, values, window):
        array = np.array(values, dtype=np.uint64)
        assert [int(h) for h in polynomial_kgram_hashes(array, window)] == list(
            rolling_hashes(values, window)
        )

    @given(
        st.lists(uint64s(), max_size=60),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_chain_matches_sequence_hash(self, values, window, seed):
        array = np.array(values, dtype=np.uint64)
        expected = [
            hash_int_sequence_64(values[i : i + window], seed)
            for i in range(len(values) - window + 1)
        ]
        assert [
            int(h) for h in chain_kgram_hashes(array, window, seed)
        ] == expected


class TestWindowMinima:
    @given(
        st.lists(uint64s(), max_size=80),
        st.integers(min_value=1, max_value=12),
    )
    def test_matches_windowed_minima(self, values, window):
        array = np.array(values, dtype=np.uint64)
        minima, indices = sliding_rightmost_minima(array, window)
        assert [
            (int(v), int(i)) for v, i in zip(minima, indices)
        ] == list(windowed_minima(values, window))

    @given(
        st.lists(uint64s(), max_size=80),
        st.integers(min_value=1, max_value=12),
    )
    def test_winnow_array_matches_winnow(self, values, window):
        array = np.array(values, dtype=np.uint64)
        got_values, got_positions = winnow_array(array, window)
        expected = winnow(values, window)
        assert [int(v) for v in got_values] == [s.fingerprint for s in expected]
        assert [int(p) for p in got_positions] == [s.position for s in expected]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            winnow_array(np.empty(0, dtype=np.uint64), 0)
        with pytest.raises(ValueError):
            sliding_rightmost_minima(np.empty(0, dtype=np.uint64), 0)


# ----------------------------------------------------------------------
# Composed pipeline identity
# ----------------------------------------------------------------------


def assert_same_fingerprints(config, trajectories):
    scalar = Fingerprinter(config)
    batch = BatchFingerprinter(config)
    expected = [scalar.fingerprint(t) for t in trajectories]
    got = batch.fingerprint_many(trajectories)
    assert len(got) == len(expected)
    for exp, act in zip(expected, got):
        assert act.selections == exp.selections
        assert act.bitmap == exp.bitmap


class TestBatchFingerprinter:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: repr(c)[:60])
    @given(batch=st.lists(city_walks(), max_size=6))
    def test_bit_identical_to_scalar(self, config, batch):
        assert_same_fingerprints(config, batch)

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: repr(c)[:60])
    def test_edge_cases(self, config):
        home = Point(51.5, -0.12)
        assert_same_fingerprints(
            config,
            [
                [],                               # empty trajectory
                [home],                           # single point
                [home, home],                     # duplicate point
                [home] * 10,                      # one cell only
                [Point(0.0, 0.0)],                # bisection boundary
                [Point(-90.0, -180.0), Point(90.0, 180.0)],  # domain corners
            ],
        )

    @given(batch=st.lists(point_lists(max_size=12), max_size=4))
    def test_world_scale_points(self, batch):
        # Arbitrary world coordinates (antimeridian, poles, straddling
        # coarse bisection boundaries → shallow covers).
        assert_same_fingerprints(GeodabConfig(), batch)

    @given(trajectory=city_walks())
    def test_kgram_stream_matches_winnower(self, trajectory):
        scalar = Fingerprinter()
        batch = BatchFingerprinter()
        assert batch.kgram_geodabs(trajectory) == scalar.winnower.kgram_geodabs(
            trajectory
        )

    def test_fingerprint_many_delegates_to_batch_engine(self, rng):
        # The facade's batch API must agree with its scalar API.
        fingerprinter = Fingerprinter()
        trajectories = []
        for _ in range(5):
            lat, lon = 51.5, -0.12
            points = []
            for _ in range(rng.randint(0, 50)):
                lat += rng.uniform(-1e-3, 1e-3)
                lon += rng.uniform(-1e-3, 1e-3)
                points.append(Point(lat, lon))
            trajectories.append(points)
        batched = fingerprinter.fingerprint_many(trajectories)
        for points, fingerprint_set in zip(trajectories, batched):
            single = fingerprinter.fingerprint(points)
            assert fingerprint_set.selections == single.selections
            assert fingerprint_set.bitmap == single.bitmap


class TestBulkIndexEquivalence:
    def test_add_many_equals_sequential_adds(self, small_dataset):
        from repro.core.index import GeodabIndex
        from repro.normalize import standard_normalizer

        records = [(r.trajectory_id, r.points) for r in small_dataset.records]
        sequential = GeodabIndex(
            GeodabConfig(), normalizer=standard_normalizer()
        )
        for trajectory_id, points in records:
            sequential.add(trajectory_id, points)
        bulk = GeodabIndex(GeodabConfig(), normalizer=standard_normalizer())
        bulk.add_many(records)
        assert bulk.stats() == sequential.stats()
        for query in small_dataset.queries:
            assert bulk.query(query.points, limit=10) == sequential.query(
                query.points, limit=10
            )

    def test_sharded_add_many_equals_sequential_adds(self, small_dataset):
        from repro.cluster import ShardedGeodabIndex, ShardingConfig
        from repro.normalize import standard_normalizer

        records = [(r.trajectory_id, r.points) for r in small_dataset.records]
        sharding = ShardingConfig(num_shards=8, num_nodes=2, placement="hash")
        sequential = ShardedGeodabIndex(
            GeodabConfig(), sharding, normalizer=standard_normalizer()
        )
        for trajectory_id, points in records:
            sequential.add(trajectory_id, points)
        bulk = ShardedGeodabIndex(
            GeodabConfig(), sharding, normalizer=standard_normalizer()
        )
        bulk.add_many(records)
        assert bulk.shard_postings_counts() == sequential.shard_postings_counts()
        for query in small_dataset.queries:
            assert bulk.query(query.points, limit=10) == sequential.query(
                query.points, limit=10
            )
