"""Tests for repro.distance.dtw: dynamic time warping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.dtw import dtw, dtw_banded, dtw_reference
from repro.geo.point import Point, haversine

from .conftest import city_points


def short_trajectories(min_size=1, max_size=6):
    return st.lists(city_points(), min_size=min_size, max_size=max_size)


def _line(n, lat0=51.50, lon=-0.12, step=1e-4):
    return [Point(lat0 + i * step, lon) for i in range(n)]


class TestDtw:
    def test_identical_trajectories_zero(self):
        t = _line(10)
        assert dtw(t, t) == pytest.approx(0.0, abs=1e-9)

    def test_single_points(self):
        p = [Point(51.5, -0.12)]
        q = [Point(51.6, -0.12)]
        assert dtw(p, q) == pytest.approx(haversine(p[0], q[0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dtw([], _line(3))
        with pytest.raises(ValueError):
            dtw(_line(3), [])

    def test_known_parallel_lines(self):
        # Two parallel 3-point lines offset by a constant: DTW aligns
        # 1:1 and sums the three per-pair offsets.
        p = _line(3)
        q = [Point(pt.lat, pt.lon + 1e-4) for pt in p]
        expected = sum(haversine(a, b) for a, b in zip(p, q))
        assert dtw(p, q) == pytest.approx(expected, rel=1e-4)

    def test_time_shift_tolerance(self):
        # DTW absorbs a resampling difference cheaply, unlike a lockstep
        # sum of distances.
        p = _line(10)
        q = _line(19, step=5e-5)  # same path, double sampling rate
        assert dtw(p, q) < dtw(p, _line(10, lon=-0.119))

    @given(short_trajectories(), short_trajectories())
    def test_matches_reference_recursion(self, p, q):
        assert dtw(p, q) == pytest.approx(dtw_reference(p, q), rel=1e-9, abs=1e-6)

    @given(short_trajectories(max_size=5), short_trajectories(max_size=5))
    def test_symmetry(self, p, q):
        assert dtw(p, q) == pytest.approx(dtw(q, p), rel=1e-9, abs=1e-6)

    @given(short_trajectories())
    def test_self_distance_zero(self, p):
        assert dtw(p, p) == pytest.approx(0.0, abs=1e-6)

    def test_non_negative(self):
        assert dtw(_line(5), _line(7, lon=-0.13)) >= 0.0


class TestDtwBanded:
    def test_full_band_equals_dtw(self):
        p = _line(8)
        q = _line(10, lon=-0.121)
        assert dtw_banded(p, q, band=10) == pytest.approx(dtw(p, q))

    def test_band_zero_is_diagonal(self):
        p = _line(5)
        q = [Point(pt.lat, pt.lon + 1e-4) for pt in p]
        expected = sum(haversine(a, b) for a, b in zip(p, q))
        assert dtw_banded(p, q, band=0) == pytest.approx(expected, rel=1e-9)

    def test_band_is_upper_bounded_by_unconstrained(self):
        p = _line(12)
        q = _line(9, lon=-0.1205)
        assert dtw_banded(p, q, band=2) >= dtw(p, q) - 1e-9

    def test_negative_band_raises(self):
        with pytest.raises(ValueError):
            dtw_banded(_line(3), _line(3), band=-1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dtw_banded([], _line(3), band=1)

    @given(
        short_trajectories(min_size=2, max_size=6),
        short_trajectories(min_size=2, max_size=6),
        st.integers(min_value=0, max_value=8),
    )
    def test_band_monotonically_improves(self, p, q, band):
        wide = dtw_banded(p, q, band=band + 2)
        narrow = dtw_banded(p, q, band=band)
        assert wide <= narrow + 1e-9
