"""Tests for repro.core.persistence: index save/load."""

import json

import pytest

from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.core.persistence import load_index, save_index
from repro.geo.point import Point, destination
from repro.normalize import standard_normalizer

CONFIG = GeodabConfig(k=3, t=5)


def walk_points(n, bearing=90.0):
    out = [Point(51.5074, -0.1278)]
    for _ in range(n - 1):
        out.append(destination(out[-1], bearing, 90.0))
    return out


@pytest.fixture()
def populated_index():
    index = GeodabIndex(CONFIG)
    index.add("east", walk_points(30, bearing=90.0))
    index.add("north", walk_points(30, bearing=0.0))
    index.add("diag", walk_points(30, bearing=45.0))
    return index


class TestRoundTrip:
    def test_query_results_identical(self, populated_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(populated_index, path)
        loaded = load_index(path)
        for bearing in (90.0, 0.0, 45.0):
            query = walk_points(30, bearing=bearing)
            original = populated_index.query(query)
            restored = loaded.query(query)
            assert [(r.trajectory_id, r.distance) for r in original] == [
                (r.trajectory_id, r.distance) for r in restored
            ]

    def test_config_round_trips(self, populated_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(populated_index, path)
        loaded = load_index(path)
        assert loaded.config == CONFIG

    def test_fingerprint_sets_survive(self, populated_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(populated_index, path)
        loaded = load_index(path)
        original = populated_index.fingerprint_set("east")
        restored = loaded.fingerprint_set("east")
        assert original.selections == restored.selections

    def test_stats_preserved(self, populated_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(populated_index, path)
        loaded = load_index(path)
        assert loaded.stats() == populated_index.stats()

    def test_normalizer_reattached(self, tmp_path):
        norm = standard_normalizer()
        index = GeodabIndex(GeodabConfig(), normalizer=norm)
        points = walk_points(100)
        index.add("a", points)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path, normalizer=norm)
        jittered = [destination(p, 10.0, 3.0) for p in points]
        results = loaded.query(jittered)
        assert results and results[0].trajectory_id == "a"

    def test_empty_index(self, tmp_path):
        index = GeodabIndex(CONFIG)
        path = tmp_path / "empty.json"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == 0


class TestValidation:
    def test_non_string_ids_rejected(self, tmp_path):
        index = GeodabIndex(CONFIG)
        index.add(42, walk_points(20))
        with pytest.raises(ValueError):
            save_index(index, tmp_path / "bad.json")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_index(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "versioned.json"
        path.write_text(
            json.dumps(
                {"format": "repro-geodab-index", "version": 999, "documents": []}
            )
        )
        with pytest.raises(ValueError):
            load_index(path)


class TestV1Compat:
    def test_version_1_writes_json_file(self, populated_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(populated_index, path, version=1)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert len(payload["documents"]) == 3
        loaded = load_index(path)
        query = walk_points(30, bearing=90.0)
        assert [r.trajectory_id for r in loaded.query(query)] == [
            r.trajectory_id for r in populated_index.query(query)
        ]

    def test_version_1_rejects_sharded(self, tmp_path):
        from repro.cluster import ShardedGeodabIndex

        with pytest.raises(ValueError):
            save_index(
                ShardedGeodabIndex(CONFIG), tmp_path / "x.json", version=1
            )

    def test_unknown_version_rejected(self, populated_index, tmp_path):
        with pytest.raises(ValueError):
            save_index(populated_index, tmp_path / "x", version=4)


class TestV2SnapshotDirectory:
    def test_default_writes_a_directory(self, populated_index, tmp_path):
        path = tmp_path / "snap"
        save_index(populated_index, path)
        assert path.is_dir()
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["version"] == 3
        assert manifest["kind"] == "single"
        assert sorted(manifest["slots"]) == ["diag", "east", "north"]

    @pytest.mark.parametrize("mmap_mode", [None, "r"])
    def test_round_trip_after_remove_and_readd(
        self, populated_index, tmp_path, mmap_mode
    ):
        # Tombstoned + recycled slots must survive: the slot layout (not
        # just the live documents) is what the postings arrays reference.
        populated_index.remove("north")
        populated_index.add("northish", walk_points(30, bearing=10.0))
        populated_index.remove("diag")  # leaves a live tombstone
        path = tmp_path / "snap"
        save_index(populated_index, path)
        loaded = load_index(path, mmap_mode=mmap_mode)
        assert len(loaded) == len(populated_index)
        assert "diag" not in loaded
        for bearing in (90.0, 10.0, 45.0):
            query = walk_points(30, bearing=bearing)
            assert [
                (r.trajectory_id, r.distance) for r in loaded.query(query)
            ] == [
                (r.trajectory_id, r.distance)
                for r in populated_index.query(query)
            ]
        # The free slot keeps recycling after the round trip.
        baseline = len(loaded._ids)
        loaded.add("diag2", walk_points(30, bearing=45.0))
        assert len(loaded._ids) == baseline

    def test_fingerprint_sets_survive_v2(self, populated_index, tmp_path):
        path = tmp_path / "snap"
        save_index(populated_index, path)
        loaded = load_index(path)
        for trajectory_id in ("east", "north", "diag"):
            assert (
                loaded.fingerprint_set(trajectory_id).selections
                == populated_index.fingerprint_set(trajectory_id).selections
            )

    def test_stats_preserved_v2(self, populated_index, tmp_path):
        path = tmp_path / "snap"
        save_index(populated_index, path)
        assert load_index(path).stats() == populated_index.stats()

    def test_wide_config_round_trips(self, tmp_path):
        # 48-bit geodabs use Roaring64Map bitmaps — the other serializer.
        wide_config = GeodabConfig(k=3, t=5, prefix_bits=24, suffix_bits=24)
        index = GeodabIndex(wide_config)
        index.add("east", walk_points(30, bearing=90.0))
        index.add("north", walk_points(30, bearing=0.0))
        path = tmp_path / "snap"
        save_index(index, path)
        loaded = load_index(path, mmap_mode="r")
        query = walk_points(30, bearing=90.0)
        assert [(r.trajectory_id, r.distance) for r in loaded.query(query)] == [
            (r.trajectory_id, r.distance) for r in index.query(query)
        ]

    @pytest.mark.parametrize("mmap_mode", [None, "r"])
    def test_sharded_round_trip(self, tmp_path, mmap_mode):
        from repro.cluster import ShardedGeodabIndex, ShardingConfig

        sharded = ShardedGeodabIndex(
            CONFIG,
            ShardingConfig(num_shards=16, num_nodes=4, placement="hash"),
        )
        sharded.add("east", walk_points(30, bearing=90.0))
        sharded.add("north", walk_points(30, bearing=0.0))
        sharded.remove("east")
        sharded.add("eastish", walk_points(30, bearing=85.0))
        path = tmp_path / "snap"
        save_index(sharded, path)
        loaded = load_index(path, mmap_mode=mmap_mode)
        assert isinstance(loaded, ShardedGeodabIndex)
        assert loaded.sharding == sharded.sharding
        assert loaded.shard_postings_counts() == sharded.shard_postings_counts()
        for bearing in (90.0, 0.0, 85.0):
            query = walk_points(30, bearing=bearing)
            assert [
                (r.trajectory_id, r.distance) for r in loaded.query(query)
            ] == [
                (r.trajectory_id, r.distance) for r in sharded.query(query)
            ]
            prepared = loaded.prepare_query(query)
            live_prepared = sharded.prepare_query(query)
            results, stats = loaded.query_prepared(prepared)
            live_results, live_stats = sharded.query_prepared(live_prepared)
            assert [r.trajectory_id for r in results] == [
                r.trajectory_id for r in live_results
            ]
            assert stats.candidates == live_stats.candidates

    def test_empty_index_v2(self, tmp_path):
        path = tmp_path / "snap"
        save_index(GeodabIndex(CONFIG), path)
        assert len(load_index(path)) == 0


class TestV2Validation:
    def test_mixed_ids_rejected_before_any_write(self, tmp_path):
        index = GeodabIndex(CONFIG)
        index.add("good", walk_points(20))
        index.add(42, walk_points(20, bearing=0.0))
        target = tmp_path / "snap"
        with pytest.raises(ValueError):
            save_index(index, target)
        assert not target.exists()  # no partial directory left behind

    def test_mixed_ids_rejected_before_any_write_v1(self, tmp_path):
        index = GeodabIndex(CONFIG)
        index.add("good", walk_points(20))
        index.add(42, walk_points(20, bearing=0.0))
        target = tmp_path / "bad.json"
        with pytest.raises(ValueError):
            save_index(index, target, version=1)
        assert not target.exists()

    def test_missing_manifest_rejected(self, tmp_path):
        (tmp_path / "snap").mkdir()
        with pytest.raises(ValueError):
            load_index(tmp_path / "snap")

    def test_wrong_snapshot_version_rejected(self, populated_index, tmp_path):
        path = tmp_path / "snap"
        save_index(populated_index, path)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_index(path)

    def test_existing_file_target_rejected(self, populated_index, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        with pytest.raises(ValueError):
            save_index(populated_index, target)


class TestSnapshotPointer:
    def test_publish_and_resolve(self, populated_index, tmp_path):
        from repro.core.persistence import publish_snapshot, resolve_snapshot

        assert resolve_snapshot(tmp_path) is None
        first = publish_snapshot(populated_index, tmp_path, "g00000001")
        assert resolve_snapshot(tmp_path) == first
        second = publish_snapshot(populated_index, tmp_path, "g00000002")
        assert resolve_snapshot(tmp_path) == second
        loaded = load_index(second, mmap_mode="r")
        query = walk_points(30, bearing=90.0)
        assert [r.trajectory_id for r in loaded.query(query)] == [
            r.trajectory_id for r in populated_index.query(query)
        ]

    def test_dangling_pointer_resolves_to_none(self, populated_index, tmp_path):
        from repro.core.persistence import publish_snapshot, resolve_snapshot
        import shutil

        target = publish_snapshot(populated_index, tmp_path, "g00000001")
        shutil.rmtree(target)
        assert resolve_snapshot(tmp_path) is None

    def test_invalid_tag_rejected(self, populated_index, tmp_path):
        from repro.core.persistence import publish_snapshot

        for tag in ("", "..", "a/b"):
            with pytest.raises(ValueError):
                publish_snapshot(populated_index, tmp_path, tag)


class TestV2Resave:
    def test_resave_into_same_path_replaces_cleanly(
        self, populated_index, tmp_path
    ):
        path = tmp_path / "snap"
        save_index(populated_index, path)
        # A live reader holds memory-mapped views into the first save.
        mapped = load_index(path, mmap_mode="r")
        query = walk_points(30, bearing=90.0)
        before = [(r.trajectory_id, r.distance) for r in mapped.query(query)]
        # Re-save a *different* index into the same path.
        smaller = GeodabIndex(CONFIG)
        smaller.add("only", walk_points(30, bearing=90.0))
        save_index(smaller, path)
        reloaded = load_index(path)
        assert len(reloaded) == 1 and "only" in reloaded
        # The staged-swap replaced whole files, so the old reader's
        # mapped pages (old inodes) still answer consistently.
        assert [
            (r.trajectory_id, r.distance) for r in mapped.query(query)
        ] == before
        # No staging litter left behind.
        assert not list(tmp_path.glob(".snap.tmp-*"))

    def test_truncated_bitmaps_raise_value_error(
        self, populated_index, tmp_path
    ):
        path = tmp_path / "snap"
        save_index(populated_index, path)
        blob = (path / "bitmaps.bin").read_bytes()
        (path / "bitmaps.bin").write_bytes(blob[: len(blob) - 3])
        with pytest.raises(ValueError):
            load_index(path)


class TestPruneSnapshots:
    """GC of superseded snapshot-* directories (``prune_snapshots``)."""

    @staticmethod
    def publish_n(index, directory, n, start=1):
        import time as time_module

        from repro.core.persistence import publish_snapshot

        published = []
        for i in range(start, start + n):
            published.append(
                publish_snapshot(index, directory, f"g{i:08d}")
            )
            # Guarantee strictly increasing mtimes even on coarse
            # filesystem timestamp granularity.
            later = time_module.time() + (i - start + 1) * 10
            import os

            os.utime(published[-1], (later, later))
        return published

    def test_keeps_newest_and_current(self, populated_index, tmp_path):
        from repro.core.persistence import prune_snapshots, resolve_snapshot

        published = self.publish_n(populated_index, tmp_path, 5)
        removed = prune_snapshots(tmp_path, keep=2)
        assert sorted(removed) == sorted(published[:3])
        survivors = sorted(p.name for p in tmp_path.glob("snapshot-*"))
        assert survivors == sorted(p.name for p in published[3:])
        # The pointer still resolves to a complete snapshot.
        current = resolve_snapshot(tmp_path)
        assert current == published[-1]
        assert load_index(current) is not None

    def test_current_pointer_always_survives(self, populated_index, tmp_path):
        from repro.core.persistence import (
            CURRENT_POINTER,
            prune_snapshots,
            resolve_snapshot,
        )

        published = self.publish_n(populated_index, tmp_path, 4)
        # Point CURRENT at the *oldest* snapshot, as if later publishes
        # had failed after their directory landed.
        (tmp_path / CURRENT_POINTER).write_text(
            published[0].name + "\n", encoding="utf-8"
        )
        removed = prune_snapshots(tmp_path, keep=1)
        assert published[0] not in removed  # pointed-at snapshot kept
        assert published[-1] not in removed  # newest kept
        assert sorted(removed) == sorted(published[1:3])
        assert resolve_snapshot(tmp_path) == published[0]

    def test_torn_snapshot_dirs_always_removed(self, populated_index, tmp_path):
        from repro.core.persistence import prune_snapshots

        published = self.publish_n(populated_index, tmp_path, 2)
        torn = tmp_path / "snapshot-torn"
        torn.mkdir()
        (torn / "postings-00000.bin").write_bytes(b"junk")
        removed = prune_snapshots(tmp_path, keep=10)
        assert removed == [torn]
        assert sorted(p.name for p in tmp_path.glob("snapshot-*")) == sorted(
            p.name for p in published
        )

    def test_keep_must_be_positive(self, tmp_path):
        from repro.core.persistence import prune_snapshots

        with pytest.raises(ValueError):
            prune_snapshots(tmp_path, keep=0)

    def test_service_snapshot_validates_keep_before_publishing(
        self, populated_index, tmp_path
    ):
        # Invalid keep must fail *before* any durable work: no snapshot
        # directory appears and stats keep no phantom metadata.
        from repro.service import IndexService

        service = IndexService(populated_index)
        with pytest.raises(ValueError):
            service.snapshot(tmp_path, keep=0)
        assert list(tmp_path.glob("snapshot-*")) == []
        assert service.stats()["snapshot"] is None
        service.close()

    def test_missing_directory_is_noop(self, tmp_path):
        from repro.core.persistence import prune_snapshots

        assert prune_snapshots(tmp_path / "absent", keep=1) == []

    def test_service_snapshot_with_keep(self, populated_index, tmp_path):
        from repro.service import IndexService

        service = IndexService(populated_index)
        infos = [service.snapshot(tmp_path, keep=2) for _ in range(4)]
        assert infos[0]["pruned_snapshots"] == 0
        assert sum(info["pruned_snapshots"] for info in infos) == 2
        survivors = list(tmp_path.glob("snapshot-*"))
        assert len(survivors) == 2
        # The newest snapshot is the resolvable one and loads cleanly.
        from repro.core.persistence import resolve_snapshot

        current = resolve_snapshot(tmp_path)
        assert current is not None and current in survivors
        loaded = load_index(current)
        assert len(loaded) == len(populated_index)
        service.close()
