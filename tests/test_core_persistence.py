"""Tests for repro.core.persistence: index save/load."""

import json

import pytest

from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.core.persistence import load_index, save_index
from repro.geo.point import Point, destination
from repro.normalize import standard_normalizer

CONFIG = GeodabConfig(k=3, t=5)


def walk_points(n, bearing=90.0):
    out = [Point(51.5074, -0.1278)]
    for _ in range(n - 1):
        out.append(destination(out[-1], bearing, 90.0))
    return out


@pytest.fixture()
def populated_index():
    index = GeodabIndex(CONFIG)
    index.add("east", walk_points(30, bearing=90.0))
    index.add("north", walk_points(30, bearing=0.0))
    index.add("diag", walk_points(30, bearing=45.0))
    return index


class TestRoundTrip:
    def test_query_results_identical(self, populated_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(populated_index, path)
        loaded = load_index(path)
        for bearing in (90.0, 0.0, 45.0):
            query = walk_points(30, bearing=bearing)
            original = populated_index.query(query)
            restored = loaded.query(query)
            assert [(r.trajectory_id, r.distance) for r in original] == [
                (r.trajectory_id, r.distance) for r in restored
            ]

    def test_config_round_trips(self, populated_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(populated_index, path)
        loaded = load_index(path)
        assert loaded.config == CONFIG

    def test_fingerprint_sets_survive(self, populated_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(populated_index, path)
        loaded = load_index(path)
        original = populated_index.fingerprint_set("east")
        restored = loaded.fingerprint_set("east")
        assert original.selections == restored.selections

    def test_stats_preserved(self, populated_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(populated_index, path)
        loaded = load_index(path)
        assert loaded.stats() == populated_index.stats()

    def test_normalizer_reattached(self, tmp_path):
        norm = standard_normalizer()
        index = GeodabIndex(GeodabConfig(), normalizer=norm)
        points = walk_points(100)
        index.add("a", points)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path, normalizer=norm)
        jittered = [destination(p, 10.0, 3.0) for p in points]
        results = loaded.query(jittered)
        assert results and results[0].trajectory_id == "a"

    def test_empty_index(self, tmp_path):
        index = GeodabIndex(CONFIG)
        path = tmp_path / "empty.json"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == 0


class TestValidation:
    def test_non_string_ids_rejected(self, tmp_path):
        index = GeodabIndex(CONFIG)
        index.add(42, walk_points(20))
        with pytest.raises(ValueError):
            save_index(index, tmp_path / "bad.json")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_index(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "versioned.json"
        path.write_text(
            json.dumps(
                {"format": "repro-geodab-index", "version": 999, "documents": []}
            )
        )
        with pytest.raises(ValueError):
            load_index(path)
