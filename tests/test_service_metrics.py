"""Tests for repro.service.metrics: histograms, registry, exposition.

The log-scale histogram quantiles are checked against the retained
``percentile`` nearest-rank oracle: a bucket quantile must never be
below the true value and at most one bucket width (factor sqrt(2))
above it.
"""

import json
import logging
import threading
import time

import pytest

from repro.service.metrics import (
    DEFAULT_BOUNDARIES_S,
    LatencyHistogram,
    ServiceMetrics,
    SlowQueryLog,
    percentile,
    prometheus_text,
)


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.total == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.mean_s == 0.0

    def test_bucket_boundaries_are_log_scale(self):
        ratios = [
            DEFAULT_BOUNDARIES_S[i + 1] / DEFAULT_BOUNDARIES_S[i]
            for i in range(len(DEFAULT_BOUNDARIES_S) - 1)
        ]
        for ratio in ratios:
            assert ratio == pytest.approx(2.0 ** 0.5)
        assert DEFAULT_BOUNDARIES_S[0] == pytest.approx(5e-5)
        assert DEFAULT_BOUNDARIES_S[-1] > 30.0

    def test_record_lands_in_correct_bucket(self):
        hist = LatencyHistogram(boundaries=(0.001, 0.01, 0.1))
        hist.record(0.0005)   # <= 0.001
        hist.record(0.001)    # boundary is an upper bound (le semantics)
        hist.record(0.005)
        hist.record(0.05)
        hist.record(5.0)      # overflow
        assert hist.counts == [2, 1, 1, 1]
        assert hist.total == 5
        assert hist.sum_s == pytest.approx(0.0565 + 5.0)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    def test_quantile_vs_nearest_rank_oracle(self, q):
        # Deterministic spread over five decades of latency, all inside
        # the histogram's finite range (overflow reports the ceiling, so
        # the error bound only holds for in-range observations).
        values = [5e-5 * (1.06 ** i) for i in range(200)]
        hist = LatencyHistogram()
        for value in values:
            hist.record(value)
        exact = percentile(values, q)
        bucketed = hist.quantile(q)
        # Never below the true nearest-rank value; at most one bucket
        # (factor sqrt(2)) above it.
        assert bucketed >= exact * (1.0 - 1e-12)
        assert bucketed <= exact * (2.0 ** 0.5) * (1.0 + 1e-12)

    def test_overflow_quantile_reports_ceiling(self):
        hist = LatencyHistogram(boundaries=(0.001, 0.01))
        hist.record(100.0)
        assert hist.quantile(0.5) == 0.01

    def test_merge_equals_combined_recording(self):
        a, b, combined = (
            LatencyHistogram(), LatencyHistogram(), LatencyHistogram(),
        )
        for i, value in enumerate(5e-5 * (1.3 ** i) for i in range(60)):
            (a if i % 2 else b).record(value)
            combined.record(value)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.total == combined.total
        assert a.sum_s == pytest.approx(combined.sum_s)

    def test_merge_rejects_different_boundaries(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(boundaries=(1.0,)))

    def test_summary_shape(self):
        hist = LatencyHistogram()
        hist.record(0.004)
        summary = hist.summary_ms()
        assert summary["count"] == 1
        assert summary["mean_ms"] == pytest.approx(4.0)
        assert summary["p50_ms"] == summary["p99_ms"]


class TestServiceMetrics:
    def test_snapshot_scalar_fields(self):
        metrics = ServiceMetrics()
        metrics.record_query(0.002, cached=False, fanout_width=4, batch_size=2)
        metrics.record_query(0.001, cached=True)
        metrics.record_ingest(7)
        metrics.record_delete()
        metrics.record_error()
        snapshot = metrics.snapshot()
        assert snapshot.queries == 2
        assert snapshot.ingested == 7
        assert snapshot.deleted == 1
        assert snapshot.errors == 1
        assert snapshot.cache_hits == 1
        assert snapshot.cache_misses == 1
        assert snapshot.cache_hit_rate == pytest.approx(0.5)
        assert snapshot.mean_fanout_width == pytest.approx(4.0)
        assert snapshot.mean_batch_size == pytest.approx(2.0)
        assert snapshot.latency_p50_ms > 0.0

    def test_stage_and_endpoint_histograms(self):
        metrics = ServiceMetrics()
        metrics.record_stages({"fanout": 0.002, "rank": 0.0005})
        metrics.record_http("POST /query", 200, 0.003)
        metrics.record_http("POST /query", 400, 0.001)
        snapshot = metrics.snapshot()
        assert snapshot.stages["fanout"]["count"] == 1
        assert snapshot.stages["rank"]["count"] == 1
        assert snapshot.endpoints["POST /query"]["count"] == 2
        assert snapshot.status_counts["POST /query"] == {"2xx": 1, "4xx": 1}

    def test_disabled_records_nothing(self):
        metrics = ServiceMetrics(enabled=False)
        metrics.record_query(0.5, cached=False)
        metrics.record_stages({"rank": 0.5})
        metrics.record_http("GET /stats", 200, 0.5)
        metrics.record_ingest(3)
        metrics.record_error()
        snapshot = metrics.snapshot()
        assert snapshot.queries == 0
        assert snapshot.ingested == 0
        assert snapshot.errors == 0
        assert snapshot.stages == {}
        assert snapshot.endpoints == {}

    def test_snapshot_is_sort_free_under_contention(self):
        """Regression: /stats used to re-sort a 4096-entry reservoir
        under the registry lock; with histograms both record and
        snapshot must stay fast while many threads hammer the lock."""
        metrics = ServiceMetrics()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                metrics.record_query(0.001, cached=False, fanout_width=2)
                metrics.record_stages({"fanout": 0.0005, "rank": 0.0002})

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            # Warm up so histograms have plenty of state to read.
            time.sleep(0.05)
            readings = []
            for _ in range(50):
                t0 = time.perf_counter()
                metrics.snapshot()
                readings.append(time.perf_counter() - t0)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        # Generous bound for CI noise: each snapshot is a fixed-size
        # histogram walk, so even the worst reading stays comfortably
        # inside tens of milliseconds.
        assert max(readings) < 0.25
        assert metrics.snapshot().queries > 0

    def test_qps_window(self):
        fake = [0.0]
        metrics = ServiceMetrics(qps_window_s=10.0, clock=lambda: fake[0])
        for _ in range(5):
            metrics.record_query(0.001, cached=False)
        fake[0] = 10.0
        assert metrics.snapshot().qps == pytest.approx(0.5)
        fake[0] = 25.0  # all five queries age out of the window
        assert metrics.snapshot().qps == 0.0


class TestPrometheusExposition:
    def test_golden_exposition(self):
        metrics = ServiceMetrics(boundaries=(0.001, 0.01))
        metrics.record_query(0.0005, cached=False, fanout_width=1)
        metrics.record_query(0.005, cached=True)
        metrics.record_stages({"rank": 0.0005})
        metrics.record_http("POST /query", 200, 0.0005)
        text = prometheus_text(metrics.export(), {"trajectories": 42})
        expected = [
            "# HELP geodabs_queries_total Queries served (cache hits included).",
            "# TYPE geodabs_queries_total counter",
            "geodabs_queries_total 2",
            'geodabs_http_requests_total{endpoint="POST /query",status="2xx"} 1',
            'geodabs_request_latency_seconds_bucket{le="0.001"} 1',
            'geodabs_request_latency_seconds_bucket{le="0.01"} 2',
            'geodabs_request_latency_seconds_bucket{le="+Inf"} 2',
            "geodabs_request_latency_seconds_sum 0.0055",
            "geodabs_request_latency_seconds_count 2",
            'geodabs_request_latency_seconds_bucket{endpoint="POST /query",le="0.001"} 1',
            'geodabs_stage_latency_seconds_bucket{stage="rank",le="0.001"} 1',
            'geodabs_stage_latency_seconds_sum{stage="rank"} 0.0005',
            "# TYPE geodabs_trajectories gauge",
            "geodabs_trajectories 42",
        ]
        lines = text.splitlines()
        for line in expected:
            assert line in lines, f"missing exposition line: {line}"
        assert text.endswith("\n")

    def test_bucket_counts_are_cumulative(self):
        metrics = ServiceMetrics(boundaries=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            metrics.record_query(value, cached=False)
        text = prometheus_text(metrics.export())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("geodabs_request_latency_seconds_bucket{le=")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == [1, 2, 3, 4]
        assert counts == sorted(counts)

    def test_every_histogram_family_has_help_and_type(self):
        metrics = ServiceMetrics()
        metrics.record_query(0.001, cached=False)
        text = prometheus_text(metrics.export())
        for family in (
            "geodabs_request_latency_seconds",
            "geodabs_stage_latency_seconds",
        ):
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} histogram" in text


class TestSlowQueryLog:
    def test_threshold_and_ring(self):
        log = SlowQueryLog(threshold_ms=10.0, capacity=3, clock=lambda: 99.0)
        assert log.should_record(0.005) is False
        assert log.should_record(0.010) is True
        for i in range(5):
            log.record({"kind": "query", "i": i})
        entries = log.entries()
        assert [entry["i"] for entry in entries] == [2, 3, 4]
        assert all(entry["at"] == 99.0 for entry in entries)
        payload = log.as_dict()
        assert payload["recorded"] == 5
        assert payload["capacity"] == 3
        assert payload["threshold_ms"] == 10.0

    def test_entries_mirror_to_logger_as_json(self, caplog):
        log = SlowQueryLog(threshold_ms=0.0, clock=lambda: 1.0)
        with caplog.at_level(logging.WARNING, logger="repro.service.slowlog"):
            log.record({"kind": "query", "latency_ms": 12.5})
        assert len(caplog.records) == 1
        parsed = json.loads(caplog.records[0].getMessage())
        assert parsed == {"at": 1.0, "kind": "query", "latency_ms": 12.5}

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=1.0, capacity=0)
