"""Tests for the tiered exact search: QuerySpec, re-rank, full pipeline.

The load-bearing property: pruning in :func:`rerank_candidates` never
changes the answer — over any candidate set the re-rank returns exactly
what the brute-force oracle :func:`exact_search` returns over the same
items (ids, order, and distances within the ``math.isclose`` 1e-9
regime).  On top of that, the full tiered pipeline (Jaccard retrieve →
exact re-rank) is checked for identity with the oracle over a road-
network corpus, on both the single-node and the sharded backend.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.index import GeodabIndex
from repro.core.query import QuerySpec
from repro.core.rerank import (
    ExactSearchUnsupported,
    _lower_bound,
    _upper_bound,
    exact_distance,
    exact_search,
    rerank_candidates,
)
from repro.core.scoring import SearchResult
from repro.geo.point import Point
from repro.normalize import standard_normalizer

from .conftest import city_points


def trajectories(min_size: int = 1, max_size: int = 6):
    return st.lists(city_points(), min_size=min_size, max_size=max_size)


def city(seed: str) -> Point:
    """A deterministic in-city point derived from a string seed."""
    offset = (sum(map(ord, seed)) % 1000) / 1e5
    return Point(51.50 + offset, -0.12 + offset)


#: One spec per (mode, metric, band) corner the re-rank must serve.
EXACT_SPECS = [
    QuerySpec(mode="exact_knn", metric="dtw", limit=3),
    QuerySpec(mode="exact_knn", metric="dtw", limit=3, band=2),
    QuerySpec(mode="exact_knn", metric="frechet", limit=3),
    QuerySpec(mode="exact_range", metric="dtw", max_distance=5_000.0),
    QuerySpec(mode="exact_range", metric="frechet", max_distance=5_000.0),
]


def assert_same_results(got, want):
    assert [r.trajectory_id for r in got] == [r.trajectory_id for r in want]
    for g, w in zip(got, want):
        assert math.isclose(g.distance, w.distance, rel_tol=1e-9, abs_tol=1e-9)


class TestQuerySpecValidation:
    def test_defaults_are_approx_jaccard(self):
        spec = QuerySpec()
        assert spec.mode == "approx"
        assert spec.metric == "jaccard"
        assert spec.max_distance == 1.0
        assert not spec.is_exact

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "fuzzy"},
            {"metric": "euclid"},
            {"metric": "dtw"},  # approx supports only jaccard
            {"mode": "exact_knn", "limit": 3},  # needs dtw/frechet
            {"mode": "exact_knn", "metric": "dtw"},  # needs limit
            {"mode": "exact_knn", "metric": "dtw", "limit": 0},
            {"mode": "exact_knn", "metric": "dtw", "limit": True},
            {"mode": "exact_knn", "metric": "dtw", "limit": "3"},
            # exact_knn takes no radius
            {"mode": "exact_knn", "metric": "dtw", "limit": 3, "max_distance": 9.0},
            {"mode": "exact_range", "metric": "dtw"},  # needs radius
            {"mode": "exact_range", "metric": "dtw", "max_distance": -1.0},
            {"max_distance": 1.5},  # approx cutoff is a Jaccard in [0, 1]
            {"max_distance": "half"},
            {"mode": "exact_knn", "metric": "dtw", "limit": 3, "overfetch": 0},
            {"mode": "exact_knn", "metric": "dtw", "limit": 3, "band": -1},
            {"mode": "exact_knn", "metric": "dtw", "limit": 3, "band": True},
            # band is a dtw knob
            {"mode": "exact_knn", "metric": "frechet", "limit": 3, "band": 2},
        ],
    )
    def test_invalid_combinations(self, kwargs):
        with pytest.raises(ValueError):
            QuerySpec(**kwargs)

    def test_tier1_overfetches_for_exact_knn(self):
        spec = QuerySpec(mode="exact_knn", metric="dtw", limit=3, overfetch=5)
        assert spec.is_exact
        assert spec.tier1_limit == 15
        assert spec.tier1_max_distance == 1.0

    def test_tier1_passthrough_for_approx(self):
        spec = QuerySpec(limit=7, max_distance=0.4)
        assert spec.tier1_limit == 7
        assert spec.tier1_max_distance == 0.4

    def test_exact_range_without_limit_keeps_every_candidate(self):
        spec = QuerySpec(mode="exact_range", metric="frechet", max_distance=10.0)
        assert spec.tier1_limit is None

    def test_cache_key_separates_answer_changing_fields(self):
        base = QuerySpec(mode="exact_knn", metric="dtw", limit=3)
        variants = [
            QuerySpec(limit=3),
            QuerySpec(mode="exact_knn", metric="frechet", limit=3),
            QuerySpec(mode="exact_knn", metric="dtw", limit=4),
            QuerySpec(mode="exact_knn", metric="dtw", limit=3, overfetch=8),
            QuerySpec(mode="exact_knn", metric="dtw", limit=3, band=2),
            QuerySpec(mode="exact_range", metric="dtw", max_distance=3.0),
        ]
        keys = {spec.cache_key() for spec in variants}
        assert len(keys) == len(variants)
        assert base.cache_key() not in keys


class TestQuerySpecWireFormat:
    @pytest.mark.parametrize(
        "spec",
        [QuerySpec(), QuerySpec(limit=5, max_distance=0.3), *EXACT_SPECS],
    )
    def test_round_trip(self, spec):
        assert QuerySpec.from_json(spec.to_json()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            QuerySpec.from_json({"mode": "approx", "limti": 3})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            QuerySpec.from_json([1, 2])

    def test_non_string_mode_rejected(self):
        with pytest.raises(ValueError, match="'mode' must be a string"):
            QuerySpec.from_json({"mode": 3})

    def test_explicit_nulls_mean_defaults(self):
        spec = QuerySpec.from_json({"limit": None, "band": None})
        assert spec == QuerySpec()


class TestBounds:
    """lb/ub must bracket the exact distance — pruning soundness."""

    @given(trajectories(), trajectories())
    def test_dtw_bounds_bracket_exact(self, p, q):
        spec = QuerySpec(mode="exact_knn", metric="dtw", limit=1)
        distance = exact_distance(p, q, spec)
        assert _lower_bound(p, q, spec) <= distance * (1 + 1e-9) + 1e-9
        assert distance <= _upper_bound(p, q, spec) * (1 + 1e-9) + 1e-9

    @given(trajectories(), trajectories(), st.integers(min_value=0, max_value=3))
    def test_banded_dtw_bounds_bracket_exact(self, p, q, band):
        spec = QuerySpec(mode="exact_knn", metric="dtw", limit=1, band=band)
        distance = exact_distance(p, q, spec)
        assert math.isfinite(distance)  # band widening guarantees a path
        assert _lower_bound(p, q, spec) <= distance * (1 + 1e-9) + 1e-9
        assert distance <= _upper_bound(p, q, spec) * (1 + 1e-9) + 1e-9

    @given(trajectories(), trajectories())
    def test_frechet_bounds_bracket_exact(self, p, q):
        spec = QuerySpec(mode="exact_knn", metric="frechet", limit=1)
        distance = exact_distance(p, q, spec)
        assert _lower_bound(p, q, spec) <= distance * (1 + 1e-9) + 1e-9
        assert distance <= _upper_bound(p, q, spec) * (1 + 1e-9) + 1e-9


class TestRerankMatchesOracle:
    """Over any candidate set, re-rank == brute force (the tentpole)."""

    @given(st.data())
    def test_identity_over_candidate_sets(self, data):
        corpus = data.draw(
            st.lists(trajectories(), min_size=2, max_size=10), label="corpus"
        )
        query = data.draw(trajectories(), label="query")
        items = [(f"t{i}", points) for i, points in enumerate(corpus)]
        lookup = dict(items)
        candidates = [SearchResult(tid, 0.5, 1) for tid, _ in items]
        for spec in EXACT_SPECS:
            got, stats = rerank_candidates(
                query, candidates, spec, lookup.__getitem__
            )
            assert_same_results(got, exact_search(query, items, spec))
            assert stats.candidates == len(items)
            assert stats.computed + stats.pruned == len(items)

    def test_rerank_keeps_tier1_shared_terms(self):
        items = [("a", [city("a")]), ("b", [city("b")])]
        lookup = dict(items)
        candidates = [SearchResult("a", 0.5, 7), SearchResult("b", 0.25, 9)]
        spec = QuerySpec(mode="exact_knn", metric="dtw", limit=2)
        got, _ = rerank_candidates(
            [city("q")], candidates, spec, lookup.__getitem__
        )
        assert {r.trajectory_id: r.shared_terms for r in got} == {"a": 7, "b": 9}

    def test_empty_query_rejected(self):
        spec = QuerySpec(mode="exact_knn", metric="dtw", limit=1)
        with pytest.raises(ValueError, match="non-empty"):
            rerank_candidates([], [], spec, lambda _tid: [])

    def test_empty_candidates(self):
        spec = QuerySpec(mode="exact_knn", metric="dtw", limit=3)
        got, stats = rerank_candidates(
            [city("q")], [], spec, lambda _tid: []
        )
        assert got == []
        assert (stats.candidates, stats.computed, stats.pruned) == (0, 0, 0)


# ----------------------------------------------------------------------
# Full pipeline: Jaccard retrieve -> exact re-rank, vs the oracle
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def corpus(small_dataset):
    return [(r.trajectory_id, list(r.points)) for r in small_dataset.records]


@pytest.fixture(scope="module")
def exact_single(corpus):
    index = GeodabIndex(normalizer=standard_normalizer(), store_points=True)
    index.add_many(corpus)
    return index


@pytest.fixture(scope="module")
def exact_sharded(corpus):
    index = ShardedGeodabIndex(
        sharding=ShardingConfig(num_shards=4, num_nodes=2),
        normalizer=standard_normalizer(),
        store_points=True,
    )
    index.add_many(corpus)
    return index


class TestTieredPipeline:
    @pytest.mark.parametrize("metric", ["dtw", "frechet"])
    def test_single_node_exact_knn_matches_oracle(
        self, exact_single, corpus, small_dataset, metric
    ):
        spec = QuerySpec(mode="exact_knn", metric=metric, limit=3)
        for query in small_dataset.queries:
            got = exact_single.query(list(query.points), spec=spec)
            want = exact_search(list(query.points), corpus, spec)
            assert_same_results(got, want)

    @pytest.mark.parametrize("metric", ["dtw", "frechet"])
    def test_sharded_exact_knn_matches_oracle(
        self, exact_sharded, corpus, small_dataset, metric
    ):
        spec = QuerySpec(mode="exact_knn", metric=metric, limit=3)
        for query in small_dataset.queries:
            points = list(query.points)
            got, stats = exact_sharded.query_prepared(
                exact_sharded.prepare_query(points), spec=spec, query_points=points
            )
            want = exact_search(points, corpus, spec)
            assert_same_results(got, want)
            assert stats.candidates >= len(got)
            assert exact_sharded.query(points, spec=spec) == got

    def test_banded_dtw_pipeline(self, exact_single, corpus, small_dataset):
        spec = QuerySpec(mode="exact_knn", metric="dtw", limit=3, band=8)
        query = list(small_dataset.queries[0].points)
        got = exact_single.query(query, spec=spec)
        assert_same_results(got, exact_search(query, corpus, spec))

    def test_exact_range_radius_is_meters(
        self, exact_single, corpus, small_dataset
    ):
        query = list(small_dataset.queries[0].points)
        knn = QuerySpec(mode="exact_knn", metric="frechet", limit=1)
        nearest = exact_single.query(query, spec=knn)[0]
        radius = nearest.distance * 1.5
        spec = QuerySpec(mode="exact_range", metric="frechet", max_distance=radius)
        got = exact_single.query(query, spec=spec)
        want = exact_search(query, corpus, spec)
        assert_same_results(got, want)
        assert all(r.distance <= radius for r in got)
        assert nearest.trajectory_id in {r.trajectory_id for r in got}

    def test_approx_spec_keeps_jaccard_distances(
        self, exact_single, small_dataset
    ):
        query = list(small_dataset.queries[0].points)
        got = exact_single.query(query, spec=QuerySpec(limit=5))
        assert got == exact_single.query(query, 5)
        assert all(0.0 <= r.distance <= 1.0 for r in got)

    def test_exact_needs_stored_points_single(self, corpus, small_dataset):
        index = GeodabIndex(normalizer=standard_normalizer())
        index.add_many(corpus)
        spec = QuerySpec(mode="exact_knn", metric="dtw", limit=3)
        with pytest.raises(ExactSearchUnsupported):
            index.query(list(small_dataset.queries[0].points), spec=spec)

    def test_exact_needs_stored_points_sharded(self, corpus, small_dataset):
        index = ShardedGeodabIndex(normalizer=standard_normalizer())
        index.add_many(corpus)
        spec = QuerySpec(mode="exact_knn", metric="dtw", limit=3)
        with pytest.raises(ExactSearchUnsupported):
            index.query(list(small_dataset.queries[0].points), spec=spec)

    def test_result_cache_never_crosses_specs(self, corpus, small_dataset):
        # Regression: the result-cache key must include every QuerySpec
        # field that changes the answer — an exact_knn answer (meters)
        # must never be served for an approx query (Jaccard in [0, 1]),
        # or for an exact query under a different metric.
        from repro.service import IndexService

        index = GeodabIndex(normalizer=standard_normalizer(), store_points=True)
        service = IndexService(index)
        service.ingest(corpus)
        points = list(small_dataset.queries[0].points)

        exact = QuerySpec(mode="exact_knn", metric="dtw", limit=3)
        first = service.query(points, spec=exact)
        assert first.cached is False
        assert all(r.distance > 1.0 for r in first.results)  # meters

        approx = service.query(points, spec=QuerySpec(limit=3))
        assert approx.cached is False  # same points, different spec
        assert all(0.0 <= r.distance <= 1.0 for r in approx.results)

        frechet = service.query(
            points, spec=QuerySpec(mode="exact_knn", metric="frechet", limit=3)
        )
        assert frechet.cached is False
        assert [r.distance for r in frechet.results] != [
            r.distance for r in first.results
        ]

        repeat = service.query(points, spec=exact)
        assert repeat.cached is True
        assert repeat.results == first.results
        service.close()

    def test_removal_reflected_in_exact_results(self, corpus, small_dataset):
        index = GeodabIndex(normalizer=standard_normalizer(), store_points=True)
        index.add_many(corpus)
        spec = QuerySpec(mode="exact_knn", metric="dtw", limit=3)
        query = list(small_dataset.queries[0].points)
        victim = index.query(query, spec=spec)[0].trajectory_id
        index.remove(victim)
        survivors = [(tid, pts) for tid, pts in corpus if tid != victim]
        got = index.query(query, spec=spec)
        assert victim not in {r.trajectory_id for r in got}
        # The retrieval tier can only surface trajectories sharing at
        # least one fingerprint term; after the removal only two such
        # neighbours remain, so the tiered answer is the oracle's
        # prefix (identical ids, order, and distances as far as it goes).
        assert len(got) == 2
        assert_same_results(got, exact_search(query, survivors, spec)[: len(got)])
