"""Tests for repro.geo.bbox: bounding boxes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.bbox import WORLD, BBox, bbox_of, bbox_union, square_around
from repro.geo.point import Point, haversine

from .conftest import points


def boxes():
    """Strategy producing valid (non-wrapping) boxes."""
    return st.builds(
        lambda a, b, c, d: BBox(min(a, b), min(c, d), max(a, b), max(c, d)),
        st.floats(min_value=-90, max_value=90, allow_nan=False),
        st.floats(min_value=-90, max_value=90, allow_nan=False),
        st.floats(min_value=-180, max_value=180, allow_nan=False),
        st.floats(min_value=-180, max_value=180, allow_nan=False),
    )


class TestConstruction:
    def test_invalid_latitude_order(self):
        with pytest.raises(ValueError):
            BBox(10.0, 0.0, 5.0, 1.0)

    def test_invalid_longitude_order(self):
        with pytest.raises(ValueError):
            BBox(0.0, 10.0, 1.0, 5.0)

    def test_degenerate_box_allowed(self):
        box = BBox(1.0, 2.0, 1.0, 2.0)
        assert box.contains(Point(1.0, 2.0))

    def test_world(self):
        assert WORLD.contains(Point(90.0, 180.0))
        assert WORLD.contains(Point(-90.0, -180.0))


class TestPredicates:
    BOX = BBox(0.0, 0.0, 10.0, 10.0)

    def test_contains_interior(self):
        assert self.BOX.contains(Point(5.0, 5.0))

    def test_contains_boundary(self):
        assert self.BOX.contains(Point(0.0, 0.0))
        assert self.BOX.contains(Point(10.0, 10.0))

    def test_not_contains(self):
        assert not self.BOX.contains(Point(-0.1, 5.0))
        assert not self.BOX.contains(Point(5.0, 10.1))

    def test_intersects_overlap(self):
        assert self.BOX.intersects(BBox(5.0, 5.0, 15.0, 15.0))

    def test_intersects_touching_edge(self):
        assert self.BOX.intersects(BBox(10.0, 0.0, 20.0, 10.0))

    def test_not_intersects(self):
        assert not self.BOX.intersects(BBox(11.0, 11.0, 12.0, 12.0))

    def test_contains_box(self):
        assert self.BOX.contains_box(BBox(1.0, 1.0, 9.0, 9.0))
        assert not self.BOX.contains_box(BBox(1.0, 1.0, 11.0, 9.0))

    @given(boxes(), boxes())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_box(a)
        assert u.contains_box(b)


class TestGeometry:
    def test_center(self):
        assert BBox(0.0, 0.0, 10.0, 20.0).center == Point(5.0, 10.0)

    def test_expand(self):
        box = BBox(0.0, 0.0, 1.0, 1.0).expand(Point(5.0, -3.0))
        assert box.contains(Point(5.0, -3.0))
        assert box.contains(Point(0.5, 0.5))

    def test_buffer_clamps_at_domain(self):
        box = BBox(89.0, 179.0, 90.0, 180.0).buffer_degrees(5.0, 5.0)
        assert box.north == 90.0
        assert box.east == 180.0

    def test_width_and_height_positive(self):
        box = BBox(51.0, -1.0, 52.0, 0.0)
        assert box.width_m > 0
        assert box.height_m > 0
        # At 51 degrees north a degree of longitude is shorter than one
        # of latitude.
        assert box.width_m < box.height_m

    def test_corners(self):
        sw, se, nw, ne = BBox(0.0, 0.0, 1.0, 2.0).corners()
        assert sw == Point(0.0, 0.0)
        assert ne == Point(1.0, 2.0)

    def test_area(self):
        assert BBox(0.0, 0.0, 2.0, 3.0).area_deg2() == pytest.approx(6.0)

    def test_diagonal(self):
        box = BBox(0.0, 0.0, 1.0, 1.0)
        assert box.diagonal_m() == pytest.approx(
            haversine(Point(0.0, 0.0), Point(1.0, 1.0))
        )


class TestDistances:
    def test_min_distance_intersecting_is_zero(self):
        a = BBox(0.0, 0.0, 2.0, 2.0)
        b = BBox(1.0, 1.0, 3.0, 3.0)
        assert a.min_distance_to(b) == 0.0

    def test_min_distance_is_lower_bound(self):
        a = BBox(0.0, 0.0, 1.0, 1.0)
        b = BBox(3.0, 3.0, 4.0, 4.0)
        lower = a.min_distance_to(b)
        # Distance between the closest corners must be >= the bound.
        actual = haversine(Point(1.0, 1.0), Point(3.0, 3.0))
        assert 0.0 < lower <= actual + 1e-6

    @given(boxes(), boxes(), points(), points())
    def test_min_distance_never_exceeds_member_distance(self, a, b, p, q):
        if not (a.contains(p) and b.contains(q)):
            return
        assert a.min_distance_to(b) <= haversine(p, q) + 1e-6

    def test_max_distance_upper_bounds_corners(self):
        a = BBox(0.0, 0.0, 1.0, 1.0)
        b = BBox(2.0, 2.0, 3.0, 3.0)
        assert a.max_distance_to(b) >= haversine(Point(0.0, 0.0), Point(3.0, 3.0)) - 1e-6


class TestHelpers:
    def test_bbox_of(self):
        pts = [Point(1.0, 5.0), Point(-2.0, 7.0), Point(0.5, 6.0)]
        box = bbox_of(pts)
        assert box == BBox(-2.0, 5.0, 1.0, 7.0)

    def test_bbox_of_empty_raises(self):
        with pytest.raises(ValueError):
            bbox_of([])

    @given(st.lists(points(), min_size=1, max_size=20))
    def test_bbox_of_contains_all(self, pts):
        box = bbox_of(pts)
        assert all(box.contains(p) for p in pts)

    def test_bbox_union(self):
        u = bbox_union([BBox(0, 0, 1, 1), BBox(5, 5, 6, 6)])
        assert u == BBox(0, 0, 6, 6)

    def test_bbox_union_empty_raises(self):
        with pytest.raises(ValueError):
            bbox_union([])

    def test_square_around_dimensions(self):
        box = square_around(Point(51.5, -0.12), 5_000.0)
        assert box.width_m == pytest.approx(10_000.0, rel=0.01)
        assert box.height_m == pytest.approx(10_000.0, rel=0.01)

    def test_square_around_bad_radius(self):
        with pytest.raises(ValueError):
            square_around(Point(0, 0), -1.0)
