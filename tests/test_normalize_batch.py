"""Property tests: vectorized normalization is bit-identical to scalar.

Every batch normalization stage — grid snap, moving-average and median
smoothing, decimation, and composed pipelines — is cross-validated
against its scalar counterpart over randomized batches, including the
empty, single-point, and constant-trajectory edge cases.  NaN handling
is asserted to match the scalar contract: coordinates that ``Point``
rejects are rejected by the columnar containers too.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.normalize import (
    BatchDecimator,
    BatchGridNormalizer,
    BatchIdentity,
    BatchMedianSmoother,
    BatchMovingAverageSmoother,
    BatchPipeline,
    ComposedNormalizer,
    Decimator,
    GridNormalizer,
    MedianSmoother,
    MovingAverageSmoother,
    PointBatch,
    compose,
    identity,
    normalize_point_batch,
    standard_normalizer,
    vectorize_normalizer,
)

from .conftest import latitudes, longitudes


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

def trajectories(max_size: int = 40) -> st.SearchStrategy[list[Point]]:
    return st.lists(
        st.builds(Point, latitudes(), longitudes()),
        min_size=0,
        max_size=max_size,
    )


def batches() -> st.SearchStrategy[list[list[Point]]]:
    """Batches mixing empty, single-point, and ordinary trajectories."""
    return st.lists(trajectories(), min_size=0, max_size=8)


NORMALIZERS = [
    GridNormalizer(36),
    GridNormalizer(1),
    GridNormalizer(60),
    MovingAverageSmoother(9),
    MovingAverageSmoother(2),
    MedianSmoother(5),
    MedianSmoother(4),
    Decimator(3),
    Decimator(1),
    standard_normalizer(36),
    compose(MedianSmoother(3), MovingAverageSmoother(5), GridNormalizer(30)),
    identity,
    None,
]


def _assert_batches_equal(batch, point_batch, normalizer) -> None:
    """Every trajectory matches the scalar reference, float for float."""
    got = point_batch.to_trajectories()
    assert len(got) == len(batch)
    for produced, points in zip(got, batch):
        expected = list(points) if normalizer is None else normalizer(points)
        assert len(produced) == len(expected)
        for a, b in zip(produced, expected):
            assert a.lat == b.lat
            assert a.lon == b.lon


# ----------------------------------------------------------------------
# Bit-identity across all vectorizable normalizers
# ----------------------------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize(
        "normalizer", NORMALIZERS, ids=lambda n: repr(n)[:50]
    )
    @given(batch=batches())
    def test_matches_scalar_path(self, normalizer, batch):
        point_batch = normalize_point_batch(normalizer, batch)
        assert point_batch is not None
        _assert_batches_equal(batch, point_batch, normalizer)

    @given(batch=batches())
    def test_standard_normalizer_roundtrip(self, batch):
        """The evaluation's default pipeline, end to end."""
        normalizer = standard_normalizer(36)
        point_batch = normalize_point_batch(normalizer, batch)
        _assert_batches_equal(batch, point_batch, normalizer)

    def test_edge_shapes(self):
        """Empty batch, empty trajectories, single points, constants."""
        edge = [
            [],
            [Point(0.0, 0.0)],
            [Point(51.5, -0.1)] * 7,
            [Point(90.0, 180.0), Point(-90.0, -180.0)],
        ]
        for normalizer in NORMALIZERS:
            point_batch = normalize_point_batch(normalizer, edge)
            _assert_batches_equal(edge, point_batch, normalizer)
            empty = normalize_point_batch(normalizer, [])
            assert len(empty) == 0 and empty.num_points == 0


# ----------------------------------------------------------------------
# The vectorizer mapping
# ----------------------------------------------------------------------

class TestVectorizeNormalizer:
    def test_known_stages_map_to_batch_twins(self):
        assert isinstance(vectorize_normalizer(None), BatchIdentity)
        assert isinstance(vectorize_normalizer(identity), BatchIdentity)
        assert isinstance(
            vectorize_normalizer(GridNormalizer(30)), BatchGridNormalizer
        )
        assert isinstance(
            vectorize_normalizer(MovingAverageSmoother(5)),
            BatchMovingAverageSmoother,
        )
        assert isinstance(
            vectorize_normalizer(MedianSmoother(3)), BatchMedianSmoother
        )
        assert isinstance(vectorize_normalizer(Decimator(2)), BatchDecimator)

    def test_composition_vectorizes_stage_by_stage(self):
        composed = compose(MovingAverageSmoother(9), GridNormalizer(36))
        assert isinstance(composed, ComposedNormalizer)
        vectorized = vectorize_normalizer(composed)
        assert isinstance(vectorized, BatchPipeline)
        assert len(vectorized.stages) == 2

    def test_arbitrary_callable_falls_back_to_scalar(self):
        assert vectorize_normalizer(lambda pts: list(pts)) is None
        mixed = compose(GridNormalizer(36), lambda pts: list(pts))
        assert vectorize_normalizer(mixed) is None
        assert normalize_point_batch(lambda pts: list(pts), [[]]) is None

    def test_compose_of_nothing_is_identity(self):
        assert compose() is identity


# ----------------------------------------------------------------------
# PointBatch container contract
# ----------------------------------------------------------------------

class TestPointBatch:
    @given(batch=batches())
    def test_roundtrip(self, batch):
        point_batch = PointBatch.from_trajectories(batch)
        assert len(point_batch) == len(batch)
        assert point_batch.num_points == sum(len(t) for t in batch)
        got = point_batch.to_trajectories()
        assert got == [list(t) for t in batch]

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf, 91.0])
    def test_from_arrays_rejects_invalid_latitudes(self, bad):
        with pytest.raises(ValueError):
            PointBatch.from_arrays(
                np.array([bad]), np.array([0.0]), np.array([0, 1])
            )

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -181.0, 200.0])
    def test_from_arrays_rejects_invalid_longitudes(self, bad):
        with pytest.raises(ValueError):
            PointBatch.from_arrays(
                np.array([0.0]), np.array([bad]), np.array([0, 1])
            )

    def test_from_arrays_rejects_malformed_bounds(self):
        lats = np.array([1.0, 2.0])
        lons = np.array([3.0, 4.0])
        with pytest.raises(ValueError):
            PointBatch.from_arrays(lats, lons, np.array([0, 1]))  # short
        with pytest.raises(ValueError):
            PointBatch.from_arrays(lats, lons, np.array([1, 2]))  # no 0
        with pytest.raises(ValueError):
            PointBatch.from_arrays(lats, lons, np.array([0, 2, 1, 2]))

    def test_from_arrays_accepts_valid_input(self):
        point_batch = PointBatch.from_arrays(
            np.array([1.0, 2.0, 3.0]),
            np.array([4.0, 5.0, 6.0]),
            np.array([0, 2, 2, 3]),
        )
        assert len(point_batch) == 3
        assert [len(t) for t in point_batch.to_trajectories()] == [2, 0, 1]

    def test_nan_coordinates_rejected_like_point(self):
        """The scalar and columnar contracts agree on NaN."""
        with pytest.raises(ValueError):
            Point(math.nan, 0.0)
        with pytest.raises(ValueError):
            PointBatch.from_arrays(
                np.array([math.nan]), np.array([0.0]), np.array([0, 1])
            )


class TestBatchUniformResampler:
    """Tolerance-equivalence of the vectorized uniform resampler.

    Unlike the discrete stages above, the resampler's cumulative-length
    formulation reassociates the scalar path's repeated subtraction, so
    the contract is ``math.isclose`` at 1e-9 — not bit identity.
    """

    @staticmethod
    def city_trajectories():
        # A ~2 km box keeps sample counts small enough that the O(n^2)
        # scalar reference stays fast.
        point = st.builds(
            Point,
            st.floats(min_value=51.50, max_value=51.52, allow_nan=False),
            st.floats(min_value=-0.13, max_value=-0.11, allow_nan=False),
        )
        return st.lists(point, min_size=0, max_size=12)

    @given(
        st.lists(city_trajectories(), min_size=0, max_size=6),
        st.sampled_from([100.0, 350.0, 1000.0]),
    )
    def test_matches_scalar_within_tolerance(self, batch, step):
        from repro.normalize import BatchUniformResampler, UniformResampler

        scalar = UniformResampler(step)
        got = BatchUniformResampler(step)(
            PointBatch.from_trajectories(batch)
        ).to_trajectories()
        assert len(got) == len(batch)
        for trajectory, out in zip(batch, got):
            want = scalar(trajectory)
            assert len(out) == len(want)
            for theirs, ours in zip(want, out):
                assert math.isclose(
                    theirs.lat, ours.lat, rel_tol=1e-9, abs_tol=1e-9
                )
                assert math.isclose(
                    theirs.lon, ours.lon, rel_tol=1e-9, abs_tol=1e-9
                )

    def test_vectorize_maps_uniform_resampler(self):
        from repro.normalize import BatchUniformResampler, UniformResampler

        vectorized = vectorize_normalizer(UniformResampler(50.0))
        assert isinstance(vectorized, BatchUniformResampler)
        assert vectorized.step_m == 50.0
        pipeline = vectorize_normalizer(
            compose(UniformResampler(120.0), GridNormalizer(36))
        )
        assert isinstance(pipeline, BatchPipeline)

    def test_identical_points_collapse_to_first(self):
        from repro.normalize import BatchUniformResampler

        batch = PointBatch.from_trajectories([[Point(10.0, 10.0)] * 5])
        out = BatchUniformResampler(25.0)(batch).to_trajectories()
        assert out == [[Point(10.0, 10.0)]]

    def test_invalid_step_rejected(self):
        from repro.normalize import BatchUniformResampler

        with pytest.raises(ValueError):
            BatchUniformResampler(0.0)
