"""Tests for repro.ir.metrics: precision/recall, ROC, AUC."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.metrics import (
    PRPoint,
    auc,
    average_pr_curve,
    average_precision,
    interpolated_precision_at,
    precision_at,
    precision_recall_curve,
    r_precision,
    recall_at,
    roc_curve,
)


class TestPRCurve:
    def test_perfect_ranking(self):
        curve = precision_recall_curve(["a", "b", "x"], {"a", "b"})
        assert curve[0] == PRPoint(0.5, 1.0)
        assert curve[1] == PRPoint(1.0, 1.0)
        assert curve[2].precision == pytest.approx(2 / 3)

    def test_worst_ranking(self):
        curve = precision_recall_curve(["x", "y", "a"], {"a"})
        assert curve[0].precision == 0.0
        assert curve[-1] == PRPoint(1.0, 1 / 3)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_curve(["a", "a"], {"a"})

    def test_empty_relevant_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_curve(["a"], set())

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=20))
    def test_recall_monotone(self, relevant_count, noise_count):
        relevant = {f"r{i}" for i in range(relevant_count)}
        ranked = [f"r{i}" for i in range(relevant_count)] + [
            f"n{i}" for i in range(noise_count)
        ]
        curve = precision_recall_curve(ranked, relevant)
        recalls = [p.recall for p in curve]
        assert recalls == sorted(recalls)
        assert recalls[-1] == 1.0


class TestInterpolation:
    CURVE = [PRPoint(0.25, 1.0), PRPoint(0.5, 0.6), PRPoint(1.0, 0.7)]

    def test_max_at_or_beyond_level(self):
        assert interpolated_precision_at(self.CURVE, 0.0) == 1.0
        assert interpolated_precision_at(self.CURVE, 0.3) == 0.7
        assert interpolated_precision_at(self.CURVE, 1.0) == 0.7

    def test_beyond_reachable_recall(self):
        curve = [PRPoint(0.5, 1.0)]
        assert interpolated_precision_at(curve, 0.9) == 0.0

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            interpolated_precision_at(self.CURVE, 1.5)

    def test_average_pr_curve(self):
        a = precision_recall_curve(["r", "x"], {"r"})
        b = precision_recall_curve(["x", "r"], {"r"})
        avg = average_pr_curve([a, b])
        assert len(avg) == 11
        assert avg[0].precision == pytest.approx((1.0 + 0.5) / 2)

    def test_average_pr_curve_empty(self):
        with pytest.raises(ValueError):
            average_pr_curve([])


class TestRoc:
    def test_perfect_ranking_auc_one(self):
        ranked = ["a", "b"] + [f"n{i}" for i in range(8)]
        fpr, tpr = roc_curve(ranked, {"a", "b"}, corpus_size=10)
        assert auc(fpr, tpr) == pytest.approx(1.0)

    def test_random_ranking_auc_half(self):
        # Alternating relevant/irrelevant gives AUC ~ 0.5.
        ranked = []
        relevant = set()
        for i in range(50):
            ranked.append(f"r{i}")
            relevant.add(f"r{i}")
            ranked.append(f"n{i}")
        fpr, tpr = roc_curve(ranked, relevant, corpus_size=100)
        assert auc(fpr, tpr) == pytest.approx(0.5, abs=0.02)

    def test_unretrieved_items_complete_the_curve(self):
        fpr, tpr = roc_curve(["a"], {"a", "b"}, corpus_size=10)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_corpus_smaller_than_relevant_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(["a"], {"a", "b", "c"}, corpus_size=2)

    def test_monotone_axes(self):
        ranked = ["a", "x", "b", "y", "z"]
        fpr, tpr = roc_curve(ranked, {"a", "b"}, corpus_size=20)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)


class TestAuc:
    def test_unit_square(self):
        assert auc(np.array([0.0, 1.0]), np.array([1.0, 1.0])) == 1.0

    def test_triangle(self):
        assert auc(np.array([0.0, 1.0]), np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_decreasing_x_rejected(self):
        with pytest.raises(ValueError):
            auc(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            auc(np.array([0.0, 1.0]), np.array([1.0]))


class TestPointMetrics:
    RANKED = ["a", "x", "b", "y"]
    RELEVANT = {"a", "b"}

    def test_average_precision(self):
        # Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        assert average_precision(self.RANKED, self.RELEVANT) == pytest.approx(
            (1.0 + 2 / 3) / 2
        )

    def test_average_precision_no_hits(self):
        assert average_precision(["x", "y"], {"a"}) == 0.0

    def test_precision_at(self):
        assert precision_at(self.RANKED, self.RELEVANT, 1) == 1.0
        assert precision_at(self.RANKED, self.RELEVANT, 2) == 0.5
        assert precision_at(self.RANKED, self.RELEVANT, 4) == 0.5

    def test_recall_at(self):
        assert recall_at(self.RANKED, self.RELEVANT, 1) == 0.5
        assert recall_at(self.RANKED, self.RELEVANT, 3) == 1.0

    def test_r_precision(self):
        assert r_precision(self.RANKED, self.RELEVANT) == 0.5

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at(self.RANKED, self.RELEVANT, 0)
        with pytest.raises(ValueError):
            recall_at(self.RANKED, self.RELEVANT, 0)
