"""Tests for repro.bench: table formatting and workload caching."""

import pytest

from repro.bench.report import format_table, format_value, print_table

# Aliased so the ``bench_*`` collection pattern does not pick the
# imported helpers up as benchmark functions.
from repro.bench.runner import bench_scale as scale_from_env
from repro.bench.runner import time_callable


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(0.123456) == "0.1235"
        assert format_value(3.0) == "3"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_large_numbers_comma_separated(self):
        assert format_value(1234567) == "1,234,567"
        assert format_value(12345.6) == "12,346"

    def test_strings_and_bools(self):
        assert format_value("abc") == "abc"
        assert format_value(True) == "True"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            "Title", ["col_a", "b"], [[1, "x"], [22, "yy"]]
        )
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        assert "col_a" in lines[2]
        # All data rows share the same width.
        assert len(lines[4]) == len(lines[5])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table("t", ["a", "b"], [[1]])

    def test_print_table_smoke(self, capsys):
        print_table("T", ["x"], [[1]])
        out = capsys.readouterr().out
        assert "T" in out and "1" in out


class TestRunner:
    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert scale_from_env() == 1.0

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert scale_from_env() == 2.5

    def test_bench_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "abc")
        with pytest.raises(ValueError):
            scale_from_env()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            scale_from_env()

    def test_time_callable_returns_positive_ms(self):
        assert time_callable(lambda: sum(range(1000)), repeats=2) >= 0.0
