"""Tests for repro.core.winnowing: Algorithm 1 and its guarantees."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import GeodabConfig
from repro.core.winnowing import Selection, TrajectoryWinnower, winnow, winnow_positions
from repro.geo.point import Point, destination

LONDON = Point(51.5074, -0.1278)


def walk_points(n, step_m=90.0, bearing=45.0, start=LONDON):
    out = [start]
    for _ in range(n - 1):
        out.append(destination(out[-1], bearing, step_m))
    return out


class TestWinnow:
    def test_empty(self):
        assert winnow([], 4) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            winnow([1, 2], 0)

    def test_shorter_than_window_selects_single_minimum(self):
        out = winnow([5, 1, 3], 7)
        assert out == [Selection(1, 1)]

    def test_shorter_than_window_rightmost_tie(self):
        out = winnow([2, 2], 7)
        assert out == [Selection(2, 1)]

    def test_basic_selection(self):
        # Windows of 3 over [9, 4, 7, 5, 3, 8]:
        # [9,4,7]->4@1, [4,7,5]->4@1, [7,5,3]->3@4, [5,3,8]->3@4.
        out = winnow([9, 4, 7, 5, 3, 8], 3)
        assert out == [Selection(4, 1), Selection(3, 4)]

    def test_rightmost_minimum_on_ties(self):
        # All equal: each window selects its rightmost element.
        out = winnow([7, 7, 7, 7], 2)
        assert [s.position for s in out] == [1, 2, 3]

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=10),
    )
    def test_every_window_is_covered(self, hashes, window):
        # Winnowing guarantee: each full window contains >= 1 selection.
        selections = winnow(hashes, window)
        positions = sorted(s.position for s in selections)
        if len(hashes) < window:
            assert len(selections) == 1
            return
        for start in range(len(hashes) - window + 1):
            assert any(start <= p < start + window for p in positions)

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=10),
    )
    def test_selections_are_window_minima(self, hashes, window):
        for s in winnow(hashes, window):
            assert hashes[s.position] == s.fingerprint
            if len(hashes) < window:
                assert s.fingerprint == min(hashes)
                continue
            # The selection must be the minimum of at least one window
            # that contains its position.
            starts = range(
                max(0, s.position - window + 1),
                min(s.position, len(hashes) - window) + 1,
            )
            assert any(
                s.fingerprint == min(hashes[w : w + window]) for w in starts
            )

    def test_positions_helper(self):
        assert winnow_positions([9, 4, 7, 5, 3, 8], 3) == [1, 4]


class TestTrajectoryWinnower:
    CONFIG = GeodabConfig(k=3, t=5)

    def test_kgram_count(self):
        w = TrajectoryWinnower(self.CONFIG)
        points = walk_points(12)
        cells = len(points)  # 90 m steps at 45 degrees: one cell per point
        grams = w.kgram_geodabs(points)
        # Number of k-grams = distinct cells - k + 1 (cells may merge).
        assert 1 <= len(grams) <= cells - self.CONFIG.k + 1

    def test_below_noise_threshold_no_fingerprints(self):
        w = TrajectoryWinnower(self.CONFIG)
        assert w.kgram_geodabs(walk_points(2)) == []
        assert w.select(walk_points(2)) == []
        assert w.fingerprints([]) == []

    def test_duplicate_cells_are_collapsed(self):
        w = TrajectoryWinnower(self.CONFIG)
        points = walk_points(10)
        doubled = [p for p in points for _ in range(3)]
        assert w.kgram_geodabs(points) == w.kgram_geodabs(doubled)

    def test_winnowing_guarantee_on_shared_subpath(self):
        # Two trajectories sharing a long sub-path (longer than t cells)
        # must share at least one fingerprint.
        w = TrajectoryWinnower(self.CONFIG)
        shared = walk_points(20, bearing=90.0)
        a = walk_points(4, bearing=0.0, start=shared[0])[::-1] + shared
        b = shared + walk_points(4, bearing=180.0, start=shared[-1])
        fp_a = set(w.fingerprints(a))
        fp_b = set(w.fingerprints(b))
        assert fp_a & fp_b

    def test_direction_discrimination(self):
        w = TrajectoryWinnower(self.CONFIG)
        points = walk_points(20)
        forward = set(w.fingerprints(points))
        backward = set(w.fingerprints(list(reversed(points))))
        assert forward and backward
        assert not (forward & backward)

    def test_selection_positions_increasing(self):
        w = TrajectoryWinnower(self.CONFIG)
        selections = w.select(walk_points(30))
        positions = [s.position for s in selections]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_fingerprint_density(self):
        w = TrajectoryWinnower(self.CONFIG)
        points = walk_points(30)
        density = w.fingerprint_density(points, 2_000.0)
        assert density > 0.0
        assert w.fingerprint_density(points, 0.0) == 0.0

    def test_accepts_config_or_scheme(self):
        from repro.core.geodab import GeodabScheme

        by_config = TrajectoryWinnower(self.CONFIG)
        by_scheme = TrajectoryWinnower(GeodabScheme(self.CONFIG))
        points = walk_points(15)
        assert by_config.fingerprints(points) == by_scheme.fingerprints(points)

    def test_default_construction(self):
        w = TrajectoryWinnower()
        assert w.config.k == 6
