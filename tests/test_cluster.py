"""Tests for repro.cluster: sharding, the sharded index, balance stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig, ShardRouter
from repro.cluster.stats import balance_report, distribute_cell_counts
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.geo.geohash import Geohash

CONFIG = GeodabConfig(k=3, t=5)


class TestShardingConfig:
    def test_defaults(self):
        cfg = ShardingConfig()
        assert cfg.num_shards >= cfg.num_nodes

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_shards": 0},
            {"num_nodes": 0},
            {"num_shards": 5, "num_nodes": 10},
            {"placement": "zorder"},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ShardingConfig(**kwargs)


class TestShardRouter:
    ROUTER = ShardRouter(ShardingConfig(num_shards=64, num_nodes=8), 16, 16)

    def test_prefix_extraction(self):
        term = (0xABCD << 16) | 0x1234
        assert self.ROUTER.prefix_of_term(term) == 0xABCD

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_every_term_routes(self, term):
        shard = self.ROUTER.shard_of_term(term)
        assert 0 <= shard < 64
        node = self.ROUTER.node_of_shard(shard)
        assert 0 <= node < 8

    @given(st.integers(min_value=0, max_value=2**16 - 2))
    def test_curve_locality(self, prefix):
        # Adjacent prefixes map to the same or adjacent shard.
        a = self.ROUTER.shard_of_prefix(prefix)
        b = self.ROUTER.shard_of_prefix(prefix + 1)
        assert 0 <= b - a <= 1

    def test_shard_of_prefix_monotone(self):
        shards = [self.ROUTER.shard_of_prefix(p) for p in range(0, 2**16, 127)]
        assert shards == sorted(shards)

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            self.ROUTER.shard_of_prefix(2**16)

    def test_shard_of_cell_alignment(self):
        deep = Geohash(0b1010_1010_1010_1010_1010, 20)
        shallow = deep.ancestor(16)
        assert self.ROUTER.shard_of_cell(deep) == self.ROUTER.shard_of_cell(shallow)

    def test_shard_of_shallow_cell(self):
        cell = Geohash(0b1, 1)  # eastern hemisphere
        shard = self.ROUTER.shard_of_cell(cell)
        assert shard == 32  # second half of the curve -> second half of shards

    def test_node_of_shard_modulo(self):
        assert self.ROUTER.node_of_shard(13) == 5

    def test_node_of_shard_out_of_range(self):
        with pytest.raises(ValueError):
            self.ROUTER.node_of_shard(64)

    def test_plan_groups_by_shard(self):
        terms = [(p << 16) | 7 for p in (0, 1, 2**15, 2**16 - 1)]
        plan = self.ROUTER.plan(terms)
        assert sum(len(v) for v in plan.values()) == len(terms)
        for shard, shard_terms in plan.items():
            for term in shard_terms:
                assert self.ROUTER.shard_of_term(term) == shard

    def test_shards_of_node_partition(self):
        seen = set()
        for node in range(8):
            shards = self.ROUTER.shards_of_node(node)
            assert all(self.ROUTER.node_of_shard(s) == node for s in shards)
            seen.update(shards)
        assert seen == set(range(64))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ShardRouter(ShardingConfig(), 0, 16)
        with pytest.raises(ValueError):
            ShardRouter(ShardingConfig(), 16, -1)


class TestShardedIndex:
    def _records(self, small_dataset):
        return [(r.trajectory_id, r.points) for r in small_dataset.records]

    def test_results_identical_to_single_node(self, small_dataset):
        from repro.normalize import standard_normalizer

        norm = standard_normalizer()
        single = GeodabIndex(CONFIG, normalizer=norm)
        sharded = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=32, num_nodes=4), normalizer=norm
        )
        for trajectory_id, points in self._records(small_dataset):
            single.add(trajectory_id, points)
            sharded.add(trajectory_id, points)
        for query in small_dataset.queries:
            expected = single.query(query.points)
            actual = sharded.query(query.points)
            assert [r.trajectory_id for r in actual] == [
                r.trajectory_id for r in expected
            ]
            for a, b in zip(actual, expected):
                assert a.distance == pytest.approx(b.distance)

    def test_fanout_is_bounded_by_query_locality(self, small_dataset):
        sharded = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=128, num_nodes=8)
        )
        sharded.add_many(self._records(small_dataset))
        query = small_dataset.queries[0]
        _, stats = sharded.query_with_stats(query.points)
        # A city-scale query touches a handful of curve-adjacent shards,
        # not the whole cluster (the point of Figure 2c).
        assert 1 <= stats.shards_contacted <= 8
        assert stats.nodes_contacted <= stats.shards_contacted

    def test_duplicate_add_rejected(self, small_dataset):
        sharded = ShardedGeodabIndex(CONFIG)
        record = small_dataset.records[0]
        sharded.add(record.trajectory_id, record.points)
        with pytest.raises(KeyError):
            sharded.add(record.trajectory_id, record.points)

    def test_load_accounting(self, small_dataset):
        sharding = ShardingConfig(num_shards=32, num_nodes=4)
        sharded = ShardedGeodabIndex(CONFIG, sharding)
        sharded.add_many(self._records(small_dataset))
        assert len(sharded) == len(small_dataset)
        shard_counts = sharded.shard_postings_counts()
        node_counts = sharded.node_postings_counts()
        assert len(shard_counts) == 32
        assert len(node_counts) == 4
        assert sum(shard_counts) == sum(node_counts)
        trajectory_counts = sharded.node_trajectory_counts()
        assert all(c <= len(small_dataset) for c in trajectory_counts)

    def test_empty_index_query(self):
        sharded = ShardedGeodabIndex(CONFIG)
        from repro.geo.point import Point

        assert sharded.query([Point(51.5, -0.1), Point(51.51, -0.1)]) == []

    def test_remove(self, small_dataset):
        sharded = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=16, num_nodes=2)
        )
        sharded.add_many(self._records(small_dataset))
        query = small_dataset.queries[0]
        victim = sharded.query(query.points)[0].trajectory_id
        sharded.remove(victim)
        assert victim not in sharded
        assert len(sharded) == len(small_dataset) - 1
        assert all(
            r.trajectory_id != victim for r in sharded.query(query.points)
        )
        with pytest.raises(KeyError):
            sharded.remove(victim)

    def test_tombstone_distinct_from_live_none_id(self, small_dataset):
        # remove() tombstones with a private sentinel, so a trajectory
        # legitimately indexed under id None still comes back.
        sharded = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=16, num_nodes=2)
        )
        record = small_dataset.records[0]
        sharded.add(None, record.points)
        results = sharded.query(record.points, limit=1)
        assert results and results[0].trajectory_id is None
        sharded.remove(None)
        assert sharded.query(record.points, limit=1) == []

    def test_remove_purges_postings(self, small_dataset):
        sharded = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=16, num_nodes=2)
        )
        sharded.add_many(self._records(small_dataset))
        for trajectory_id, _ in self._records(small_dataset):
            sharded.remove(trajectory_id)
        assert len(sharded) == 0
        assert sum(sharded.shard_postings_counts()) == 0

    def test_remove_recycles_slots(self, small_dataset):
        sharded = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=16, num_nodes=2)
        )
        records = self._records(small_dataset)
        sharded.add_many(records)
        baseline = len(sharded._ids)
        for trajectory_id, points in records[:5]:
            sharded.remove(trajectory_id)
            sharded.add(trajectory_id, points)
        assert len(sharded._ids) == baseline
        query = small_dataset.queries[0]
        single = GeodabIndex(CONFIG)
        single.add_many(records)
        assert sharded.query(query.points) == single.query(query.points)


class TestHashPlacement:
    def _build(self, small_dataset, placement):
        sharded = ShardedGeodabIndex(
            CONFIG,
            ShardingConfig(num_shards=8, num_nodes=2, placement=placement),
        )
        sharded.add_many(
            (r.trajectory_id, r.points) for r in small_dataset.records
        )
        return sharded

    def test_results_identical_to_range_placement(self, small_dataset):
        ranged = self._build(small_dataset, "range")
        hashed = self._build(small_dataset, "hash")
        for query in small_dataset.queries:
            assert hashed.query(query.points) == ranged.query(query.points)

    def test_hash_spreads_a_single_city_over_all_shards(self, small_dataset):
        ranged = self._build(small_dataset, "range")
        hashed = self._build(small_dataset, "hash")
        # A city occupies one sliver of the z-order curve: range
        # placement piles everything onto few shards of a small cluster,
        # hash placement populates all of them.
        assert sum(1 for c in hashed.shard_postings_counts() if c > 0) == 8
        assert sum(1 for c in ranged.shard_postings_counts() if c > 0) <= 2
        assert sum(hashed.shard_postings_counts()) == sum(
            ranged.shard_postings_counts()
        )

    def test_hash_fanout_is_wide(self, small_dataset):
        hashed = self._build(small_dataset, "hash")
        _, stats = hashed.query_with_stats(small_dataset.queries[0].points)
        assert stats.shards_contacted >= 4

    def test_cell_placement_undefined_under_hash(self):
        router = ShardRouter(
            ShardingConfig(num_shards=8, num_nodes=2, placement="hash"), 16, 16
        )
        assert 0 <= router.shard_of_term(12345) < 8
        # One cell's terms deliberately span shards, so asking for "the"
        # shard of a prefix/cell must refuse rather than mislead.
        with pytest.raises(ValueError):
            router.shard_of_prefix(3)


class TestBalanceStats:
    def test_balance_report_uniform(self):
        report = balance_report([100, 100, 100, 100])
        assert report.coefficient_of_variation == 0.0
        assert report.max_over_mean == 1.0
        assert report.total == 400

    def test_balance_report_skewed(self):
        report = balance_report([400, 0, 0, 0])
        assert report.coefficient_of_variation > 1.0
        assert report.max_over_mean == 4.0

    def test_balance_report_empty_raises(self):
        with pytest.raises(ValueError):
            balance_report([])

    def test_balance_report_zeros(self):
        report = balance_report([0, 0])
        assert report.coefficient_of_variation == 0.0
        assert report.max_over_mean == 0.0

    def test_distribute_cell_counts_conserves_total(self):
        counts = {0: 100, 1: 50, 2**15: 25, 2**16 - 1: 10}
        per_shard, per_node = distribute_cell_counts(
            counts, 16, ShardingConfig(num_shards=100, num_nodes=10)
        )
        assert sum(per_shard) == 185
        assert sum(per_node) == 185

    def test_distribute_rejects_negative(self):
        with pytest.raises(ValueError):
            distribute_cell_counts(
                {0: -1}, 16, ShardingConfig(num_shards=10, num_nodes=2)
            )

    def test_more_shards_balance_better(self):
        # A clustered distribution: hot cells adjacent on the curve.
        counts = {cell: 1_000 for cell in range(500, 560)}
        counts.update({cell: 10 for cell in range(40_000, 40_200)})
        few = distribute_cell_counts(
            counts, 16, ShardingConfig(num_shards=10, num_nodes=10)
        )[1]
        many = distribute_cell_counts(
            counts, 16, ShardingConfig(num_shards=10_000, num_nodes=10)
        )[1]
        assert (
            balance_report(many).coefficient_of_variation
            < balance_report(few).coefficient_of_variation
        )


class TestCandidateAccounting:
    """Candidate work numbers must agree across backends, even after
    removals (dead slots never count — the Figure-14 quantities)."""

    def test_candidates_equal_single_vs_sharded_after_removals(
        self, small_dataset
    ):
        from repro.normalize import standard_normalizer

        norm = standard_normalizer()
        single = GeodabIndex(CONFIG, normalizer=norm)
        sharded = ShardedGeodabIndex(
            CONFIG,
            ShardingConfig(num_shards=32, num_nodes=4),
            normalizer=norm,
        )
        records = [(r.trajectory_id, r.points) for r in small_dataset.records]
        single.add_many(records)
        sharded.add_many(records)
        victims = [trajectory_id for trajectory_id, _ in records[:4]]
        for victim in victims:
            single.remove(victim)
            sharded.remove(victim)
        for query in small_dataset.queries:
            _, single_stats = single.query_with_stats(query.points)
            _, sharded_stats = sharded.query_with_stats(query.points)
            assert single_stats.candidates == sharded_stats.candidates
            # And the prepared path agrees with itself across backends.
            _, single_fanout = single.query_prepared(
                single.prepare_query(query.points)
            )
            assert single_fanout.candidates == sharded_stats.candidates
