"""Tests for repro.roadnet: graphs, routing, generation, world model."""

from random import Random

import pytest

from repro.geo.point import Point, haversine, path_length
from repro.roadnet.generator import LONDON_CENTER, generate_city_network
from repro.roadnet.graph import NodeLocator, RoadClass, RoadNetwork
from repro.roadnet.router import bounded_dijkstra, random_routes, shortest_path
from repro.roadnet.world import WorldActivityModel


def tiny_network():
    """A 2x3 grid with known shortest paths.

    a--b--c
    |  |  |
    d--e--f
    """
    net = RoadNetwork()
    coords = {
        "a": Point(51.500, -0.100),
        "b": Point(51.500, -0.098),
        "c": Point(51.500, -0.096),
        "d": Point(51.498, -0.100),
        "e": Point(51.498, -0.098),
        "f": Point(51.498, -0.096),
    }
    for node, point in coords.items():
        net.add_node(node, point)
    for u, v in [("a", "b"), ("b", "c"), ("d", "e"), ("e", "f"), ("a", "d"), ("b", "e"), ("c", "f")]:
        net.add_edge(u, v)
    return net


class TestRoadNetwork:
    def test_counts(self):
        net = tiny_network()
        assert net.num_nodes == 6
        assert net.num_edges == 14  # 7 bidirectional streets

    def test_edge_requires_nodes(self):
        net = RoadNetwork()
        net.add_node("a", Point(0, 0))
        with pytest.raises(KeyError):
            net.add_edge("a", "missing")

    def test_self_loop_rejected(self):
        net = tiny_network()
        with pytest.raises(ValueError):
            net.add_edge("a", "a")

    def test_edge_length_is_ground_distance(self):
        net = tiny_network()
        edge = next(e for e in net.edges_from("a") if e.target == "b")
        assert edge.length_m == pytest.approx(
            haversine(net.point_of("a"), net.point_of("b"))
        )

    def test_travel_time(self):
        net = tiny_network()
        edge = net.edges_from("a")[0]
        assert edge.travel_time_s == pytest.approx(edge.length_m / edge.speed_mps)

    def test_default_speed_by_class(self):
        net = RoadNetwork()
        net.add_node("x", Point(0, 0))
        net.add_node("y", Point(0, 0.01))
        net.add_edge("x", "y", road_class=RoadClass.MOTORWAY)
        assert net.edges_from("x")[0].speed_mps == pytest.approx(27.8)

    def test_invalid_speed(self):
        net = tiny_network()
        with pytest.raises(ValueError):
            net.add_edge("a", "f", speed_mps=0.0)

    def test_connected_components(self):
        net = tiny_network()
        net.add_node("island", Point(51.6, -0.2))
        components = net.connected_components()
        assert len(components) == 2
        assert len(components[0]) == 6

    def test_largest_component(self):
        net = tiny_network()
        net.add_node("island", Point(51.6, -0.2))
        largest = net.largest_component()
        assert largest.num_nodes == 6
        assert "island" not in largest

    def test_bbox_contains_all_nodes(self):
        net = tiny_network()
        box = net.bbox()
        for node in net.nodes():
            assert box.contains(net.point_of(node))


class TestRouting:
    def test_shortest_path_straight_line(self):
        net = tiny_network()
        route = shortest_path(net, "a", "c")
        assert route is not None
        assert route.nodes == ("a", "b", "c")
        assert route.length_m == pytest.approx(
            path_length([net.point_of(n) for n in route.nodes])
        )

    def test_route_duration_positive(self):
        net = tiny_network()
        route = shortest_path(net, "a", "f")
        assert route is not None
        assert route.duration_s > 0
        assert route.mean_speed_mps > 0

    def test_unreachable_returns_none(self):
        net = tiny_network()
        net.add_node("island", Point(51.6, -0.2))
        assert shortest_path(net, "a", "island") is None

    def test_unknown_node_raises(self):
        net = tiny_network()
        with pytest.raises(KeyError):
            shortest_path(net, "a", "nope")

    def test_weight_time_prefers_fast_roads(self):
        # Build a triangle where the longer way is much faster.
        net = RoadNetwork()
        net.add_node("s", Point(51.5, -0.10))
        net.add_node("m", Point(51.52, -0.08))
        net.add_node("t", Point(51.5, -0.06))
        net.add_edge("s", "t", road_class=RoadClass.RESIDENTIAL)
        net.add_edge("s", "m", road_class=RoadClass.MOTORWAY)
        net.add_edge("m", "t", road_class=RoadClass.MOTORWAY)
        by_time = shortest_path(net, "s", "t", weight="time")
        by_length = shortest_path(net, "s", "t", weight="length")
        assert by_time is not None and by_length is not None
        assert by_time.nodes == ("s", "m", "t")
        assert by_length.nodes == ("s", "t")

    def test_invalid_weight(self):
        net = tiny_network()
        with pytest.raises(ValueError):
            shortest_path(net, "a", "b", weight="bananas")

    def test_reversed_route(self):
        net = tiny_network()
        route = shortest_path(net, "a", "c")
        assert route is not None
        rev = route.reversed()
        assert rev.nodes == ("c", "b", "a")
        assert rev.length_m == route.length_m
        assert rev.duration_s == route.duration_s

    def test_bounded_dijkstra_radius(self):
        net = tiny_network()
        reach = bounded_dijkstra(net, "a", max_cost=200.0, weight="length")
        assert reach["a"] == 0.0
        assert all(d <= 200.0 for d in reach.values())
        full = bounded_dijkstra(net, "a", max_cost=10_000.0, weight="length")
        assert set(full) == {"a", "b", "c", "d", "e", "f"}

    def test_bounded_dijkstra_costs_match_shortest_path(self):
        net = tiny_network()
        reach = bounded_dijkstra(net, "a", max_cost=10_000.0, weight="length")
        for target in ("b", "c", "f"):
            route = shortest_path(net, "a", target, weight="length")
            assert route is not None
            assert reach[target] == pytest.approx(route.length_m)

    def test_random_routes(self, small_network):
        routes = random_routes(small_network, 5, Random(3), min_length_m=1_000.0)
        assert len(routes) == 5
        assert all(r.length_m >= 1_000.0 for r in routes)

    def test_random_routes_impossible_minimum(self, small_network):
        with pytest.raises(RuntimeError):
            random_routes(
                small_network, 3, Random(3), min_length_m=10**7,
                max_attempts_per_route=3,
            )

    def test_random_routes_empty_request(self, small_network):
        assert random_routes(small_network, 0, Random(1)) == []


class TestGenerator:
    def test_network_is_connected(self):
        net = generate_city_network(half_side_m=1_500.0, spacing_m=300.0, seed=3)
        assert len(net.connected_components()) == 1

    def test_network_covers_requested_area(self):
        net = generate_city_network(half_side_m=2_000.0, spacing_m=250.0, seed=3)
        box = net.bbox()
        assert box.width_m == pytest.approx(4_000.0, rel=0.15)
        assert box.height_m == pytest.approx(4_000.0, rel=0.15)

    def test_deterministic(self):
        a = generate_city_network(half_side_m=1_000.0, seed=9)
        b = generate_city_network(half_side_m=1_000.0, seed=9)
        assert a.num_nodes == b.num_nodes
        assert a.num_edges == b.num_edges

    def test_seed_changes_layout(self):
        a = generate_city_network(half_side_m=1_000.0, seed=1)
        b = generate_city_network(half_side_m=1_000.0, seed=2)
        pa = [a.point_of(n) for n in list(a.nodes())[:5]]
        pb = [b.point_of(n) for n in list(b.nodes())[:5]]
        assert pa != pb

    def test_primary_roads_exist(self):
        net = generate_city_network(half_side_m=1_500.0, seed=3)
        classes = {e.road_class for e in net.edges()}
        assert RoadClass.PRIMARY in classes
        assert RoadClass.RESIDENTIAL in classes

    def test_centered_on_london(self):
        net = generate_city_network(half_side_m=1_000.0, seed=0)
        center = net.bbox().center
        assert haversine(center, LONDON_CENTER) < 1_500.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_city_network(half_side_m=0.0)
        with pytest.raises(ValueError):
            generate_city_network(removal_probability=0.9)


class TestNodeLocator:
    def test_nearby_radius(self, small_network):
        locator = NodeLocator(small_network)
        some_node = next(iter(small_network.nodes()))
        probe = small_network.point_of(some_node)
        hits = locator.nearby(probe, 300.0)
        assert hits
        assert hits[0][0] == some_node
        assert all(d <= 300.0 for _, d in hits)
        # Sorted by distance.
        distances = [d for _, d in hits]
        assert distances == sorted(distances)

    def test_nearby_matches_brute_force(self, small_network):
        locator = NodeLocator(small_network)
        probe = Point(51.505, -0.125)
        radius = 400.0
        expected = sorted(
            node
            for node in small_network.nodes()
            if haversine(probe, small_network.point_of(node)) <= radius
        )
        hits = sorted(node for node, _ in locator.nearby(probe, radius))
        assert hits == expected

    def test_nearest_expands_radius(self, small_network):
        locator = NodeLocator(small_network)
        probe = Point(51.53, -0.10)  # outside the small network
        assert locator.nearest(probe, search_radius_m=50.0) is not None

    def test_invalid_arguments(self, small_network):
        locator = NodeLocator(small_network)
        with pytest.raises(ValueError):
            locator.nearby(Point(0, 0), -1.0)
        with pytest.raises(ValueError):
            NodeLocator(small_network, depth=3)


class TestWorldModel:
    def test_deterministic(self):
        a = WorldActivityModel(num_cities=50, seed=4).trajectories_per_cell(10_000)
        b = WorldActivityModel(num_cities=50, seed=4).trajectories_per_cell(10_000)
        assert a == b

    def test_total_roughly_preserved(self):
        model = WorldActivityModel(num_cities=100, seed=4)
        counts = model.trajectories_per_cell(100_000)
        assert sum(counts.values()) == pytest.approx(100_000, rel=0.05)

    def test_cells_within_domain(self):
        model = WorldActivityModel(num_cities=30, seed=5)
        counts = model.trajectories_per_cell(10_000)
        assert all(0 <= cell < 2**16 for cell in counts)

    def test_distribution_is_skewed(self):
        model = WorldActivityModel(seed=6)
        counts = model.trajectories_per_cell(500_000)
        stats = model.skew_statistics(counts)
        # Figure 15 territory: sharp peaks over a long tail.
        assert stats["gini"] > 0.5
        assert stats["max"] > 20 * stats["mean"]

    def test_voids_exist(self):
        model = WorldActivityModel(seed=6)
        counts = model.trajectories_per_cell(500_000)
        # Oceans: most of the 2^16 cells are empty.
        assert len(counts) < 2**15

    def test_sample_locations(self):
        model = WorldActivityModel(num_cities=20, seed=8)
        locations = model.sample_locations(50)
        assert len(locations) == 50

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            WorldActivityModel(num_cities=0)
        with pytest.raises(ValueError):
            WorldActivityModel(num_cities=5).trajectories_per_cell(0)

    def test_skew_statistics_empty(self):
        model = WorldActivityModel(num_cities=5)
        stats = model.skew_statistics({})
        assert stats["cells"] == 0
