"""Tests for repro.service.http: JSON round-trips of every endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.service import IndexService, start_server

CONFIG = GeodabConfig(k=3, t=5)


def call(base, method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def call_full(base, method, path, payload=None):
    """Like :func:`call` but also returns the response headers."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def as_wire(points):
    return [[p.lat, p.lon] for p in points]


@pytest.fixture()
def server(small_dataset):
    service = IndexService(GeodabIndex(CONFIG))
    server = start_server(service)
    yield server
    server.shutdown()
    service.close()


@pytest.fixture()
def loaded_server(server, small_dataset):
    body = {
        "trajectories": [
            {"id": r.trajectory_id, "points": as_wire(r.points)}
            for r in small_dataset.records
        ]
    }
    status, _ = call(server.url, "POST", "/trajectories", body)
    assert status == 200
    return server


class TestHealthz:
    def test_empty_service(self, server):
        status, payload = call(server.url, "GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "generation": 0, "trajectories": 0}

    def test_after_ingest(self, loaded_server, small_dataset):
        _, payload = call(loaded_server.url, "GET", "/healthz")
        assert payload["generation"] == 1
        assert payload["trajectories"] == len(small_dataset.records)


class TestIngest:
    def test_bulk_ingest(self, server, small_dataset):
        body = {
            "trajectories": [
                {"id": r.trajectory_id, "points": as_wire(r.points)}
                for r in small_dataset.records[:3]
            ]
        }
        status, payload = call(server.url, "POST", "/trajectories", body)
        assert status == 200
        assert payload == {"ingested": 3, "generation": 1}

    def test_single_object_form(self, server, small_dataset):
        record = small_dataset.records[0]
        status, payload = call(
            server.url, "POST", "/trajectories",
            {"id": record.trajectory_id, "points": as_wire(record.points)},
        )
        assert status == 200
        assert payload["ingested"] == 1

    def test_duplicate_is_conflict(self, loaded_server, small_dataset):
        record = small_dataset.records[0]
        status, payload = call(
            loaded_server.url, "POST", "/trajectories",
            {"id": record.trajectory_id, "points": as_wire(record.points)},
        )
        assert status == 409
        assert "error" in payload

    @pytest.mark.parametrize(
        "body",
        [
            {"id": "x"},
            {"points": [[51.5, -0.1]]},
            {"id": "", "points": [[51.5, -0.1]]},
            {"id": "x", "points": []},
            {"id": "x", "points": [[999.0, 0.0]]},
            {"id": "x", "points": [["a", "b"]]},
            {"trajectories": "nope"},
        ],
    )
    def test_malformed_is_bad_request(self, server, body):
        status, payload = call(server.url, "POST", "/trajectories", body)
        assert status == 400
        assert "error" in payload


class TestQuery:
    def test_results_identical_to_direct_index_query(
        self, loaded_server, small_dataset
    ):
        reference = GeodabIndex(CONFIG)
        reference.add_many(
            (r.trajectory_id, r.points) for r in small_dataset.records
        )
        for query in small_dataset.queries:
            status, payload = call(
                loaded_server.url, "POST", "/query",
                {"points": as_wire(query.points), "limit": 10},
            )
            assert status == 200
            direct = reference.query(query.points, limit=10)
            assert [
                (r["id"], r["distance"], r["shared_terms"])
                for r in payload["results"]
            ] == [
                (r.trajectory_id, r.distance, r.shared_terms) for r in direct
            ]

    def test_repeat_is_cache_hit_with_same_results(
        self, loaded_server, small_dataset
    ):
        payload = {"points": as_wire(small_dataset.queries[0].points), "limit": 5}
        _, first = call(loaded_server.url, "POST", "/query", payload)
        _, second = call(loaded_server.url, "POST", "/query", payload)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["results"] == first["results"]

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"points": []},
            {"points": [[51.5, -0.1]], "limit": 0},
            {"points": [[51.5, -0.1]], "limit": "ten"},
            {"points": [[51.5, -0.1]], "max_distance": 2.0},
            # JSON booleans are int subclasses in Python; they must not
            # silently coerce to numbers.
            {"points": [[51.5, -0.1]], "limit": True},
            {"points": [[51.5, -0.1]], "max_distance": False},
            {"points": [[True, False]]},
        ],
    )
    def test_malformed_is_bad_request(self, loaded_server, body):
        status, payload = call(loaded_server.url, "POST", "/query", body)
        assert status == 400
        assert "error" in payload


class TestDelete:
    def test_delete_removes_from_results(self, loaded_server, small_dataset):
        query = small_dataset.queries[0]
        _, before = call(
            loaded_server.url, "POST", "/query",
            {"points": as_wire(query.points), "limit": 5},
        )
        victim = before["results"][0]["id"]
        status, payload = call(
            loaded_server.url, "DELETE", f"/trajectories/{victim}"
        )
        assert status == 200
        assert payload["deleted"] == victim
        assert payload["generation"] == 2
        _, after = call(
            loaded_server.url, "POST", "/query",
            {"points": as_wire(query.points), "limit": 5},
        )
        assert after["cached"] is False  # the write invalidated the cache
        assert all(r["id"] != victim for r in after["results"])

    def test_unknown_is_404(self, loaded_server):
        status, _ = call(loaded_server.url, "DELETE", "/trajectories/nope")
        assert status == 404

    def test_bare_collection_is_404(self, loaded_server):
        status, _ = call(loaded_server.url, "DELETE", "/trajectories/")
        assert status == 404


class TestStats:
    def test_stats_shape(self, loaded_server, small_dataset):
        call(
            loaded_server.url, "POST", "/query",
            {"points": as_wire(small_dataset.queries[0].points)},
        )
        status, payload = call(loaded_server.url, "GET", "/stats")
        assert status == 200
        assert payload["generation"] == 1
        assert payload["index"]["kind"] == "single"
        assert payload["index"]["trajectories"] == len(small_dataset.records)
        metrics = payload["metrics"]
        assert metrics["queries"] >= 1
        assert metrics["latency_p50_ms"] >= 0.0
        assert 0.0 <= metrics["cache_hit_rate"] <= 1.0
        assert payload["result_cache"]["capacity"] > 0

    def test_unknown_path_is_404(self, server):
        assert call(server.url, "GET", "/nope")[0] == 404
        assert call(server.url, "POST", "/nope")[0] == 404


class TestBodyLimits:
    def test_oversized_declared_body_is_413(self, server):
        import http.client

        from repro.service.http import MAX_BODY_BYTES

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/query")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            # Response arrives without the body ever being sent.
            response = connection.getresponse()
            assert response.status == 413
            assert "error" in json.loads(response.read())
        finally:
            connection.close()

    def test_chunked_transfer_is_rejected(self, server):
        import socket

        host, port = server.server_address[:2]
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.sendall(
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"4\r\n{\"x\"\r\n0\r\n\r\n"
            )
            # The server closes the connection (it cannot drain chunked
            # frames), so read until EOF to get the full response.
            chunks = []
            while True:
                data = sock.recv(4096)
                if not data:
                    break
                chunks.append(data)
            response = b"".join(chunks).decode()
        finally:
            sock.close()
        assert response.startswith("HTTP/1.1 400")
        assert "chunked" in response


class TestMalformedContentLength:
    def test_bad_header_gets_json_400_not_dropped_socket(self, server):
        import socket

        host, port = server.server_address[:2]
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.sendall(
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: banana\r\n\r\n"
            )
            response = sock.recv(4096).decode()
        finally:
            sock.close()
        assert response.startswith("HTTP/1.1 400")
        assert "Content-Length" in response


class TestKeepAlive:
    def test_rejected_post_body_is_drained(self, server):
        # Regression: a 404 on an unrouted POST must still consume the
        # request body, or its bytes desync the next request on the
        # same persistent connection.
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST", "/nope", body=json.dumps({"x": 1}),
                headers={"Content-Type": "application/json"},
            )
            assert connection.getresponse().read() and True
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()


class TestAdminSnapshot:
    @pytest.fixture()
    def snapshot_server(self, tmp_path, small_dataset):
        service = IndexService(GeodabIndex(CONFIG))
        server = start_server(service, snapshot_dir=str(tmp_path / "snaps"))
        body = {
            "trajectories": [
                {"id": r.trajectory_id, "points": as_wire(r.points)}
                for r in small_dataset.records[:4]
            ]
        }
        status, _ = call(server.url, "POST", "/trajectories", body)
        assert status == 200
        yield server, tmp_path / "snaps"
        server.shutdown()
        service.close()

    def test_snapshot_with_empty_body(self, snapshot_server):
        server, snaps = snapshot_server
        status, payload = call(server.url, "POST", "/admin/snapshot")
        assert status == 200
        assert payload["generation"] == 1
        assert payload["trajectories"] == 4
        from repro.core.persistence import load_index, resolve_snapshot

        target = resolve_snapshot(snaps)
        assert target is not None
        assert len(load_index(target, mmap_mode="r")) == 4

    def test_snapshot_metadata_lands_in_stats(self, snapshot_server):
        server, _ = snapshot_server
        _, info = call(server.url, "POST", "/admin/snapshot")
        _, stats = call(server.url, "GET", "/stats")
        assert stats["snapshot"]["path"] == info["path"]
        assert stats["snapshot"]["generation"] == 1
        assert "compaction" in stats

    def test_dir_override_in_body_rejected(self, snapshot_server, tmp_path):
        # The target directory is operator-configured only: a client
        # choosing the path would be an arbitrary filesystem write.
        server, _ = snapshot_server
        override = tmp_path / "elsewhere"
        status, payload = call(
            server.url, "POST", "/admin/snapshot", {"dir": str(override)}
        )
        assert status == 400
        assert not override.exists()

    def test_empty_object_body_accepted(self, snapshot_server):
        server, _ = snapshot_server
        status, payload = call(server.url, "POST", "/admin/snapshot", {})
        assert status == 200
        assert payload["trajectories"] == 4

    def test_unconfigured_and_unsupplied_dir_is_400(self, small_dataset):
        service = IndexService(GeodabIndex(CONFIG))
        server = start_server(service)  # no snapshot_dir
        try:
            status, payload = call(server.url, "POST", "/admin/snapshot")
            assert status == 400
            assert "snapshot directory" in payload["error"]["message"]
        finally:
            server.shutdown()
            service.close()



class TestSnapshotKeep:
    def test_snapshot_keep_garbage_collects(self, tmp_path, small_dataset):
        service = IndexService(GeodabIndex(CONFIG))
        server = start_server(
            service, snapshot_dir=str(tmp_path / "snaps"), snapshot_keep=1
        )
        try:
            body = {
                "trajectories": [
                    {"id": r.trajectory_id, "points": as_wire(r.points)}
                    for r in small_dataset.records[:3]
                ]
            }
            assert call(server.url, "POST", "/trajectories", body)[0] == 200
            payloads = [
                call(server.url, "POST", "/admin/snapshot")[1]
                for _ in range(3)
            ]
            assert sum(p["pruned_snapshots"] for p in payloads) == 2
            assert len(list((tmp_path / "snaps").glob("snapshot-*"))) == 1
            from repro.core.persistence import load_index, resolve_snapshot

            current = resolve_snapshot(tmp_path / "snaps")
            assert current is not None
            assert len(load_index(current)) == 3
        finally:
            server.shutdown()
            service.close()


class TestPrunedSurfaced:
    def test_query_response_and_stats_carry_pruned(
        self, loaded_server, small_dataset
    ):
        points = as_wire(small_dataset.queries[0].points)
        status, payload = call(
            loaded_server.url, "POST", "/query",
            {"points": points, "max_distance": 0.4},
        )
        assert status == 200
        assert "pruned" in payload
        assert payload["pruned"] >= 0
        _, stats = call(loaded_server.url, "GET", "/stats")
        assert stats["metrics"]["pruned_candidates"] >= payload["pruned"]
        assert "maintenance" in stats


class TestReadyz:
    def test_ready_by_default(self, server):
        status, payload = call(server.url, "GET", "/readyz")
        assert status == 200
        assert payload["status"] == "ready"

    def test_503_until_marked_ready(self, small_dataset):
        service = IndexService(GeodabIndex(CONFIG))
        server = start_server(service, ready=False)
        try:
            status, payload = call(server.url, "GET", "/readyz")
            assert status == 503
            assert payload["status"] == "starting"
            assert payload["error"]["code"] == "not_ready"
            # Liveness is independent of readiness.
            assert call(server.url, "GET", "/healthz")[0] == 200
            server.mark_ready()
            status, payload = call(server.url, "GET", "/readyz")
            assert status == 200
            assert payload["status"] == "ready"
        finally:
            server.shutdown()
            service.close()


def fetch_text(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode(),
        )


class TestMetricsEndpoint:
    def test_prometheus_exposition(self, loaded_server, small_dataset):
        import time

        call(
            loaded_server.url, "POST", "/query",
            {"points": as_wire(small_dataset.queries[0].points)},
        )
        # The endpoint histogram is recorded *after* the /query response
        # is flushed; scrape until the sample shows up.
        deadline = time.time() + 5.0
        while True:
            status, content_type, text = fetch_text(
                loaded_server.url, "/metrics"
            )
            if 'endpoint="POST /query"' in text or time.time() > deadline:
                break
            time.sleep(0.01)
        assert status == 200
        assert content_type.startswith("text/plain")
        lines = text.splitlines()
        assert "# TYPE geodabs_queries_total counter" in lines
        assert "# TYPE geodabs_request_latency_seconds histogram" in lines
        assert any(
            line.startswith("geodabs_request_latency_seconds_bucket{le=")
            for line in lines
        )
        # Per-stage histograms carry the query pipeline split.
        for stage in ("prepare", "fanout", "merge", "rank"):
            assert any(
                line.startswith(
                    f'geodabs_stage_latency_seconds_bucket{{stage="{stage}"'
                )
                for line in lines
            ), f"missing stage histogram for {stage}"
        # The /query request itself lands in a per-endpoint histogram.
        assert any(
            'endpoint="POST /query"' in line for line in lines
        )
        assert any(
            line.startswith("geodabs_trajectories ") for line in lines
        )

    def test_scrapes_are_counted_too(self, server):
        fetch_text(server.url, "/metrics")
        _, _, text = fetch_text(server.url, "/metrics")
        assert 'endpoint="GET /metrics"' in text


class TestTraceParam:
    def test_trace_1_returns_span_tree(self, loaded_server, small_dataset):
        status, payload = call(
            loaded_server.url, "POST", "/query?trace=1",
            {"points": as_wire(small_dataset.queries[0].points)},
        )
        assert status == 200
        tree = payload["trace"]
        assert tree["trace_id"]
        names = [span["name"] for span in tree["spans"]]
        assert "prepare" in names
        assert "fanout" in names
        # Stage durations approximately account for the request latency.
        assert 0 < sum(tree["stages_ms"].values()) <= payload["latency_ms"]

    def test_untraced_response_has_no_trace_key(
        self, loaded_server, small_dataset
    ):
        _, payload = call(
            loaded_server.url, "POST", "/query",
            {"points": as_wire(small_dataset.queries[0].points)},
        )
        assert "trace" not in payload

    def test_batch_trace_is_top_level(self, loaded_server, small_dataset):
        status, payload = call(
            loaded_server.url, "POST", "/query/batch?trace=true",
            {"queries": [as_wire(q.points) for q in small_dataset.queries[:2]]},
        )
        assert status == 200
        assert payload["count"] == 2
        assert payload["trace"]["trace_id"]
        assert all("trace" not in entry for entry in payload["results"])


class TestSlowlogEndpoint:
    def test_disabled_shape(self, server):
        status, payload = call(server.url, "GET", "/admin/slowlog")
        assert status == 200
        assert payload == {"enabled": False, "entries": []}

    def test_enabled_records_slow_queries(self, small_dataset):
        service = IndexService(GeodabIndex(CONFIG), slow_query_ms=0.0)
        server = start_server(service)
        try:
            body = {
                "trajectories": [
                    {"id": r.trajectory_id, "points": as_wire(r.points)}
                    for r in small_dataset.records[:3]
                ]
            }
            assert call(server.url, "POST", "/trajectories", body)[0] == 200
            call(
                server.url, "POST", "/query",
                {"points": as_wire(small_dataset.queries[0].points)},
            )
            status, payload = call(server.url, "GET", "/admin/slowlog")
            assert status == 200
            assert payload["enabled"] is True
            assert payload["threshold_ms"] == 0.0
            assert payload["recorded"] >= 1
            entry = payload["entries"][-1]
            assert entry["kind"] == "query"
            assert entry["latency_ms"] >= 0.0
        finally:
            server.shutdown()
            service.close()


def _access_lines(caplog, path):
    """Access-log lines for ``path``, waiting out the server thread.

    The line is emitted after the response bytes are flushed, so the
    client can observe the response before the server thread logs —
    poll until the line for the request under test shows up instead of
    racing it (earlier requests' lines may already sit in ``caplog``).
    """
    import time

    deadline = time.time() + 5.0
    while time.time() < deadline:
        lines = [
            json.loads(record.getMessage())
            for record in caplog.records
            if record.name == "repro.service.access"
        ]
        matching = [line for line in lines if line["path"] == path]
        if matching:
            return matching
        time.sleep(0.01)
    return []


class TestAccessLog:
    def test_structured_lines_when_enabled(self, small_dataset, caplog):
        import logging

        service = IndexService(GeodabIndex(CONFIG))
        server = start_server(service, access_log=True)
        try:
            with caplog.at_level(
                logging.INFO, logger="repro.service.access"
            ):
                call(server.url, "GET", "/healthz")
                lines = _access_lines(caplog, "/healthz")
            assert lines
            line = lines[-1]
            assert line["method"] == "GET"
            assert line["path"] == "/healthz"
            assert line["status"] == 200
            assert line["latency_ms"] >= 0.0
            assert "trace_id" in line
        finally:
            server.shutdown()
            service.close()

    def test_trace_id_lands_in_access_line(self, small_dataset, caplog):
        import logging

        service = IndexService(GeodabIndex(CONFIG))
        server = start_server(service, access_log=True)
        try:
            body = {
                "trajectories": [
                    {"id": r.trajectory_id, "points": as_wire(r.points)}
                    for r in small_dataset.records[:3]
                ]
            }
            assert call(server.url, "POST", "/trajectories", body)[0] == 200
            with caplog.at_level(
                logging.INFO, logger="repro.service.access"
            ):
                _, payload = call(
                    server.url, "POST", "/query?trace=1",
                    {"points": as_wire(small_dataset.queries[0].points)},
                )
                lines = _access_lines(caplog, "/query?trace=1")
            assert lines
            assert lines[-1]["trace_id"] == payload["trace"]["trace_id"]
        finally:
            server.shutdown()
            service.close()

    def test_disabled_by_default(self, server, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.service.access"):
            call(server.url, "GET", "/healthz")
        assert not [
            record
            for record in caplog.records
            if record.name == "repro.service.access"
        ]


class TestEndpointHistograms:
    def test_unknown_paths_collapse_to_other(self, server):
        call(server.url, "GET", "/definitely/not/a/route")
        _, stats = call(server.url, "GET", "/stats")
        endpoints = stats["metrics"]["endpoints"]
        assert "other" in endpoints
        status_counts = stats["metrics"]["status_counts"]
        assert status_counts["other"]["4xx"] >= 1

    def test_errors_keep_status_class(self, loaded_server):
        call(loaded_server.url, "POST", "/query", {"points": []})
        _, stats = call(loaded_server.url, "GET", "/stats")
        assert stats["metrics"]["status_counts"]["POST /query"]["4xx"] >= 1

    def test_executor_section_absent_for_single_node(self, loaded_server):
        _, stats = call(loaded_server.url, "GET", "/stats")
        assert stats["executor"] is None
        assert stats["slowlog"] is None


class TestAdmissionControl:
    @pytest.fixture()
    def capped_server(self, small_dataset):
        service = IndexService(GeodabIndex(CONFIG))
        server = start_server(service, max_inflight=2)
        yield server
        server.shutdown()
        service.close()

    def test_rejects_nonpositive_cap(self):
        service = IndexService(GeodabIndex(CONFIG))
        try:
            with pytest.raises(ValueError, match="max_inflight"):
                start_server(service, max_inflight=0)
        finally:
            service.close()

    def test_uncapped_by_default(self, server):
        assert server.max_inflight is None
        assert server.inflight == 0

    def test_under_cap_serves_normally(self, capped_server):
        import time

        status, _ = call(capped_server.url, "GET", "/stats")
        assert status == 200
        # The slot is released in the handler's ``finally`` after the
        # response bytes are flushed, so the client can observe the
        # response before the server thread decrements — poll briefly.
        deadline = time.time() + 5.0
        while capped_server.inflight != 0 and time.time() < deadline:
            time.sleep(0.01)
        assert capped_server.inflight == 0

    def test_shed_at_capacity_with_retry_after(self, capped_server):
        # Occupy both slots (as two slow in-flight requests would).
        assert capped_server.begin_request()
        assert capped_server.begin_request()
        try:
            request = urllib.request.Request(
                capped_server.url + "/stats", method="GET"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "1"
            body = json.loads(excinfo.value.read())
            assert body["error"]["code"] == "at_capacity"
            assert "capacity" in body["error"]["message"]
        finally:
            capped_server.end_request()
            capped_server.end_request()
        # Slots released: served again.
        status, stats = call(capped_server.url, "GET", "/stats")
        assert status == 200
        assert stats["metrics"]["requests_shed"] == 1

    def test_health_paths_never_shed(self, capped_server):
        assert capped_server.begin_request()
        assert capped_server.begin_request()
        try:
            for path in ("/healthz", "/readyz", "/metrics"):
                request = urllib.request.Request(
                    capped_server.url + path, method="GET"
                )
                with urllib.request.urlopen(request, timeout=10) as response:
                    assert response.status == 200
        finally:
            capped_server.end_request()
            capped_server.end_request()

    def test_sheds_surface_in_prometheus_metrics(self, capped_server):
        assert capped_server.begin_request()
        assert capped_server.begin_request()
        try:
            request = urllib.request.Request(
                capped_server.url + "/stats", method="GET"
            )
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(request, timeout=10)
        finally:
            capped_server.end_request()
            capped_server.end_request()
        request = urllib.request.Request(
            capped_server.url + "/metrics", method="GET"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            text = response.read().decode()
        assert "geodabs_requests_shed_total 1" in text


class TestGracefulShutdown:
    """Drain and teardown ordering, driven by a fake clock."""

    class FakeClock:
        def __init__(self):
            self.now_s = 0.0
            self.sleeps = []

        def clock(self):
            return self.now_s

        def sleep(self, seconds):
            self.sleeps.append(seconds)
            self.now_s += seconds

    def test_drain_returns_once_requests_finish(self, server):
        fake = self.FakeClock()
        assert server.begin_request()

        real_sleep = fake.sleep

        def sleep_then_finish(seconds):
            real_sleep(seconds)
            if len(fake.sleeps) == 3:
                server.end_request()

        assert server.drain(
            timeout_s=10.0, clock=fake.clock, sleep=sleep_then_finish
        )
        assert len(fake.sleeps) >= 3
        assert fake.now_s < 10.0

    def test_drain_times_out_on_stuck_requests(self, server):
        fake = self.FakeClock()
        assert server.begin_request()
        try:
            assert not server.drain(
                timeout_s=1.0, clock=fake.clock, sleep=fake.sleep
            )
            # The fake clock crossed the deadline; no real waiting.
            assert fake.now_s >= 1.0
        finally:
            server.end_request()

    def test_shutdown_gracefully_ordering(self, small_dataset):
        from repro.service import shutdown_gracefully

        service = IndexService(GeodabIndex(CONFIG))
        server = start_server(service)
        order = []

        original_drain = server.drain
        original_service_close = service.close
        original_server_close = server.server_close

        def recording_drain(*args, **kwargs):
            order.append("drain")
            return original_drain(*args, **kwargs)

        def recording_service_close():
            order.append("service_close")
            original_service_close()

        def recording_server_close():
            order.append("server_close")
            original_server_close()

        server.drain = recording_drain
        service.close = recording_service_close
        server.server_close = recording_server_close

        outcome = shutdown_gracefully(server, service, drain_timeout_s=5.0)
        assert order == ["drain", "service_close", "server_close"]
        assert outcome == {"drained": True, "inflight_abandoned": 0}

    def test_shutdown_reports_abandoned_requests(self, small_dataset):
        from repro.service import shutdown_gracefully

        fake = self.FakeClock()
        service = IndexService(GeodabIndex(CONFIG))
        server = start_server(service)
        assert server.begin_request()  # never finishes
        outcome = shutdown_gracefully(
            server, service, drain_timeout_s=1.0,
            clock=fake.clock, sleep=fake.sleep,
        )
        assert outcome == {"drained": False, "inflight_abandoned": 1}

    def test_shutdown_stops_maintenance_and_reaps_workers(
        self, small_dataset, tmp_path
    ):
        """The full ordering against real workers: no orphan processes."""
        from repro.cluster.cluster import ShardedGeodabIndex
        from repro.cluster.sharding import ShardingConfig
        from repro.core.persistence import publish_snapshot
        from repro.service import (
            QueryExecutor,
            WorkerProcessTransport,
            shutdown_gracefully,
        )

        index = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=2, num_nodes=1)
        )
        index.add_many(
            [(r.trajectory_id, r.points) for r in small_dataset.records]
        )
        snapshot = publish_snapshot(index, tmp_path, tag="shutdown")
        transport = WorkerProcessTransport(snapshot, num_workers=2)
        executor = QueryExecutor(index, pool_size=2, transport=transport)
        service = IndexService(
            index, executor=executor, maintenance_interval_s=60.0
        )
        server = start_server(service, max_inflight=4)
        procs = [handle.proc for handle in transport._workers]
        assert service._maintenance_thread.is_alive()

        status, _ = call(server.url, "GET", "/healthz")
        assert status == 200

        outcome = shutdown_gracefully(server, service, drain_timeout_s=5.0)
        assert outcome["drained"]
        assert service._maintenance_thread is None
        for proc in procs:
            assert proc.poll() is not None  # reaped, not orphaned


@pytest.fixture()
def exact_server(small_dataset):
    """A server whose index retains raw points for exact re-ranking."""
    from repro.normalize import standard_normalizer

    index = GeodabIndex(normalizer=standard_normalizer(), store_points=True)
    service = IndexService(index)
    service.ingest((r.trajectory_id, r.points) for r in small_dataset.records)
    server = start_server(service)
    yield server
    server.shutdown()
    service.close()


class TestQuerySpecAPI:
    """The structured spec surface of /query and /query/batch."""

    def test_spec_body_runs_exact_knn(self, exact_server, small_dataset):
        points = as_wire(small_dataset.queries[0].points)
        status, payload, headers = call_full(
            exact_server.url, "POST", "/query",
            {"points": points,
             "spec": {"mode": "exact_knn", "metric": "dtw", "limit": 3}},
        )
        assert status == 200
        assert headers.get("Deprecation") is None
        assert 0 < len(payload["results"]) <= 3
        # Exact distances are meters, not Jaccard values in [0, 1].
        assert all(hit["distance"] > 1.0 for hit in payload["results"])

    def test_spec_body_approx_matches_legacy(self, exact_server, small_dataset):
        points = as_wire(small_dataset.queries[0].points)
        _, via_spec, _ = call_full(
            exact_server.url, "POST", "/query",
            {"points": points, "spec": {"mode": "approx", "limit": 5}},
        )
        _, via_flat, headers = call_full(
            exact_server.url, "POST", "/query",
            {"points": points, "limit": 5},
        )
        assert via_spec["results"] == via_flat["results"]
        assert headers["Deprecation"] == "true"

    def test_bare_points_body_is_not_deprecated(self, exact_server, small_dataset):
        points = as_wire(small_dataset.queries[0].points)
        status, _, headers = call_full(
            exact_server.url, "POST", "/query", {"points": points}
        )
        assert status == 200
        assert headers.get("Deprecation") is None

    def test_mixing_spec_and_flat_keys_rejected(self, exact_server, small_dataset):
        points = as_wire(small_dataset.queries[0].points)
        status, payload = call(
            exact_server.url, "POST", "/query",
            {"points": points, "limit": 5, "spec": {"mode": "approx"}},
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_spec"

    @pytest.mark.parametrize(
        "spec",
        [
            {"mode": "exact_knn", "metric": "dtw"},  # missing limit
            {"mode": "approx", "metric": "dtw", "limit": 3},
            {"mode": "nope"},
            {"limti": 3},  # unknown key
            "exact_knn",  # not an object
        ],
    )
    def test_invalid_spec_is_structured_400(self, exact_server, small_dataset, spec):
        points = as_wire(small_dataset.queries[0].points)
        status, payload = call(
            exact_server.url, "POST", "/query", {"points": points, "spec": spec}
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_spec"
        assert payload["error"]["message"]

    def test_unknown_variant_is_structured_400(self, exact_server, small_dataset):
        points = as_wire(small_dataset.queries[0].points)
        status, payload = call(
            exact_server.url, "POST", "/query",
            {"points": points, "spec": {"mode": "approx", "limit": 3,
                                        "variant": "no-such-variant"}},
        )
        assert status == 400
        assert payload["error"]["code"] == "unknown_variant"
        assert "no-such-variant" in payload["error"]["message"]

    def test_auto_variant_accepted(self, exact_server, small_dataset):
        points = as_wire(small_dataset.queries[0].points)
        status, payload = call(
            exact_server.url, "POST", "/query",
            {"points": points, "spec": {"mode": "approx", "limit": 3,
                                        "variant": "auto"}},
        )
        assert status == 200
        # With only the default variant registered, 'auto' resolves to it.
        flat_status, flat_payload = call(
            exact_server.url, "POST", "/query", {"points": points, "limit": 3}
        )
        assert flat_status == 200
        assert payload["results"] == flat_payload["results"]

    def test_exact_without_stored_points_is_400(self, loaded_server, small_dataset):
        # The plain server fixture indexes without store_points.
        points = as_wire(small_dataset.queries[0].points)
        status, payload = call(
            loaded_server.url, "POST", "/query",
            {"points": points,
             "spec": {"mode": "exact_knn", "metric": "frechet", "limit": 3}},
        )
        assert status == 400
        assert payload["error"]["code"] == "exact_unsupported"

    def test_batch_accepts_spec(self, exact_server, small_dataset):
        queries = [as_wire(q.points) for q in small_dataset.queries[:2]]
        status, payload, headers = call_full(
            exact_server.url, "POST", "/query/batch",
            {"queries": queries,
             "spec": {"mode": "exact_knn", "metric": "dtw", "limit": 2}},
        )
        assert status == 200
        assert headers.get("Deprecation") is None
        assert payload["count"] == 2
        for response in payload["results"]:
            assert all(hit["distance"] > 1.0 for hit in response["results"])

    def test_batch_legacy_flat_is_deprecated(self, exact_server, small_dataset):
        queries = [as_wire(q.points) for q in small_dataset.queries[:2]]
        status, _, headers = call_full(
            exact_server.url, "POST", "/query/batch",
            {"queries": queries, "limit": 3},
        )
        assert status == 200
        assert headers["Deprecation"] == "true"

    def test_unknown_route_is_structured_404(self, server):
        status, payload = call(server.url, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_delete_missing_is_structured_404(self, loaded_server):
        status, payload = call(
            loaded_server.url, "DELETE", "/trajectories/ghost"
        )
        assert status == 404
        assert payload["error"]["code"] == "not_found"
