"""Tests for repro.bench.runner: cached workload builders."""

# Aliased so the ``bench_*`` collection pattern does not pick the
# imported helpers up as benchmark functions.
from repro.bench.runner import bench_network as make_network
from repro.bench.runner import bench_workload as make_workload
from repro.bench.runner import build_geodab_index, build_geohash_index


class TestCachedBuilders:
    def test_network_is_cached(self):
        assert make_network(seed=42, half_side_m=1_500.0) is make_network(
            seed=42, half_side_m=1_500.0
        )

    def test_workload_is_cached(self):
        a = make_workload(num_routes=2, per_direction=2, num_queries=1, seed=3)
        b = make_workload(num_routes=2, per_direction=2, num_queries=1, seed=3)
        assert a is b

    def test_workload_shape(self):
        dataset = make_workload(num_routes=2, per_direction=2, num_queries=1, seed=3)
        assert len(dataset) == 2 * 2 * 2
        assert len(dataset.queries) == 1

    def test_index_builders_cover_all_records(self):
        dataset = make_workload(num_routes=2, per_direction=2, num_queries=1, seed=3)
        geodab = build_geodab_index(dataset)
        geohash = build_geohash_index(dataset)
        assert len(geodab) == len(dataset)
        assert len(geohash) == len(dataset)

    def test_index_builder_limit(self):
        dataset = make_workload(num_routes=2, per_direction=2, num_queries=1, seed=3)
        partial = build_geodab_index(dataset, limit=3)
        assert len(partial) == 3
