"""Tests for repro.service.cache: LRU behaviour, generation invalidation."""

import pytest

from repro.geo.point import Point
from repro.service.cache import LRUCache, MISS, digest_points, digest_terms


class TestLRUBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(capacity=4)
        assert cache.get("a") is MISS
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1
        assert "a" in cache

    def test_cached_none_is_not_a_miss(self):
        cache = LRUCache(capacity=4)
        cache.put("a", None)
        assert cache.get("a") is None

    def test_overwrite(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is MISS
        assert len(cache) == 0
        assert cache.stats().evictions == 0

    def test_clear(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is MISS


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_eviction_counter(self):
        cache = LRUCache(capacity=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.stats().evictions == 1
        assert cache.stats().size == 1


class TestGenerationInvalidation:
    def test_stale_generation_misses_and_drops(self):
        cache = LRUCache(capacity=4)
        cache.put("key", "result", generation=1)
        assert cache.get("key", generation=1) == "result"
        assert cache.get("key", generation=2) is MISS
        # The stale entry was dropped, not just bypassed.
        assert len(cache) == 0
        assert cache.stats().invalidations == 1

    def test_invalidate_all_purges_and_counts(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1, generation=1)
        cache.put("b", 2, generation=1)
        cache.invalidate_all()
        assert len(cache) == 0
        assert cache.get("a", generation=1) is MISS
        assert cache.stats().invalidations == 2
        assert cache.stats().evictions == 0

    def test_untagged_entries_ignore_generations(self):
        cache = LRUCache(capacity=4)
        cache.put("fp", "fingerprints")
        assert cache.get("fp") == "fingerprints"
        assert cache.stats().invalidations == 0


class TestStats:
    def test_hit_rate(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_hit_rate(self):
        assert LRUCache(capacity=4).stats().hit_rate == 0.0


class TestDigests:
    def test_points_digest_sensitive_to_order_and_value(self):
        a = [Point(51.5, -0.1), Point(51.6, -0.2)]
        b = list(reversed(a))
        c = [Point(51.5, -0.1), Point(51.6, -0.2000001)]
        assert digest_points(a) == digest_points(list(a))
        assert digest_points(a) != digest_points(b)
        assert digest_points(a) != digest_points(c)

    def test_terms_digest_is_set_semantics(self):
        assert digest_terms([3, 1, 2]) == digest_terms([1, 2, 3, 3])
        assert digest_terms([1, 2, 3]) != digest_terms([1, 2, 4])
        assert digest_terms([]) == digest_terms([])
