"""Tests for repro.workload: noise, sampling, dataset construction."""

from random import Random

import pytest

from repro.geo.point import Point, haversine, path_length
from repro.roadnet.router import shortest_path
from repro.workload.dataset import FORWARD, REVERSE, TrajectoryDataset, TrajectoryRecord
from repro.workload.noise import DropoutNoise, GaussianGpsNoise
from repro.workload.trajgen import (
    PolylineWalker,
    WorkloadBuilder,
    sample_route_trajectory,
)

LONDON = Point(51.5074, -0.1278)


class TestGaussianNoise:
    def test_zero_sigma_identity(self):
        noise = GaussianGpsNoise(0.0, Random(1))
        assert noise.apply(LONDON) == LONDON

    def test_displacement_scale(self):
        noise = GaussianGpsNoise(20.0, Random(2))
        offsets = [haversine(LONDON, noise.apply(LONDON)) for _ in range(500)]
        mean_offset = sum(offsets) / len(offsets)
        # Rayleigh mean = sigma * sqrt(pi/2) ~ 25 m for sigma 20.
        assert 18.0 < mean_offset < 33.0

    def test_deterministic_with_seeded_rng(self):
        a = GaussianGpsNoise(20.0, Random(3)).apply(LONDON)
        b = GaussianGpsNoise(20.0, Random(3)).apply(LONDON)
        assert a == b

    def test_apply_all_length(self):
        noise = GaussianGpsNoise(20.0, Random(4))
        points = [LONDON] * 7
        assert len(noise.apply_all(points)) == 7

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianGpsNoise(-1.0)


class TestDropoutNoise:
    def test_keeps_endpoints(self):
        noise = DropoutNoise(0.9, Random(1))
        points = [Point(51.5, -0.1 + i * 1e-3) for i in range(20)]
        out = noise.apply_all(points)
        assert out[0] == points[0]
        assert out[-1] == points[-1]

    def test_drop_probability_zero(self):
        noise = DropoutNoise(0.0, Random(1))
        points = [Point(51.5, -0.1 + i * 1e-3) for i in range(5)]
        assert noise.apply_all(points) == points

    def test_short_input_untouched(self):
        noise = DropoutNoise(0.5, Random(1))
        points = [LONDON, LONDON]
        assert noise.apply_all(points) == points

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            DropoutNoise(1.0)


class TestPolylineWalker:
    def test_endpoints(self):
        points = [Point(51.5, -0.12), Point(51.51, -0.12), Point(51.51, -0.11)]
        walker = PolylineWalker(points)
        assert walker.at(0.0) == points[0]
        assert walker.at(walker.total_m) == points[-1]
        assert walker.at(10**9) == points[-1]

    def test_interior_distance(self):
        points = [Point(51.5, -0.12), Point(51.52, -0.12)]
        walker = PolylineWalker(points)
        probe = walker.at(walker.total_m / 2.0)
        assert haversine(points[0], probe) == pytest.approx(
            walker.total_m / 2.0, rel=1e-6
        )

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            PolylineWalker([LONDON])


class TestSampling:
    def test_sample_rate_controls_spacing(self, small_network):
        route = self._route(small_network)
        slow = sample_route_trajectory(route, sample_rate_hz=1.0)
        fast = sample_route_trajectory(route, sample_rate_hz=2.0)
        assert len(fast) == pytest.approx(2 * len(slow), rel=0.1)

    def test_samples_follow_route(self, small_network):
        route = self._route(small_network)
        trace = sample_route_trajectory(route)
        for p in trace:
            nearest = min(haversine(p, q) for q in route.points)
            assert nearest < 260.0  # within one block of the polyline

    def test_noise_perturbs(self, small_network):
        route = self._route(small_network)
        clean = sample_route_trajectory(route)
        noisy = sample_route_trajectory(
            route, noise=GaussianGpsNoise(20.0, Random(5))
        )
        assert clean != noisy
        assert len(clean) == len(noisy)

    def test_speed_factor_changes_sample_count(self, small_network):
        route = self._route(small_network)
        normal = sample_route_trajectory(route, speed_factor=1.0)
        fast = sample_route_trajectory(route, speed_factor=2.0)
        assert len(fast) < len(normal)

    def test_invalid_arguments(self, small_network):
        route = self._route(small_network)
        with pytest.raises(ValueError):
            sample_route_trajectory(route, sample_rate_hz=0.0)
        with pytest.raises(ValueError):
            sample_route_trajectory(route, speed_factor=0.0)

    @staticmethod
    def _route(network):
        nodes = list(network.nodes())
        rng = Random(2)
        for _ in range(100):
            a, b = rng.sample(nodes, 2)
            route = shortest_path(network, a, b)
            if route is not None and route.length_m > 1_200.0:
                return route
        raise RuntimeError("no route found")


class TestWorkloadBuilder:
    def test_dataset_shape(self, small_dataset):
        # 4 routes x 2 directions x 3 recordings.
        assert len(small_dataset) == 24
        groups = small_dataset.groups()
        assert len(groups) == 8
        assert all(len(records) == 3 for records in groups.values())

    def test_queries_have_ground_truth(self, small_dataset):
        assert len(small_dataset.queries) == 4
        for query in small_dataset.queries:
            assert len(query.relevant_ids) == 3
            for rid in query.relevant_ids:
                record = small_dataset.record_by_id(rid)
                assert record.route_id == query.route_id
                assert record.direction == query.direction

    def test_query_not_in_dataset(self, small_dataset):
        record_ids = {r.trajectory_id for r in small_dataset.records}
        for query in small_dataset.queries:
            assert query.query_id not in record_ids

    def test_directions_are_reversed_routes(self, small_dataset):
        groups = small_dataset.groups()
        forward = groups[(0, FORWARD)][0]
        reverse = groups[(0, REVERSE)][0]
        # Start of one is near the end of the other.
        assert haversine(forward.points[0], reverse.points[-1]) < 300.0

    def test_sampling_rate_one_hz(self, small_dataset):
        record = small_dataset.records[0]
        # ~1 point per second at urban speed: consecutive spacing well
        # below 30 m (max speed + jitter + noise).
        gaps = [
            haversine(a, b)
            for a, b in zip(record.points, record.points[1:])
        ]
        assert sum(gaps) / len(gaps) < 60.0

    def test_deterministic(self, small_network):
        a = WorkloadBuilder(small_network, seed=5).build(2, 2, num_queries=1)
        b = WorkloadBuilder(small_network, seed=5).build(2, 2, num_queries=1)
        assert [r.trajectory_id for r in a.records] == [
            r.trajectory_id for r in b.records
        ]
        assert a.records[0].points == b.records[0].points

    def test_invalid_parameters(self, small_network):
        builder = WorkloadBuilder(small_network)
        with pytest.raises(ValueError):
            builder.build(1, trajectories_per_direction=0)
        with pytest.raises(ValueError):
            WorkloadBuilder(small_network, speed_jitter=1.5)

    def test_total_points(self, small_dataset):
        assert small_dataset.total_points() == sum(
            len(r.points) for r in small_dataset.records
        )


class TestPersistence:
    def test_save_load_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.jsonl"
        small_dataset.save(path)
        loaded = TrajectoryDataset.load(path)
        assert len(loaded) == len(small_dataset)
        assert len(loaded.queries) == len(small_dataset.queries)
        assert loaded.records[0].trajectory_id == small_dataset.records[0].trajectory_id
        assert loaded.records[0].points == small_dataset.records[0].points
        assert loaded.queries[0].relevant_ids == small_dataset.queries[0].relevant_ids

    def test_record_by_id_missing(self, small_dataset):
        with pytest.raises(KeyError):
            small_dataset.record_by_id("nope")

    def test_relevant_ids(self, small_dataset):
        ids = small_dataset.relevant_ids(0, FORWARD)
        assert len(ids) == 3
        assert all("r00000-f" in i for i in ids)
