"""Tests for repro.geo.point: geodesy primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.point import (
    EARTH_RADIUS_M,
    Point,
    centroid,
    cumulative_lengths,
    destination,
    ensure_points,
    haversine,
    haversine_coords,
    initial_bearing,
    interpolate,
    path_length,
    resample_by_distance,
    walk,
)

from .conftest import points

LONDON = Point(51.5074, -0.1278)
PARIS = Point(48.8566, 2.3522)


class TestPoint:
    def test_valid_construction(self):
        p = Point(10.5, -20.25)
        assert p.lat == 10.5
        assert p.lon == -20.25

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    @pytest.mark.parametrize("lat", [-90.01, 90.01, 180.0])
    def test_latitude_out_of_range(self, lat):
        with pytest.raises(ValueError):
            Point(lat, 0.0)

    @pytest.mark.parametrize("lon", [-180.01, 180.01, 360.0])
    def test_longitude_out_of_range(self, lon):
        with pytest.raises(ValueError):
            Point(0.0, lon)

    def test_boundary_coordinates_accepted(self):
        Point(90.0, 180.0)
        Point(-90.0, -180.0)

    def test_hashable_and_equal(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))
        assert Point(1.0, 2.0) != Point(2.0, 1.0)

    def test_immutable(self):
        p = Point(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.lat = 5.0  # type: ignore[misc]


class TestHaversine:
    def test_zero_distance(self):
        assert haversine(LONDON, LONDON) == 0.0

    def test_london_paris_known_distance(self):
        # Reference value ~343.5 km.
        d = haversine(LONDON, PARIS)
        assert 340_000 < d < 347_000

    def test_symmetry(self):
        assert haversine(LONDON, PARIS) == pytest.approx(haversine(PARIS, LONDON))

    def test_antipodal_distance_is_half_circumference(self):
        a = Point(0.0, 0.0)
        b = Point(0.0, 180.0)
        assert haversine(a, b) == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-9)

    def test_coords_variant_matches(self):
        assert haversine_coords(
            LONDON.lat, LONDON.lon, PARIS.lat, PARIS.lon
        ) == pytest.approx(haversine(LONDON, PARIS))

    def test_one_degree_latitude(self):
        # 1 degree of latitude is ~111.2 km everywhere.
        d = haversine(Point(10.0, 5.0), Point(11.0, 5.0))
        assert d == pytest.approx(111_195, rel=1e-3)

    @given(points(), points())
    def test_non_negative_and_symmetric(self, p, q):
        d = haversine(p, q)
        assert d >= 0.0
        assert d == pytest.approx(haversine(q, p), abs=1e-6)

    @given(points(), points(), points())
    def test_triangle_inequality(self, a, b, c):
        assert haversine(a, c) <= haversine(a, b) + haversine(b, c) + 1e-6


class TestBearingAndDestination:
    def test_bearing_north(self):
        assert initial_bearing(Point(0.0, 0.0), Point(1.0, 0.0)) == pytest.approx(0.0)

    def test_bearing_east(self):
        assert initial_bearing(Point(0.0, 0.0), Point(0.0, 1.0)) == pytest.approx(90.0)

    def test_bearing_south(self):
        assert initial_bearing(Point(1.0, 0.0), Point(0.0, 0.0)) == pytest.approx(180.0)

    def test_bearing_west(self):
        assert initial_bearing(Point(0.0, 1.0), Point(0.0, 0.0)) == pytest.approx(270.0)

    def test_destination_roundtrip(self):
        target = destination(LONDON, 45.0, 10_000.0)
        assert haversine(LONDON, target) == pytest.approx(10_000.0, rel=1e-6)

    @given(
        points(),
        st.floats(min_value=0.0, max_value=359.99),
        st.floats(min_value=1.0, max_value=1_000_000.0),
    )
    def test_destination_distance_is_preserved(self, p, bearing, dist):
        target = destination(p, bearing, dist)
        # Distance holds except when clamped at the poles.
        if abs(target.lat) < 89.9:
            assert haversine(p, target) == pytest.approx(dist, rel=1e-4)

    def test_destination_wraps_longitude(self):
        p = Point(0.0, 179.9)
        target = destination(p, 90.0, 50_000.0)
        assert -180.0 <= target.lon <= 180.0


class TestInterpolate:
    def test_endpoints(self):
        assert interpolate(LONDON, PARIS, 0.0) == LONDON
        assert interpolate(LONDON, PARIS, 1.0) == PARIS

    def test_midpoint_equidistant(self):
        mid = interpolate(LONDON, PARIS, 0.5)
        assert haversine(LONDON, mid) == pytest.approx(
            haversine(mid, PARIS), rel=1e-6
        )

    def test_identical_points(self):
        assert interpolate(LONDON, LONDON, 0.5) == LONDON

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            interpolate(LONDON, PARIS, 1.5)

    def test_quarter_distance(self):
        q = interpolate(LONDON, PARIS, 0.25)
        total = haversine(LONDON, PARIS)
        assert haversine(LONDON, q) == pytest.approx(total / 4.0, rel=1e-6)


class TestPolylines:
    def _line(self):
        return [
            Point(51.50, -0.12),
            Point(51.51, -0.12),
            Point(51.51, -0.11),
        ]

    def test_path_length_sums_segments(self):
        line = self._line()
        expected = haversine(line[0], line[1]) + haversine(line[1], line[2])
        assert path_length(line) == pytest.approx(expected)

    def test_path_length_trivial(self):
        assert path_length([]) == 0.0
        assert path_length([LONDON]) == 0.0

    def test_cumulative_lengths(self):
        line = self._line()
        cum = cumulative_lengths(line)
        assert cum[0] == 0.0
        assert len(cum) == 3
        assert cum[-1] == pytest.approx(path_length(line))
        assert cum == sorted(cum)

    def test_cumulative_lengths_empty(self):
        assert cumulative_lengths([]) == []

    def test_walk_clamps(self):
        line = self._line()
        assert walk(line, -5.0) == line[0]
        assert walk(line, 10**9) == line[-1]

    def test_walk_half_first_segment(self):
        line = self._line()
        seg = haversine(line[0], line[1])
        midpoint = walk(line, seg / 2.0)
        assert haversine(line[0], midpoint) == pytest.approx(seg / 2.0, rel=1e-6)

    def test_walk_empty_raises(self):
        with pytest.raises(ValueError):
            walk([], 10.0)

    def test_resample_spacing(self):
        line = [Point(51.50, -0.12), Point(51.52, -0.12)]
        samples = resample_by_distance(line, 200.0)
        assert samples[0] == line[0]
        for a, b in zip(samples, samples[1:]):
            assert haversine(a, b) <= 210.0
        # Total coverage reaches the end.
        assert haversine(samples[-1], line[-1]) <= 100.0

    def test_resample_single_point(self):
        assert resample_by_distance([LONDON], 10.0) == [LONDON]

    def test_resample_empty(self):
        assert resample_by_distance([], 10.0) == []

    def test_resample_bad_step(self):
        with pytest.raises(ValueError):
            resample_by_distance([LONDON], 0.0)

    def test_centroid(self):
        c = centroid([Point(0.0, 0.0), Point(2.0, 2.0)])
        assert c == Point(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_ensure_points_mixed(self):
        out = ensure_points([LONDON, (48.8566, 2.3522)])
        assert out == [LONDON, PARIS]
