"""Tests for repro.distance.jaccard and repro.distance.haversine helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitmap.roaring import Roaring64Map, RoaringBitmap
from repro.distance.haversine import pairwise_ground_distance, trajectory_to_radians
from repro.distance.jaccard import (
    containment,
    jaccard,
    jaccard_distance,
    overlap_coefficient,
)
from repro.geo.point import Point, haversine

from .conftest import city_points


def int_sets(max_size=60):
    return st.sets(st.integers(min_value=0, max_value=10_000), max_size=max_size)


class TestJaccard:
    def test_known_value(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)
        assert jaccard_distance({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_empty_sets(self):
        # The empty/empty edge case is *defined*: coefficient 0.0,
        # distance 1.0 — an empty fingerprint set is maximally distant,
        # never a perfect match (and never a ZeroDivisionError).
        assert jaccard(set(), set()) == 0.0
        assert jaccard_distance(set(), set()) == 1.0
        assert jaccard({1}, set()) == 0.0

    @given(int_sets(), int_sets())
    def test_matches_definition(self, a, b):
        # Empty/empty is defined as coefficient 0.0 (distance 1.0).
        expected = 0.0 if not (a | b) else len(a & b) / len(a | b)
        assert jaccard(a, b) == pytest.approx(expected)

    @given(int_sets(), int_sets())
    def test_bitmap_matches_set(self, a, b):
        ra = RoaringBitmap.from_iterable(a)
        rb = RoaringBitmap.from_iterable(b)
        assert jaccard(ra, rb) == pytest.approx(jaccard(a, b))

    @given(int_sets(max_size=30), int_sets(max_size=30))
    def test_wide_bitmap_matches_set(self, a, b):
        ma = Roaring64Map.from_iterable(a)
        mb = Roaring64Map.from_iterable(b)
        assert jaccard(ma, mb) == pytest.approx(jaccard(a, b))

    def test_mixed_bitmap_types_rejected(self):
        with pytest.raises(TypeError):
            jaccard(RoaringBitmap(), Roaring64Map())

    def test_mixed_set_and_bitmap(self):
        rb = RoaringBitmap.from_iterable([1, 2])
        assert jaccard({2, 3}, rb) == pytest.approx(1 / 3)

    @given(int_sets(max_size=25), int_sets(max_size=25), int_sets(max_size=25))
    def test_triangle_inequality(self, a, b, c):
        assert jaccard_distance(a, c) <= (
            jaccard_distance(a, b) + jaccard_distance(b, c) + 1e-12
        )


class TestOtherCoefficients:
    def test_overlap_for_subset_is_one(self):
        assert overlap_coefficient({1, 2}, {1, 2, 3, 4}) == 1.0

    def test_overlap_empty(self):
        assert overlap_coefficient(set(), {1}) == 1.0

    def test_containment_asymmetric(self):
        query = {1, 2, 3, 4}
        target = {3, 4, 5}
        assert containment(query, target) == pytest.approx(0.5)
        assert containment(target, query) == pytest.approx(2 / 3)

    def test_containment_empty_query(self):
        assert containment(set(), {1}) == 1.0

    @given(int_sets(), int_sets())
    def test_overlap_at_least_jaccard(self, a, b):
        assert overlap_coefficient(a, b) >= jaccard(a, b) - 1e-12


class TestPairwiseGroundDistance:
    def test_shape(self):
        p = [Point(51.5, -0.12), Point(51.6, -0.11)]
        q = [Point(51.5, -0.12)] * 3
        assert pairwise_ground_distance(p, q).shape == (2, 3)

    @given(
        st.lists(city_points(), min_size=1, max_size=5),
        st.lists(city_points(), min_size=1, max_size=5),
    )
    def test_matches_scalar_haversine(self, p, q):
        matrix = pairwise_ground_distance(p, q)
        for i, a in enumerate(p):
            for j, b in enumerate(q):
                assert matrix[i, j] == pytest.approx(haversine(a, b), abs=1e-6)

    def test_radians_packing(self):
        pts = [Point(45.0, 90.0)]
        arr = trajectory_to_radians(pts)
        assert arr.shape == (1, 2)
        assert arr[0, 0] == pytest.approx(np.pi / 4)
        assert arr[0, 1] == pytest.approx(np.pi / 2)
