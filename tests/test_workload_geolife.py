"""Tests for repro.workload.geolife: GeoLife .plt loading."""

import pytest

from repro.workload.geolife import iter_plt_files, load_geolife, parse_plt

PLT_HEADER = (
    "Geolife trajectory\n"
    "WGS 84\n"
    "Altitude is in Feet\n"
    "Reserved 3\n"
    "0,2,255,My Track,0,0,2,8421376\n"
    "0\n"
)


def write_plt(path, rows):
    lines = [PLT_HEADER]
    for lat, lon in rows:
        lines.append(f"{lat},{lon},0,492,39744.245,2008-10-23,05:53:05\n")
    path.write_text("".join(lines), encoding="utf-8")


@pytest.fixture()
def geolife_tree(tmp_path):
    """A miniature GeoLife directory: two users, three trajectories."""
    for user, files in {
        "000": {
            "20081023055305": [(39.984, 116.318), (39.985, 116.319), (39.986, 116.320)],
            "20081024020959": [(39.99, 116.32), (39.991, 116.321)],
        },
        "001": {
            "20081101000000": [(31.23, 121.47), (31.231, 121.471), (31.232, 121.472)],
        },
    }.items():
        trajectory_dir = tmp_path / user / "Trajectory"
        trajectory_dir.mkdir(parents=True)
        for stem, rows in files.items():
            write_plt(trajectory_dir / f"{stem}.plt", rows)
    # A stray user directory without a Trajectory folder must be skipped.
    (tmp_path / "999").mkdir()
    return tmp_path


class TestParsePlt:
    def test_parses_points_in_order(self, geolife_tree):
        path = geolife_tree / "000" / "Trajectory" / "20081023055305.plt"
        points = parse_plt(path)
        assert len(points) == 3
        assert points[0].lat == pytest.approx(39.984)
        assert points[0].lon == pytest.approx(116.318)

    def test_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.plt"
        path.write_text(
            PLT_HEADER
            + "39.9,116.3,0,492,39744.2,2008-10-23,05:53:05\n"
            + "garbage line\n"
            + "not,a,number\n"
            + "40.0,116.4,0,492,39744.3,2008-10-23,05:53:06\n"
        )
        points = parse_plt(path)
        assert len(points) == 2

    def test_skips_out_of_range_and_zero_glitches(self, tmp_path):
        path = tmp_path / "glitch.plt"
        path.write_text(
            PLT_HEADER
            + "0.0,0.0,0,0,0,2008-10-23,05:53:05\n"
            + "400.0,116.3,0,0,0,2008-10-23,05:53:06\n"
            + "39.9,200.0,0,0,0,2008-10-23,05:53:07\n"
            + "39.9,116.3,0,0,0,2008-10-23,05:53:08\n"
        )
        assert len(parse_plt(path)) == 1


class TestIterPltFiles:
    def test_yields_sorted_pairs(self, geolife_tree):
        pairs = list(iter_plt_files(geolife_tree))
        assert [user for user, _ in pairs] == ["000", "000", "001"]
        assert pairs[0][1].name == "20081023055305.plt"

    def test_missing_root(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_plt_files(tmp_path / "nope"))


class TestLoadGeolife:
    def test_loads_dataset(self, geolife_tree):
        dataset = load_geolife(geolife_tree, min_points=2)
        assert len(dataset) == 3
        ids = [r.trajectory_id for r in dataset.records]
        assert "000/20081023055305" in ids
        assert "001/20081101000000" in ids

    def test_route_ids_group_users(self, geolife_tree):
        dataset = load_geolife(geolife_tree, min_points=2)
        routes = {r.trajectory_id.split("/")[0]: r.route_id for r in dataset.records}
        assert routes["000"] != routes["001"]

    def test_min_points_filter(self, geolife_tree):
        dataset = load_geolife(geolife_tree, min_points=3)
        assert len(dataset) == 2  # the 2-point trajectory is dropped

    def test_max_trajectories_cap(self, geolife_tree):
        dataset = load_geolife(geolife_tree, min_points=1, max_trajectories=1)
        assert len(dataset) == 1

    def test_invalid_min_points(self, geolife_tree):
        with pytest.raises(ValueError):
            load_geolife(geolife_tree, min_points=-1)

    def test_loaded_records_are_indexable(self, geolife_tree):
        from repro.core import GeodabConfig, GeodabIndex

        dataset = load_geolife(geolife_tree, min_points=2)
        index = GeodabIndex(GeodabConfig(k=2, t=3))
        for record in dataset.records:
            index.add(record.trajectory_id, record.points)
        assert len(index) == 3
