"""Tests for repro.geo.geohash: the bit-level geohash codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.geohash import (
    MAX_DEPTH,
    Geohash,
    cell_dimensions,
    cells_along,
    common_prefix,
    cover,
    decode,
    decode_center,
    encode,
    from_base32,
    to_base32,
    truncate,
)
from repro.geo.point import Point

from .conftest import points

LONDON = Point(51.5074, -0.1278)


class TestEncodeDecode:
    @given(points(), st.integers(min_value=1, max_value=MAX_DEPTH))
    def test_roundtrip_containment(self, p, depth):
        bits = encode(p, depth)
        # Points within one float ULP of a bisection boundary may land in
        # the adjacent cell; a hair of tolerance absorbs that.
        assert decode(bits, depth).buffer_degrees(1e-9, 1e-9).contains(p)

    @given(points(), st.integers(min_value=2, max_value=MAX_DEPTH))
    def test_prefix_is_parent_cell(self, p, depth):
        bits = encode(p, depth)
        parent_bits = encode(p, depth - 1)
        assert bits >> 1 == parent_bits

    def test_depth_zero_is_world(self):
        assert encode(LONDON, 0) == 0
        box = decode(0, 0)
        assert box.contains(Point(90.0, 180.0))
        assert box.contains(Point(-90.0, -180.0))

    def test_first_bit_is_longitude_split(self):
        # Eastern hemisphere -> first bit 1; western -> 0.
        assert encode(Point(0.0, 10.0), 1) == 1
        assert encode(Point(0.0, -10.0), 1) == 0

    def test_second_bit_is_latitude_split(self):
        # North-east quadrant -> bits 11.
        assert encode(Point(45.0, 90.0), 2) == 0b11
        # South-east quadrant -> bits 10.
        assert encode(Point(-45.0, 90.0), 2) == 0b10

    def test_known_london_base32(self):
        # Central London's well-known geohash prefix.
        bits = encode(LONDON, 40)
        assert to_base32(bits, 40).startswith("gcpvj0d")

    def test_decode_rejects_oversized_bits(self):
        with pytest.raises(ValueError):
            decode(1 << 10, 10)

    def test_decode_depth_zero_nonzero_bits(self):
        with pytest.raises(ValueError):
            decode(1, 0)

    def test_encode_invalid_depth(self):
        with pytest.raises(ValueError):
            encode(LONDON, MAX_DEPTH + 1)
        with pytest.raises(ValueError):
            encode(LONDON, -1)

    def test_domain_boundary_points(self):
        for p in (
            Point(90.0, 180.0),
            Point(-90.0, -180.0),
            Point(90.0, -180.0),
            Point(-90.0, 180.0),
        ):
            bits = encode(p, 36)
            assert decode(bits, 36).contains(p)

    @given(points(), st.integers(min_value=1, max_value=MAX_DEPTH))
    def test_decode_center_reencodes_to_same_cell(self, p, depth):
        bits = encode(p, depth)
        assert encode(decode_center(bits, depth), depth) == bits


class TestCover:
    def test_cover_single_point_is_max_depth(self):
        g = cover([LONDON])
        assert g.depth == MAX_DEPTH

    def test_cover_contains_all_points(self):
        pts = [LONDON, Point(51.51, -0.13), Point(51.52, -0.12)]
        g = cover(pts)
        assert all(g.contains_point(p) for p in pts)

    def test_cover_empty_raises(self):
        with pytest.raises(ValueError):
            cover([])

    def test_cover_of_hemisphere_straddle_is_shallow(self):
        g = cover([Point(0.0, -10.0), Point(0.0, 10.0)])
        assert g.depth == 0

    @given(st.lists(points(), min_size=1, max_size=10))
    def test_cover_is_deepest_common_cell(self, pts):
        g = cover(pts)
        if g.depth < MAX_DEPTH:
            # One level deeper must exclude at least one point.
            deeper_cells = {encode(p, g.depth + 1) for p in pts}
            assert len(deeper_cells) > 1

    def test_cover_respects_max_depth(self):
        g = cover([LONDON], max_depth=20)
        assert g.depth == 20


class TestGeohashType:
    def test_of_and_bbox(self):
        g = Geohash.of(LONDON, 36)
        assert g.bbox().contains(LONDON)
        assert g.depth == 36

    def test_validation(self):
        with pytest.raises(ValueError):
            Geohash(8, 3)  # 8 needs 4 bits
        with pytest.raises(ValueError):
            Geohash(-1, 3)

    def test_parent_child_roundtrip(self):
        g = Geohash.of(LONDON, 30)
        left, right = g.parent().children()
        assert g in (left, right)

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            Geohash(0, 0).parent()

    def test_children_at_max_depth_raise(self):
        g = Geohash.of(LONDON, MAX_DEPTH)
        with pytest.raises(ValueError):
            g.children()

    def test_ancestor(self):
        g = Geohash.of(LONDON, 36)
        a = g.ancestor(16)
        assert a.depth == 16
        assert a.contains(g)

    def test_contains_self(self):
        g = Geohash.of(LONDON, 20)
        assert g.contains(g)

    def test_contains_descendant_only(self):
        g = Geohash.of(LONDON, 16)
        deep = Geohash.of(LONDON, 36)
        assert g.contains(deep)
        assert not deep.contains(g)

    def test_contains_point_matches_bbox(self):
        g = Geohash.of(LONDON, 24)
        assert g.contains_point(LONDON)
        assert not g.contains_point(Point(-51.0, 100.0))

    def test_curve_position_ordering_matches_bits(self):
        a = Geohash(0b0101, 4)
        b = Geohash(0b0110, 4)
        assert a.curve_position(10) < b.curve_position(10)

    def test_curve_position_too_shallow_raises(self):
        with pytest.raises(ValueError):
            Geohash(0b0101, 4).curve_position(2)

    def test_ordering(self):
        assert Geohash(1, 4) < Geohash(2, 4)

    def test_neighbors_are_adjacent_and_distinct(self):
        g = Geohash.of(LONDON, 20)
        neighbors = g.neighbors()
        assert 3 <= len(neighbors) <= 8
        assert g not in neighbors
        assert len(set(neighbors)) == len(neighbors)
        box = g.bbox()
        for n in neighbors:
            nbox = n.bbox()
            # Neighbouring boxes touch or slightly overlap the original.
            assert nbox.buffer_degrees(1e-9, 1e-9).intersects(box)

    def test_neighbors_at_pole_fewer(self):
        g = Geohash.of(Point(89.99, 0.0), 10)
        assert len(g.neighbors()) < 8


class TestBase32:
    @given(points())
    def test_roundtrip(self, p):
        bits = encode(p, 40)
        text = to_base32(bits, 40)
        parsed = from_base32(text)
        assert parsed.bits == bits
        assert parsed.depth == 40

    def test_known_value(self):
        # "ezs42" is the canonical example geohash (57.64911, 10.40744
        # belongs to "u4pru"; use a simpler well-known one: base32 of 0 is
        # '0').
        assert to_base32(0, 5) == "0"
        assert from_base32("0") == Geohash(0, 5)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            to_base32(0, 7)

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            from_base32("ab!")

    def test_case_insensitive(self):
        assert from_base32("GCPVJ") == from_base32("gcpvj")


class TestHelpers:
    def test_truncate(self):
        assert truncate(0b110101, 6, 3) == 0b110

    def test_truncate_deeper_raises(self):
        with pytest.raises(ValueError):
            truncate(0b1, 1, 2)

    def test_common_prefix(self):
        a = Geohash(0b1100, 4)
        b = Geohash(0b1101, 4)
        g = common_prefix(a, b)
        assert g == Geohash(0b110, 3)

    def test_common_prefix_disjoint(self):
        a = Geohash(0b0, 1)
        b = Geohash(0b1, 1)
        assert common_prefix(a, b) == Geohash(0, 0)

    @given(points(), points())
    def test_common_prefix_contains_both(self, p, q):
        a = Geohash.of(p, 30)
        b = Geohash.of(q, 30)
        g = common_prefix(a, b)
        assert g.contains(a)
        assert g.contains(b)

    def test_cell_dimensions_london_36_bits(self):
        # Paper Section VI-A2: ~95 m x ~76 m at London's latitude.
        width, height = cell_dimensions(36, LONDON.lat)
        assert width == pytest.approx(95.0, abs=5.0)
        assert height == pytest.approx(76.0, abs=5.0)

    def test_cell_dimensions_shrink_toward_pole(self):
        width_equator, _ = cell_dimensions(36, 0.0)
        width_high, _ = cell_dimensions(36, 70.0)
        assert width_high < width_equator

    def test_cells_along_dedupes_consecutive(self):
        pts = [LONDON, LONDON, Point(52.5, -0.1278), LONDON]
        cells = cells_along(pts, 36)
        # Consecutive duplicates merge, non-consecutive repeats survive.
        assert len(cells) == 3
        assert cells[0] == cells[2]

    def test_cells_along_empty(self):
        assert cells_along([], 20) == []
