"""Tests for repro.mapmatch: HMM/Viterbi map matching."""

from random import Random

import pytest

from repro.geo.point import Point, haversine
from repro.mapmatch.hmm import MapMatcher
from repro.roadnet.router import shortest_path
from repro.workload.noise import GaussianGpsNoise
from repro.workload.trajgen import sample_route_trajectory


@pytest.fixture(scope="module")
def matcher(request):
    small_network = request.getfixturevalue("small_network")
    return MapMatcher(small_network, sigma_m=20.0, radius_m=150.0)


@pytest.fixture(scope="module")
def route(request):
    small_network = request.getfixturevalue("small_network")
    nodes = list(small_network.nodes())
    rng = Random(9)
    for _ in range(100):
        a, b = rng.sample(nodes, 2)
        r = shortest_path(small_network, a, b)
        if r is not None and r.length_m > 1_500.0:
            return r
    raise RuntimeError("no suitable route in the test network")


class TestMatching:
    def test_clean_trace_recovers_route_nodes(self, matcher, route):
        trace = sample_route_trajectory(route, noise=None)
        result = matcher.match(trace)
        # Mid-edge samples can sit farther than the search radius from any
        # node, so a few points may lack candidates even without noise.
        assert result.matched_ratio > 0.9
        # The matched node set should largely coincide with the route.
        route_set = set(route.nodes)
        matched_set = set(result.nodes)
        overlap = len(route_set & matched_set) / len(route_set)
        assert overlap > 0.8

    def test_noisy_trace_stays_near_route(self, matcher, route):
        noise = GaussianGpsNoise(20.0, Random(3))
        trace = sample_route_trajectory(route, noise=noise)
        result = matcher.match(trace)
        assert result.matched_ratio > 0.9
        # Every matched point lies within a generous corridor of the route.
        for p in result.points:
            nearest = min(haversine(p, q) for q in route.points)
            assert nearest < 400.0

    def test_matched_sequence_has_no_consecutive_duplicates(self, matcher, route):
        trace = sample_route_trajectory(route, noise=None)
        result = matcher.match(trace)
        for a, b in zip(result.nodes, result.nodes[1:]):
            assert a != b

    def test_matched_nodes_form_connected_path(self, matcher, route, small_network):
        trace = sample_route_trajectory(route, noise=None)
        result = matcher.match(trace)
        for a, b in zip(result.nodes, result.nodes[1:]):
            neighbors = {e.target for e in small_network.edges_from(a)}
            assert b in neighbors

    def test_empty_trajectory(self, matcher):
        result = matcher.match([])
        assert result.nodes == ()
        assert result.matched_ratio == 0.0

    def test_far_away_trajectory_matches_nothing(self, matcher):
        trace = [Point(40.0, 2.0), Point(40.001, 2.0)]
        result = matcher.match(trace)
        assert result.nodes == ()

    def test_normalize_falls_back_to_raw(self, matcher):
        trace = [Point(40.0, 2.0), Point(40.001, 2.0)]
        assert matcher.normalize(trace) == trace

    def test_normalize_returns_network_points(self, matcher, route, small_network):
        trace = sample_route_trajectory(route, noise=None)
        normalized = matcher.normalize(trace)
        network_points = {small_network.point_of(n) for n in small_network.nodes()}
        assert all(p in network_points for p in normalized)

    def test_normalization_makes_noisy_traces_converge(self, matcher, route):
        traces = [
            sample_route_trajectory(route, noise=GaussianGpsNoise(20.0, Random(s)))
            for s in (1, 2)
        ]
        matched = [tuple(matcher.normalize(t)) for t in traces]
        # Two noisy recordings of the same route map to highly similar
        # node sequences.
        a, b = set(matched[0]), set(matched[1])
        assert len(a & b) / len(a | b) > 0.7


class TestValidation:
    def test_invalid_parameters(self, small_network):
        with pytest.raises(ValueError):
            MapMatcher(small_network, sigma_m=0.0)
        with pytest.raises(ValueError):
            MapMatcher(small_network, beta_m=-1.0)
        with pytest.raises(ValueError):
            MapMatcher(small_network, radius_m=0.0)
        with pytest.raises(ValueError):
            MapMatcher(small_network, max_candidates=0)
