"""Tests for repro.hashing.window: two-stack sliding-window aggregation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.window import SlidingWindowAggregate, common_prefix_op


class TestSlidingWindowAggregate:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowAggregate(0, min)

    def test_fills_then_reports(self):
        agg = SlidingWindowAggregate(3, min)
        assert agg.push(5) is None
        assert agg.push(2) is None
        assert agg.push(7) == 2
        assert agg.full

    def test_eviction(self):
        agg = SlidingWindowAggregate(2, min)
        agg.push(1)
        agg.push(9)
        # Window is now [9, 9] after pushing another 9: the 1 evicted.
        assert agg.push(9) == 9

    def test_aggregate_of_empty_raises(self):
        agg = SlidingWindowAggregate(2, min)
        with pytest.raises(ValueError):
            agg.aggregate()

    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=80),
        st.integers(min_value=1, max_value=12),
    )
    def test_matches_naive_min(self, values, window):
        agg = SlidingWindowAggregate(window, min)
        produced = []
        for v in values:
            result = agg.push(v)
            if result is not None:
                produced.append(result)
        expected = [
            min(values[i : i + window])
            for i in range(max(0, len(values) - window + 1))
        ]
        assert produced == expected

    @given(
        st.lists(st.integers(min_value=0, max_value=2**30), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=8),
    )
    def test_matches_naive_concatenation_semigroup(self, values, window):
        # Tuple concatenation: associative but non-commutative, so it
        # detects any ordering mistake in the two-stack folding.
        op = lambda a, b: a + b  # noqa: E731
        agg = SlidingWindowAggregate(window, op)
        produced = []
        for v in values:
            result = agg.push((v,))
            if result is not None:
                produced.append(result)
        expected = [
            tuple(values[i : i + window])
            for i in range(max(0, len(values) - window + 1))
        ]
        assert produced == expected


class TestCommonPrefixOp:
    OP = staticmethod(common_prefix_op(8))

    def test_identical(self):
        assert self.OP((0b1010, 4), (0b1010, 4)) == (0b1010, 4)

    def test_partial_prefix(self):
        assert self.OP((0b1010, 4), (0b1001, 4)) == (0b10, 2)

    def test_disjoint(self):
        assert self.OP((0b0, 1), (0b1, 1)) == (0, 0)

    def test_mixed_depths(self):
        # (0b101, 3) vs (0b10, 2): compare at depth 2.
        assert self.OP((0b101, 3), (0b10, 2)) == (0b10, 2)

    def test_associativity_spot_check(self):
        a, b, c = (0b1100, 4), (0b1101, 4), (0b1000, 4)
        left = self.OP(self.OP(a, b), c)
        right = self.OP(a, self.OP(b, c))
        assert left == right

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_associativity(self, x, y, z):
        a, b, c = (x, 8), (y, 8), (z, 8)
        assert self.OP(self.OP(a, b), c) == self.OP(a, self.OP(b, c))
