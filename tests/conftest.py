"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from random import Random

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.roadnet.generator import generate_city_network
from repro.workload.trajgen import WorkloadBuilder

# Keep hypothesis fast and deterministic across the suite.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

def latitudes() -> st.SearchStrategy[float]:
    """Finite latitudes across the valid domain."""
    return st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)


def longitudes() -> st.SearchStrategy[float]:
    """Finite longitudes across the valid domain."""
    return st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)


def points() -> st.SearchStrategy[Point]:
    """Arbitrary valid points."""
    return st.builds(Point, latitudes(), longitudes())


def city_points() -> st.SearchStrategy[Point]:
    """Points confined to a London-sized neighbourhood (evaluation area)."""
    return st.builds(
        Point,
        st.floats(min_value=51.40, max_value=51.62, allow_nan=False),
        st.floats(min_value=-0.30, max_value=0.05, allow_nan=False),
    )


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

@pytest.fixture(scope="session")
def small_network():
    """A small deterministic city network shared across tests."""
    return generate_city_network(half_side_m=2_000.0, spacing_m=250.0, seed=11)


@pytest.fixture(scope="session")
def small_dataset(small_network):
    """A small dense dataset with queries (4 routes x 2x3 recordings)."""
    builder = WorkloadBuilder(small_network, seed=5)
    return builder.build(num_routes=4, trajectories_per_direction=3, num_queries=4)


@pytest.fixture()
def rng() -> Random:
    """A fresh deterministic RNG per test."""
    return Random(1234)
