"""Tests for repro.core.geodab: the geodab construction (paper Figure 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import GeodabConfig
from repro.core.geodab import GeodabScheme
from repro.geo.geohash import Geohash, encode
from repro.geo.point import Point, destination

from .conftest import city_points

LONDON = Point(51.5074, -0.1278)


def kgram(n=6, step_m=90.0, bearing=45.0, start=LONDON):
    """A k-gram of points walking in a fixed direction."""
    out = [start]
    for _ in range(n - 1):
        out.append(destination(out[-1], bearing, step_m))
    return out


class TestConstruction:
    def test_geodab_width(self):
        scheme = GeodabScheme(GeodabConfig())
        g = scheme.geodab(kgram())
        assert 0 <= g < (1 << 32)

    def test_deterministic(self):
        scheme = GeodabScheme()
        points = kgram()
        assert scheme.geodab(points) == scheme.geodab(points)

    def test_empty_kgram_raises(self):
        with pytest.raises(ValueError):
            GeodabScheme().geodab([])

    def test_prefix_matches_cover(self):
        scheme = GeodabScheme()
        points = kgram(step_m=30.0)
        g = scheme.geodab(points)
        prefix = scheme.prefix_of(g)
        # Every point must be inside (or on the boundary cell of) the
        # 16-bit prefix cell.
        cell = Geohash(prefix, 16)
        assert all(cell.contains_point(p) for p in points)

    def test_direction_sensitivity(self):
        # The core geodab property: a path and its reverse differ.
        scheme = GeodabScheme()
        points = kgram()
        forward = scheme.geodab(points)
        backward = scheme.geodab(list(reversed(points)))
        assert forward != backward
        # But they share the geohash prefix (same covered area).
        assert scheme.prefix_of(forward) == scheme.prefix_of(backward)

    def test_path_sensitivity(self):
        # Same endpoints, different middle -> different geodab.
        scheme = GeodabScheme()
        a = kgram()
        b = list(a)
        b[2] = destination(a[2], 90.0, 500.0)
        assert scheme.geodab(a) != scheme.geodab(b)

    def test_seed_changes_suffix_not_prefix(self):
        points = kgram()
        s0 = GeodabScheme(GeodabConfig(hash_seed=0))
        s1 = GeodabScheme(GeodabConfig(hash_seed=1))
        g0, g1 = s0.geodab(points), s1.geodab(points)
        assert s0.prefix_of(g0) == s1.prefix_of(g1)
        assert s0.suffix_of(g0) != s1.suffix_of(g1)


class TestDecomposition:
    def test_prefix_suffix_recompose(self):
        cfg = GeodabConfig(prefix_bits=12, suffix_bits=20)
        scheme = GeodabScheme(cfg)
        g = scheme.geodab(kgram())
        assert (scheme.prefix_of(g) << 20) | scheme.suffix_of(g) == g
        assert 0 <= scheme.prefix_of(g) < (1 << 12)
        assert 0 <= scheme.suffix_of(g) < (1 << 20)

    def test_prefix_cell_depth(self):
        scheme = GeodabScheme()
        cell = scheme.prefix_cell(scheme.geodab(kgram()))
        assert cell.depth == 16

    @given(st.lists(city_points(), min_size=2, max_size=8))
    def test_prefix_is_cover_aligned(self, points):
        scheme = GeodabScheme()
        g = scheme.geodab(points)
        prefix = scheme.prefix_of(g)
        deep = [encode(p, scheme.config.cover_depth) for p in points]
        diff = 0
        for d in deep:
            diff |= d ^ deep[0]
        cover_depth = scheme.config.cover_depth - diff.bit_length()
        if cover_depth >= 16:
            assert prefix == deep[0] >> (scheme.config.cover_depth - 16)
        else:
            # Shallow covers extend with zeros to the subtree start.
            cover = deep[0] >> (scheme.config.cover_depth - cover_depth) if cover_depth else 0
            assert prefix == cover << (16 - cover_depth)


class TestCells:
    def test_cell_of_matches_direct_encoding(self):
        scheme = GeodabScheme()
        assert scheme.cell_of(LONDON) == encode(LONDON, 36)

    def test_cell_of_deep_consistency(self):
        scheme = GeodabScheme()
        deep = scheme.deep_encode(LONDON)
        assert scheme.cell_of_deep(deep) == encode(LONDON, 36)

    def test_normalization_deeper_than_cover(self):
        # Degenerate but legal: normalization below cover depth.
        cfg = GeodabConfig(normalization_depth=50, cover_depth=48)
        scheme = GeodabScheme(cfg)
        assert scheme.cell_of(LONDON) == encode(LONDON, 50)
        # The geodab still assembles without error.
        g = scheme.geodab(kgram())
        assert g >= 0
