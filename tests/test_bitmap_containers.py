"""Tests for repro.bitmap.containers: the roaring container zoo."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitmap.containers import (
    ARRAY_MAX_SIZE,
    ArrayContainer,
    BitmapContainer,
    RunContainer,
    canonicalize,
    container_and,
    container_and_cardinality,
    container_andnot,
    container_or,
    container_values,
    container_xor,
    run_optimize,
)


def lows():
    return st.integers(min_value=0, max_value=2**16 - 1)


def low_sets(max_size=300):
    return st.sets(lows(), max_size=max_size)


def _array(values) -> ArrayContainer:
    return ArrayContainer(np.array(sorted(values), dtype=np.uint16))


def _bitmap(values) -> BitmapContainer:
    return BitmapContainer.from_array_values(np.array(sorted(values), dtype=np.uint16))


def _run(values) -> RunContainer:
    return RunContainer.from_sorted_values(np.array(sorted(values), dtype=np.uint16))


MAKERS = {"array": _array, "bitmap": _bitmap, "run": _run}


class TestArrayContainer:
    def test_empty(self):
        c = ArrayContainer()
        assert c.cardinality == 0
        assert not c.contains(0)

    def test_add_and_contains(self):
        c = ArrayContainer()
        c = c.add(5)
        c = c.add(3)
        c = c.add(5)  # duplicate
        assert c.cardinality == 2
        assert c.contains(3) and c.contains(5)
        assert list(c) == [3, 5]

    def test_discard(self):
        c = _array([1, 2, 3])
        c = c.discard(2)
        assert list(c) == [1, 3]
        # Discarding a missing value is a no-op.
        assert list(c.discard(9)) == [1, 3]

    def test_promotes_to_bitmap_beyond_threshold(self):
        c = _array(range(ARRAY_MAX_SIZE))
        promoted = c.add(60_000)
        assert isinstance(promoted, BitmapContainer)
        assert promoted.cardinality == ARRAY_MAX_SIZE + 1

    def test_min_max_rank_select(self):
        c = _array([10, 20, 30])
        assert c.min() == 10
        assert c.max() == 30
        assert c.rank(20) == 2
        assert c.rank(9) == 0
        assert c.select(1) == 20

    def test_from_unsorted(self):
        c = ArrayContainer.from_unsorted(np.array([5, 1, 5, 3]))
        assert list(c) == [1, 3, 5]


class TestBitmapContainer:
    def test_from_values_roundtrip(self):
        values = [0, 63, 64, 65_535]
        c = _bitmap(values)
        assert c.cardinality == 4
        assert list(c) == values

    def test_add_discard(self):
        c = BitmapContainer.empty()
        c = c.add(100)
        assert c.contains(100)
        c2 = c.add(100)
        assert c2.cardinality == 1
        shrunk = c.discard(100)
        assert shrunk.cardinality == 0

    def test_discard_demotes_to_array(self):
        c = _bitmap(range(ARRAY_MAX_SIZE + 1))
        out = c.discard(0)
        assert isinstance(out, ArrayContainer)
        assert out.cardinality == ARRAY_MAX_SIZE

    def test_min_max(self):
        c = _bitmap([7, 130, 999])
        assert c.min() == 7
        assert c.max() == 999

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            BitmapContainer.empty().min()

    def test_rank_select_consistency(self):
        values = [3, 64, 65, 128, 40_000]
        c = _bitmap(values)
        for i, v in enumerate(values):
            assert c.select(i) == v
            assert c.rank(v) == i + 1

    def test_select_out_of_range(self):
        with pytest.raises(IndexError):
            _bitmap([1]).select(1)

    def test_contains_many(self):
        c = _bitmap([2, 4, 6])
        probe = np.array([1, 2, 3, 4, 5, 6], dtype=np.uint16)
        assert c.contains_many(probe).tolist() == [False, True, False, True, False, True]

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            BitmapContainer(np.zeros(10, dtype=np.uint64))


class TestRunContainer:
    def test_from_sorted_values(self):
        c = _run([1, 2, 3, 7, 8, 42])
        assert c.num_runs == 3
        assert c.cardinality == 6
        assert list(c) == [1, 2, 3, 7, 8, 42]

    def test_contains(self):
        c = _run([5, 6, 7, 100])
        assert c.contains(6)
        assert c.contains(100)
        assert not c.contains(8)
        assert not c.contains(0)

    def test_empty(self):
        c = _run([])
        assert c.num_runs == 0
        assert c.cardinality == 0
        assert list(c.to_numpy()) == []

    def test_min_max(self):
        c = _run([10, 11, 12, 50])
        assert c.min() == 10
        assert c.max() == 50

    def test_add_leaves_run_form(self):
        c = _run([1, 2, 3])
        out = c.add(10)
        assert out.contains(10)
        assert sorted(out) == [1, 2, 3, 10]

    def test_full_domain_run(self):
        values = np.arange(0, 2**16, dtype=np.uint32)
        c = RunContainer.from_sorted_values(values)
        assert c.num_runs == 1
        assert c.cardinality == 2**16
        assert c.contains(0) and c.contains(2**16 - 1)


class TestCanonicalizeAndOptimize:
    def test_canonicalize_demotes_sparse_bitmap(self):
        c = _bitmap([1, 2, 3])
        assert isinstance(canonicalize(c), ArrayContainer)

    def test_canonicalize_promotes_large_array(self):
        c = _array(range(ARRAY_MAX_SIZE + 5))
        assert isinstance(canonicalize(c), BitmapContainer)

    def test_run_optimize_picks_run_for_ranges(self):
        c = _array(range(1000))
        assert isinstance(run_optimize(c), RunContainer)

    def test_run_optimize_picks_array_for_scattered(self):
        c = _array(range(0, 1000, 7))
        assert isinstance(run_optimize(c), ArrayContainer)

    def test_run_optimize_preserves_values(self):
        values = sorted({1, 2, 3, 9, 10, 500})
        for maker in MAKERS.values():
            optimized = run_optimize(maker(values))
            assert sorted(container_values(optimized).tolist()) == values


class TestBinaryOps:
    @given(low_sets(), low_sets())
    def test_ops_match_set_semantics(self, a, b):
        for kind_a, make_a in MAKERS.items():
            for kind_b, make_b in MAKERS.items():
                ca, cb = make_a(a), make_b(b)
                label = f"{kind_a}x{kind_b}"
                assert set(container_values(container_and(ca, cb)).tolist()) == (
                    a & b
                ), label
                assert set(container_values(container_or(ca, cb)).tolist()) == (
                    a | b
                ), label
                assert set(container_values(container_andnot(ca, cb)).tolist()) == (
                    a - b
                ), label
                assert set(container_values(container_xor(ca, cb)).tolist()) == (
                    a ^ b
                ), label
                assert container_and_cardinality(ca, cb) == len(a & b), label

    def test_large_dense_ops_promote(self):
        a = set(range(0, 20_000))
        b = set(range(10_000, 30_000))
        ca, cb = _array(a), _array(b)
        # canonicalize promotes these before ops in RoaringBitmap; here we
        # exercise the bitmap x bitmap paths directly.
        ca, cb = canonicalize(ca), canonicalize(cb)
        assert isinstance(ca, BitmapContainer)
        union = container_or(ca, cb)
        assert union.cardinality == len(a | b)
        inter = container_and(ca, cb)
        assert inter.cardinality == len(a & b)
