"""Tests for repro.core.index: inverted indexing and ranked retrieval."""

import pytest

from repro.core.baseline import GeohashIndex
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex, SearchResult
from repro.geo.point import Point, destination
from repro.normalize import GridNormalizer

LONDON = Point(51.5074, -0.1278)
CONFIG = GeodabConfig(k=3, t=5)


def walk_points(n, step_m=90.0, bearing=45.0, start=LONDON):
    out = [start]
    for _ in range(n - 1):
        out.append(destination(out[-1], bearing, step_m))
    return out


@pytest.fixture()
def index():
    idx = GeodabIndex(CONFIG)
    idx.add("east", walk_points(30, bearing=90.0))
    idx.add("west", list(reversed(walk_points(30, bearing=90.0))))
    idx.add("north", walk_points(30, bearing=0.0))
    return idx


class TestIndexing:
    def test_len_and_contains(self, index):
        assert len(index) == 3
        assert "east" in index
        assert "missing" not in index

    def test_duplicate_id_rejected(self, index):
        with pytest.raises(KeyError):
            index.add("east", walk_points(10))

    def test_add_many(self):
        idx = GeodabIndex(CONFIG)
        idx.add_many(
            [("a", walk_points(20)), ("b", walk_points(20, bearing=135.0))]
        )
        assert len(idx) == 2

    def test_stats(self, index):
        stats = index.stats()
        assert stats.trajectories == 3
        assert stats.terms > 0
        assert stats.postings >= stats.terms
        assert stats.mean_postings_length >= 1.0

    def test_remove(self, index):
        index.remove("east")
        assert len(index) == 2
        assert "east" not in index
        results = index.query(walk_points(30, bearing=90.0))
        assert all(r.trajectory_id != "east" for r in results)

    def test_remove_recycles_internal_slots(self, index):
        # A long-running service deletes and re-ingests constantly; the
        # index must stay at constant memory, not grow a tombstone per
        # update cycle.
        baseline = len(index._ids)
        for _ in range(5):
            index.remove("east")
            index.add("east", walk_points(30, bearing=90.0))
        assert len(index._ids) == baseline
        results = index.query(walk_points(30, bearing=90.0))
        assert results and results[0].trajectory_id == "east"

    def test_remove_missing_raises(self, index):
        with pytest.raises(KeyError):
            index.remove("missing")

    def test_fingerprint_set_access(self, index):
        fs = index.fingerprint_set("east")
        assert len(fs) > 0

    def test_store_points(self):
        idx = GeodabIndex(CONFIG, store_points=True)
        points = walk_points(10)
        idx.add("a", points)
        assert idx.points_of("a") == points

    def test_points_of_requires_flag(self, index):
        with pytest.raises(RuntimeError):
            index.points_of("east")


class TestQuerying:
    def test_exact_match_is_top_with_zero_distance(self, index):
        results = index.query(walk_points(30, bearing=90.0))
        assert results[0].trajectory_id == "east"
        assert results[0].distance == pytest.approx(0.0)
        assert results[0].jaccard == pytest.approx(1.0)

    def test_reverse_is_not_a_candidate(self, index):
        # Direction discrimination: the reversed trajectory shares no
        # geodab with the query, so it is not even retrieved.
        results = index.query(walk_points(30, bearing=90.0))
        ids = [r.trajectory_id for r in results]
        assert "west" not in ids

    def test_results_sorted_by_distance(self, index):
        results = index.query(walk_points(30, bearing=90.0))
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_limit(self, index):
        results = index.query(walk_points(30, bearing=90.0), limit=1)
        assert len(results) == 1

    def test_max_distance_filter(self, index):
        all_results = index.query(walk_points(30, bearing=90.0))
        strict = index.query(walk_points(30, bearing=90.0), max_distance=0.0)
        assert len(strict) <= len(all_results)
        assert all(r.distance == 0.0 for r in strict)

    def test_no_match_returns_empty(self, index):
        far = walk_points(30, start=Point(40.0, 2.0))
        assert index.query(far) == []

    def test_query_with_stats(self, index):
        results, stats = index.query_with_stats(walk_points(30, bearing=90.0))
        assert stats.query_terms > 0
        assert stats.candidates >= len(results)
        assert stats.returned == len(results)

    def test_stats_scored_counts_kept_results_not_candidates(self):
        # Regression: ``scored`` used to report the raw candidate count
        # even when max_distance filtered candidates out, inflating
        # Figure-14-style work accounting.
        idx = GeodabIndex(CONFIG)
        points = walk_points(30)
        # "forked" shares the first half of the walk then diverges: it
        # is a candidate (shared terms) but at a nonzero distance.
        forked = walk_points(15) + [
            destination(walk_points(15)[-1], 0.0, 90.0 * (i + 1))
            for i in range(15)
        ]
        idx.add("same", points)
        idx.add("forked", forked)
        _, loose = idx.query_with_stats(points, max_distance=1.0)
        assert loose.candidates == 2
        assert loose.scored == loose.candidates  # nothing filtered
        results, strict = idx.query_with_stats(points, max_distance=0.0)
        assert strict.candidates == 2
        assert strict.scored == len(results) == 1
        assert strict.scored < strict.candidates

    def test_stats_scored_unaffected_by_limit(self, index):
        _, unlimited = index.query_with_stats(walk_points(30, bearing=90.0))
        limited_results, limited = index.query_with_stats(
            walk_points(30, bearing=90.0), limit=1
        )
        assert limited.scored == unlimited.scored
        assert limited.returned == len(limited_results) == 1

    def test_query_terms_reuses_extracted_fingerprints(self, index):
        fs = index.fingerprint_query(walk_points(30, bearing=90.0))
        terms = sorted(set(fs.values))
        direct, direct_stats = index.query_with_stats(
            walk_points(30, bearing=90.0)
        )
        via_terms, term_stats = index.query_terms(terms, fs.bitmap)
        assert via_terms == direct
        assert term_stats == direct_stats

    def test_candidates(self, index):
        candidates = index.candidates(walk_points(30, bearing=90.0))
        assert "east" in candidates
        assert "west" not in candidates

    def test_normalizer_applied_to_both_sides(self):
        norm = GridNormalizer(36)
        idx = GeodabIndex(CONFIG, normalizer=norm)
        points = walk_points(30)
        idx.add("a", points)
        # Jittered query (sub-cell): normalization folds it to the same
        # cell sequence, so the match is exact.
        jittered = [destination(p, 10.0, 3.0) for p in points]
        results = idx.query(jittered)
        assert results and results[0].trajectory_id == "a"

    def test_deterministic_tie_break(self):
        idx = GeodabIndex(CONFIG)
        points = walk_points(25)
        idx.add("b", points)
        idx.add("a", points)
        results = idx.query(points)
        assert [r.trajectory_id for r in results] == ["a", "b"]

    def test_fingerprint_query_helper(self, index):
        fs = index.fingerprint_query(walk_points(30, bearing=90.0))
        assert len(fs) > 0


class TestSearchResult:
    def test_jaccard_complement(self):
        r = SearchResult("x", 0.25, 3)
        assert r.jaccard == pytest.approx(0.75)


class TestGeohashBaseline:
    def test_reverse_is_indistinguishable(self):
        # The baseline's defining failure (Figures 12-13): a trajectory
        # and its reverse have identical cell sets.
        idx = GeohashIndex(depth=36)
        points = walk_points(30, bearing=90.0)
        idx.add("fwd", points)
        idx.add("rev", list(reversed(points)))
        results = idx.query(points)
        assert len(results) == 2
        assert results[0].distance == pytest.approx(results[1].distance)

    def test_exact_match_zero_distance(self):
        idx = GeohashIndex(depth=36)
        points = walk_points(20)
        idx.add("a", points)
        assert idx.query(points)[0].distance == pytest.approx(0.0)

    def test_depth_controls_discrimination(self):
        # At a very coarse depth everything collapses into few cells.
        coarse = GeohashIndex(depth=8)
        fine = GeohashIndex(depth=36)
        a = walk_points(20, bearing=90.0)
        b = walk_points(20, bearing=0.0)
        for idx in (coarse, fine):
            idx.add("a", a)
            idx.add("b", b)
        coarse_results = coarse.query(a)
        fine_results = fine.query(a)
        coarse_b = [r for r in coarse_results if r.trajectory_id == "b"]
        fine_b = [r for r in fine_results if r.trajectory_id == "b"]
        if coarse_b and fine_b:
            assert coarse_b[0].distance <= fine_b[0].distance

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            GeohashIndex(depth=0)

    def test_narrow_depth_uses_32_bit_bitmaps(self):
        idx = GeohashIndex(depth=30)
        idx.add("a", walk_points(10))
        from repro.bitmap.roaring import RoaringBitmap

        assert isinstance(idx.term_set("a"), RoaringBitmap)

    def test_wide_depth_uses_64_bit_bitmaps(self):
        idx = GeohashIndex(depth=36)
        idx.add("a", walk_points(10))
        from repro.bitmap.roaring import Roaring64Map

        assert isinstance(idx.term_set("a"), Roaring64Map)


class TestTombstoneConsistency:
    """Dead slots reachable through stale hit streams must never rank.

    ``remove()`` normally purges postings, but the serving tier's
    concurrent readers (and any crash between the postings purge and the
    arena release) can observe a hit stream that still references a
    tombstoned slot.  Simulate that worst case by releasing the arena
    slot directly, leaving the postings stale.
    """

    def _stale_index(self):
        idx = GeodabIndex(CONFIG)
        east = walk_points(30, bearing=90.0)
        idx.add("east", east)
        idx.add("easter", [destination(p, 0.0, 10.0) for p in east])
        internal = idx._id_to_internal["easter"]
        # Tombstone the slot without touching postings: the stale hit
        # stream now references a dead slot with an empty bitmap.
        idx._arena.release(
            "easter", type(idx._term_sets[internal])(), None
        )
        return idx, east

    def test_direct_query_skips_tombstoned_slot(self):
        idx, east = self._stale_index()
        results, stats = idx.query_with_stats(east)
        ids = [r.trajectory_id for r in results]
        assert "east" in ids
        assert all(isinstance(i, str) for i in ids)  # no sentinel leaked
        # Work accounting counts live candidates only.
        assert stats.candidates == 1

    def test_prepared_query_skips_tombstoned_slot(self):
        idx, east = self._stale_index()
        prepared = idx.prepare_query(east)
        results, fanout = idx.query_prepared(prepared)
        ids = [r.trajectory_id for r in results]
        assert "east" in ids
        assert all(isinstance(i, str) for i in ids)
        assert fanout.candidates == 1

    def test_direct_and_prepared_agree_after_remove(self):
        # The ordinary remove-then-query path: both query surfaces
        # return identical results and identical live-candidate counts.
        idx = GeodabIndex(CONFIG)
        east = walk_points(30, bearing=90.0)
        idx.add("east", east)
        idx.add("easter", [destination(p, 0.0, 10.0) for p in east])
        idx.remove("easter")
        direct, direct_stats = idx.query_with_stats(east)
        prepared, fanout = idx.query_prepared(idx.prepare_query(east))
        assert [r.trajectory_id for r in direct] == [
            r.trajectory_id for r in prepared
        ]
        assert all(r.trajectory_id != "easter" for r in direct)
        assert direct_stats.candidates == fanout.candidates == 1

    def test_candidates_excludes_tombstoned_slot(self):
        idx, east = self._stale_index()
        assert idx.candidates(east) == {"east"}
