"""Cross-cutting property-based tests over the whole pipeline.

These tie together invariants that individual module tests cannot see:
self-retrieval, sharded/single-node equivalence, persistence round-trips,
and the public API surface.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.core.persistence import load_index, save_index
from repro.geo.point import Point, destination

CONFIG = GeodabConfig(k=3, t=6)


@st.composite
def random_walks(draw, min_len=5, max_len=40):
    """A deterministic random-walk trajectory strategy."""
    n = draw(st.integers(min_value=min_len, max_value=max_len))
    lat = draw(st.floats(min_value=51.3, max_value=51.7, allow_nan=False))
    lon = draw(st.floats(min_value=-0.3, max_value=0.1, allow_nan=False))
    bearings = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=360.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    steps = draw(
        st.lists(
            st.floats(min_value=20.0, max_value=300.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    points = [Point(lat, lon)]
    for bearing, step in zip(bearings, steps):
        points.append(destination(points[-1], bearing, step))
    return points


class TestSelfRetrieval:
    @given(random_walks())
    @settings(max_examples=30)
    def test_indexed_trajectory_retrieves_itself_first(self, points):
        index = GeodabIndex(CONFIG)
        index.add("self", points)
        if len(index.fingerprint_set("self")) == 0:
            # Below the noise threshold: legitimately unfindable.
            assert index.query(points) == []
            return
        results = index.query(points)
        assert results[0].trajectory_id == "self"
        assert results[0].distance == pytest.approx(0.0)

    @given(random_walks(), random_walks())
    @settings(max_examples=20)
    def test_ranking_is_a_permutation_of_candidates(self, a, b):
        index = GeodabIndex(CONFIG)
        index.add("a", a)
        index.add("b", b)
        results = index.query(a)
        ids = [r.trajectory_id for r in results]
        assert len(ids) == len(set(ids))
        assert set(ids) <= {"a", "b"}


class TestShardedEquivalence:
    @given(
        st.lists(random_walks(), min_size=1, max_size=6),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=15)
    def test_sharded_equals_single_node(self, walks, num_shards, num_nodes):
        if num_shards < num_nodes:
            num_shards = num_nodes
        single = GeodabIndex(CONFIG)
        sharded = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=num_shards, num_nodes=num_nodes)
        )
        for i, walk in enumerate(walks):
            single.add(f"t{i}", walk)
            sharded.add(f"t{i}", walk)
        for walk in walks:
            expected = [
                (r.trajectory_id, round(r.distance, 12))
                for r in single.query(walk)
            ]
            actual = [
                (r.trajectory_id, round(r.distance, 12))
                for r in sharded.query(walk)
            ]
            assert actual == expected


class TestPersistenceRoundTrip:
    @given(st.lists(random_walks(), min_size=1, max_size=5))
    @settings(max_examples=15)
    def test_v1_round_trip_preserves_rankings(self, walks):
        import tempfile
        from pathlib import Path

        index = GeodabIndex(CONFIG)
        for i, walk in enumerate(walks):
            index.add(f"t{i}", walk)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "index.json"
            save_index(index, path, version=1)
            loaded = load_index(path)
            for walk in walks:
                assert [r.trajectory_id for r in loaded.query(walk)] == [
                    r.trajectory_id for r in index.query(walk)
                ]

    @given(st.lists(random_walks(), min_size=1, max_size=5))
    @settings(max_examples=15)
    def test_v2_round_trip_preserves_rankings(self, walks):
        import tempfile
        from pathlib import Path

        index = GeodabIndex(CONFIG)
        for i, walk in enumerate(walks):
            index.add(f"t{i}", walk)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "snapshot"
            save_index(index, path)
            loaded = load_index(path, mmap_mode="r")
            for walk in walks:
                assert [
                    (r.trajectory_id, round(r.distance, 12))
                    for r in loaded.query(walk)
                ] == [
                    (r.trajectory_id, round(r.distance, 12))
                    for r in index.query(walk)
                ]

    @given(st.lists(random_walks(), min_size=2, max_size=5), st.data())
    @settings(max_examples=15)
    def test_v2_round_trip_after_remove_and_readd(self, walks, data):
        """Recycled arena slots must survive the columnar snapshot."""
        import tempfile
        from pathlib import Path

        index = GeodabIndex(CONFIG)
        for i, walk in enumerate(walks):
            index.add(f"t{i}", walk)
        victim = data.draw(
            st.integers(min_value=0, max_value=len(walks) - 1), label="victim"
        )
        index.remove(f"t{victim}")
        index.add(f"t{victim}x", walks[victim])  # reuses the freed slot
        readd = data.draw(st.booleans(), label="leave tombstone")
        if readd:
            other = data.draw(
                st.integers(min_value=0, max_value=len(walks) - 1),
                label="tombstoned",
            )
            if f"t{other}" in index:
                index.remove(f"t{other}")  # persisted as a live tombstone
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "snapshot"
            save_index(index, path)
            loaded = load_index(path, mmap_mode="r")
            assert len(loaded) == len(index)
            for walk in walks:
                assert [
                    (r.trajectory_id, round(r.distance, 12))
                    for r in loaded.query(walk)
                ] == [
                    (r.trajectory_id, round(r.distance, 12))
                    for r in index.query(walk)
                ]

    @given(
        st.lists(random_walks(), min_size=1, max_size=5),
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=10)
    def test_v2_sharded_round_trip_matches_live_index(
        self, walks, num_shards, num_nodes
    ):
        """A sharded index loaded with mmap answers query and
        query_prepared identically to the live index."""
        import tempfile
        from pathlib import Path

        if num_shards < num_nodes:
            num_shards = num_nodes
        sharded = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=num_shards, num_nodes=num_nodes)
        )
        for i, walk in enumerate(walks):
            sharded.add(f"t{i}", walk)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "snapshot"
            save_index(sharded, path)
            loaded = load_index(path, mmap_mode="r")
            assert loaded.sharding == sharded.sharding
            for walk in walks:
                expected, expected_stats = sharded.query_with_stats(walk)
                actual, actual_stats = loaded.query_with_stats(walk)
                assert [
                    (r.trajectory_id, round(r.distance, 12)) for r in actual
                ] == [
                    (r.trajectory_id, round(r.distance, 12)) for r in expected
                ]
                assert actual_stats.candidates == expected_stats.candidates
                prepared_live = sharded.prepare_query(walk)
                prepared_loaded = loaded.prepare_query(walk)
                assert prepared_loaded.plan == prepared_live.plan
                live_ranked, _ = sharded.query_prepared(prepared_live)
                loaded_ranked, _ = loaded.query_prepared(prepared_loaded)
                assert [r.trajectory_id for r in loaded_ranked] == [
                    r.trajectory_id for r in live_ranked
                ]


class TestPublicApi:
    def test_top_level_exports_exist(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_exist(self):
        import importlib

        for module_name in (
            "repro.geo",
            "repro.hashing",
            "repro.bitmap",
            "repro.distance",
            "repro.core",
            "repro.baselines",
            "repro.spatial",
            "repro.roadnet",
            "repro.mapmatch",
            "repro.normalize",
            "repro.workload",
            "repro.cluster",
            "repro.ir",
            "repro.bench",
            "repro.tuning",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        import repro

        assert repro.__version__
