"""Tests for repro.core.planner: bounded candidate collection.

The planner's contract is *answer preservation*: ``plan="auto"`` must
return bit-identical results (same ids, same distances, same order) to
the exhaustive path on every backend — single-node, sharded, and the
executor over both the thread and worker-process transports — through
removals/tombstones and snapshot warm starts.  On a skewed corpus it
must also demonstrably skip work (that is the point of the PR), which
the fixed skew-corpus tests pin.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.fingerprint import FingerprintSet
from repro.core.index import GeodabIndex
from repro.core.persistence import load_index, publish_snapshot, save_index
from repro.core.planner import (
    EMPTY_PLAN,
    StoreSource,
    complete_counts,
    plannable,
    unseen_lower_bound,
)
from repro.core.postings import PostingsStore
from repro.core.query import QuerySpec
from repro.core.winnowing import Selection
from repro.geo.point import Point
from repro.service import IndexService
from repro.service.executor import QueryExecutor
from repro.service.transport import InProcessTransport, WorkerProcessTransport

CONFIG = GeodabConfig(k=3, t=5)
SHARDING = ShardingConfig(num_shards=4, num_nodes=2, placement="hash")


def fpset(terms):
    """A FingerprintSet over explicit term values (synthetic corpora)."""
    distinct = sorted(set(terms))
    return FingerprintSet.from_selections(
        [Selection(term, i) for i, term in enumerate(distinct)], wide=False
    )


def skew_corpus(docs=300, dups=6):
    """Zipf-shaped synthetic corpus: 5 common terms in every doc, 10
    disjoint rare terms per doc, plus near-duplicates sharing doc 0's
    rare terms so the top-k bound tightens before the common terms'
    postings are opened."""
    common = list(range(5))
    batch = []
    for doc in range(docs):
        rare = list(range(100 + doc * 10, 100 + doc * 10 + 10))
        batch.append((f"t{doc}", common + rare))
    for j in range(dups):
        batch.append((f"dup{j}", common + list(range(100, 110))))
    query = common + list(range(100, 110))
    return batch, query


def build_single(batch):
    index = GeodabIndex()
    name = index.variant_names[0]
    index.add_fingerprints_many(
        [(tid, {name: fpset(terms)}, None) for tid, terms in batch]
    )
    return index


def ranking(results):
    return [(r.trajectory_id, r.distance, r.shared_terms) for r in results]


class TestPrimitives:
    def test_plannable(self):
        assert plannable(10, 1.0)
        assert plannable(None, 0.5)
        assert plannable(1, 0.0)
        assert not plannable(None, 1.0)

    def test_unseen_lower_bound_is_true_bound(self):
        # The bound must never exceed the best distance any unseen
        # candidate could still achieve: 1 - r/|Q| for a candidate
        # matching all r remaining terms with |T| = r.
        for query_size in (1, 3, 7, 64):
            for remaining in range(query_size + 1):
                lb = unseen_lower_bound(remaining, query_size)
                best = 1.0 - remaining / query_size
                assert lb <= best + 1e-12
                assert 0.0 <= lb <= 1.0

    def test_unseen_lower_bound_monotone_in_remaining(self):
        bounds = [unseen_lower_bound(r, 16) for r in range(17)]
        assert bounds == sorted(bounds, reverse=True)

    def test_empty_plan_reports_no_work(self):
        assert EMPTY_PLAN.terms_skipped == 0
        assert EMPTY_PLAN.postings_skipped == 0
        assert EMPTY_PLAN.postings_bytes_avoided == 0
        assert EMPTY_PLAN.collection_cut is False


class TestDfAccessors:
    def test_term_count_matches_postings_without_folding(self):
        store = PostingsStore()
        store.extend(7, [1, 2, 3])
        store.compact_all()
        store.extend(7, [4, 5])  # buffered, unfolded
        store.extend(9, [1])
        assert store.term_count(7) == 5
        assert store.term_count(9) == 1
        assert store.term_count(12345) == 0
        # df reads must not have folded the append buffers.
        assert store.buffered_postings == 3

    def test_term_counts_bulk_matches_scalar(self):
        store = PostingsStore()
        store.extend(1, [10, 11])
        store.extend(2, [10])
        store.compact_all()
        store.extend(2, [12, 13, 14])
        terms = [0, 1, 2, 3]
        bulk = store.term_counts(terms)
        assert bulk.dtype == np.int64
        assert bulk.tolist() == [store.term_count(t) for t in terms]
        assert store.buffered_postings == 3

    def test_complete_counts_matches_brute_force(self):
        store = PostingsStore()
        rng = np.random.default_rng(42)
        for term in range(20):
            members = rng.choice(100, size=rng.integers(1, 40), replace=False)
            store.extend(int(term), [int(m) for m in members])
        candidates = np.array(sorted(rng.choice(100, 30, replace=False)))
        terms = list(range(0, 20, 3)) + [999]
        delta, skipped = complete_counts(
            store, terms, np.ascontiguousarray(candidates, dtype=np.int64)
        )
        expected = np.zeros(len(candidates), dtype=np.int64)
        total_postings = 0
        for term in terms:
            postings = store.get(term)
            if postings is None:
                continue
            total_postings += len(postings)
            expected += np.isin(candidates, postings)
        assert delta.tolist() == expected.tolist()
        assert skipped == total_postings - int(expected.sum())


class TestSingleNodeIdentity:
    @given(
        data=st.data(),
        limit=st.one_of(st.none(), st.integers(min_value=1, max_value=12)),
        max_distance=st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_planned_equals_exhaustive(self, data, limit, max_distance):
        docs = data.draw(st.integers(min_value=0, max_value=25))
        universe = st.integers(min_value=0, max_value=120)
        batch = []
        for doc in range(docs):
            terms = data.draw(
                st.lists(universe, min_size=1, max_size=25, unique=True)
            )
            batch.append((f"t{doc}", terms))
        query = data.draw(
            st.lists(universe, min_size=1, max_size=25, unique=True)
        )
        index = build_single(batch)
        q = fpset(query)
        planned, _ = index.query_terms(
            q.values, q.bitmap, limit, max_distance, plan="auto"
        )
        exhaustive, _ = index.query_terms(
            q.values, q.bitmap, limit, max_distance, plan="off"
        )
        assert ranking(planned) == ranking(exhaustive)

    def test_planned_equals_exhaustive_through_removals(self):
        batch, query = skew_corpus(docs=120)
        index = build_single(batch)
        for tid in ("t0", "t50", "dup2"):
            index.remove(tid)
        q = fpset(query)
        planned, stats = index.query_terms(q.values, q.bitmap, 5, plan="auto")
        exhaustive, _ = index.query_terms(q.values, q.bitmap, 5, plan="off")
        assert ranking(planned) == ranking(exhaustive)
        assert all(r.trajectory_id not in ("t0", "t50", "dup2") for r in planned)

    def test_skew_corpus_skips_real_work(self):
        batch, query = skew_corpus()
        index = build_single(batch)
        q = fpset(query)
        results, stats = index.query_terms(q.values, q.bitmap, 5, plan="auto")
        assert stats.collection_cut
        assert stats.terms_skipped > 0
        assert stats.postings_skipped > 0
        assert stats.postings_bytes_avoided >= 8 * stats.postings_skipped
        exhaustive, off_stats = index.query_terms(
            q.values, q.bitmap, 5, plan="off"
        )
        assert ranking(results) == ranking(exhaustive)
        assert off_stats.postings_skipped == 0
        assert not off_stats.collection_cut

    def test_unplannable_spec_never_plans(self):
        batch, query = skew_corpus(docs=60)
        index = build_single(batch)
        q = fpset(query)
        # No limit and no distance cap: nothing to feed the threshold.
        _, stats = index.query_terms(q.values, q.bitmap, None, 1.0, plan="auto")
        assert not stats.collection_cut
        assert stats.postings_skipped == 0


def _dataset_corpus(small_dataset):
    return [(r.trajectory_id, r.points) for r in small_dataset.records]


class TestShardedIdentity:
    @pytest.fixture(scope="class")
    def sharded(self, small_dataset):
        index = ShardedGeodabIndex(CONFIG, SHARDING)
        index.add_many(_dataset_corpus(small_dataset))
        return index

    def _compare(self, index, points, limit=10):
        prepared = index.prepare_query(points)
        planned, pstats = index.query_prepared(
            prepared, spec=QuerySpec(limit=limit, plan="auto")
        )
        exhaustive, _ = index.query_prepared(
            prepared, spec=QuerySpec(limit=limit, plan="off")
        )
        assert ranking(planned) == ranking(exhaustive)
        return pstats

    def test_dataset_queries_identical(self, sharded, small_dataset):
        for query in small_dataset.queries:
            self._compare(sharded, query.points)

    def test_identity_through_removals(self, small_dataset):
        index = ShardedGeodabIndex(CONFIG, SHARDING)
        corpus = _dataset_corpus(small_dataset)
        index.add_many(corpus)
        for position, (tid, _) in enumerate(corpus):
            if position % 3 == 0:
                index.remove(tid)
        for query in small_dataset.queries:
            self._compare(index, query.points)


class TestExecutorTransports:
    def test_thread_transport_identity(self, small_dataset):
        index = ShardedGeodabIndex(CONFIG, SHARDING)
        index.add_many(_dataset_corpus(small_dataset))
        with QueryExecutor(
            index, pool_size=4, transport=InProcessTransport(index)
        ) as executor:
            for query in small_dataset.queries:
                prepared = index.prepare_query(query.points)
                planned, stats = executor.execute_prepared(
                    prepared, spec=QuerySpec(limit=10, plan="auto")
                )
                exhaustive, _ = executor.execute_prepared(
                    prepared, spec=QuerySpec(limit=10, plan="off")
                )
                assert ranking(planned) == ranking(exhaustive)

    def test_process_transport_identity(self, small_dataset, tmp_path):
        index = ShardedGeodabIndex(CONFIG, SHARDING)
        index.add_many(_dataset_corpus(small_dataset))
        snapshot = publish_snapshot(index, tmp_path, tag="planner")
        with QueryExecutor(
            index,
            pool_size=4,
            transport=WorkerProcessTransport(snapshot, num_workers=2),
        ) as executor:
            for query in small_dataset.queries[:4]:
                prepared = index.prepare_query(query.points)
                planned, stats = executor.execute_prepared(
                    prepared, spec=QuerySpec(limit=10, plan="auto")
                )
                exhaustive, _ = executor.execute_prepared(
                    prepared, spec=QuerySpec(limit=10, plan="off")
                )
                assert ranking(planned) == ranking(exhaustive)

    def test_transport_without_planner_ops_falls_back(self, small_dataset):
        # A duck-typed transport predating shard_term_counts/shard_counts
        # must keep answering exhaustively, not crash the planned branch.
        index = ShardedGeodabIndex(CONFIG, SHARDING)
        index.add_many(_dataset_corpus(small_dataset))
        inner = InProcessTransport(index)

        class LegacyTransport:
            kind = "legacy"

            def shard_partial(self, *args, **kwargs):
                return inner.shard_partial(*args, **kwargs)

            def shard_postings(self, *args, **kwargs):
                return inner.shard_postings(*args, **kwargs)

            def stats(self):
                return {"kind": self.kind}

            def maintain(self):
                return {}

            def close(self):
                return None

        with QueryExecutor(
            index, pool_size=2, transport=LegacyTransport()
        ) as executor:
            prepared = index.prepare_query(small_dataset.queries[0].points)
            planned, stats = executor.execute_prepared(
                prepared, spec=QuerySpec(limit=10, plan="auto")
            )
            exhaustive, _ = executor.execute_prepared(
                prepared, spec=QuerySpec(limit=10, plan="off")
            )
            assert ranking(planned) == ranking(exhaustive)
            assert stats.postings_skipped == 0
            assert not stats.collection_cut


class TestSnapshotWarmStart:
    def test_identity_after_save_load(self, tmp_path):
        batch, query = skew_corpus(docs=80)
        index = build_single(batch)
        save_index(index, tmp_path / "snap")
        warm = load_index(tmp_path / "snap")
        q = fpset(query)
        planned, stats = warm.query_terms(q.values, q.bitmap, 5, plan="auto")
        exhaustive, _ = warm.query_terms(q.values, q.bitmap, 5, plan="off")
        assert ranking(planned) == ranking(exhaustive)
        assert stats.collection_cut
        assert stats.postings_skipped > 0


class TestServiceSurface:
    @pytest.fixture()
    def service(self):
        batch, query = skew_corpus(docs=200)
        index = build_single(batch)
        service = IndexService(index)
        # Bypass geometric fingerprinting: the synthetic corpus is term-
        # shaped, so the service path is driven with a fixed fingerprint.
        q = fpset(query)
        index.fingerprint_query = lambda points, variant: q
        yield service
        service.close()

    POINTS = [Point(0.0, 0.0), Point(0.1, 0.1), Point(0.2, 0.2)]

    def test_response_reports_planner_quartet(self, service):
        response = service.query(
            self.POINTS, spec=QuerySpec(limit=5, mode="approx")
        )
        payload = response.as_dict()
        assert payload["planner"]["collection_cut"] is True
        assert payload["planner"]["terms_skipped"] > 0
        assert payload["planner"]["postings_skipped"] > 0
        assert payload["planner"]["postings_bytes_avoided"] > 0

    def test_plan_off_reports_zero_quartet(self, service):
        response = service.query(
            self.POINTS, spec=QuerySpec(limit=5, mode="approx", plan="off")
        )
        assert response.as_dict()["planner"] == {
            "terms_skipped": 0,
            "postings_skipped": 0,
            "postings_bytes_avoided": 0,
            "collection_cut": False,
        }

    def test_cached_hit_reports_zero_quartet(self, service):
        spec = QuerySpec(limit=5, mode="approx")
        first = service.query(self.POINTS, spec=spec)
        second = service.query(self.POINTS, spec=spec)
        assert second.cached
        assert not first.cached
        assert second.postings_skipped == 0
        assert not second.collection_cut
        # The cached results themselves are the planned (identical) ones.
        assert ranking(second.results) == ranking(first.results)

    def test_metrics_expose_planner_counters(self, service):
        service.query(self.POINTS, spec=QuerySpec(limit=5, mode="approx"))
        planner = service.stats()["metrics"]["planner"]
        assert planner["collection_cuts"] >= 1
        assert planner["postings_skipped"] > 0
        text = service.metrics_text()
        lines = {
            line.split(" ")[0]: line.split(" ")[-1]
            for line in text.splitlines()
            if line and not line.startswith("#")
        }
        assert int(lines["geodabs_planner_postings_skipped_total"]) > 0
        assert int(lines["geodabs_planner_collection_cuts_total"]) >= 1
        assert "geodabs_planner_terms_skipped_total" in lines
        assert "geodabs_planner_postings_bytes_avoided_total" in lines

    def test_plan_field_round_trips_json(self):
        spec = QuerySpec.from_json({"limit": 3, "plan": "off"})
        assert spec.plan == "off"
        assert QuerySpec(limit=3).plan == "auto"
        assert QuerySpec.from_json(QuerySpec(limit=3, plan="off").to_json()).plan == "off"
        with pytest.raises(ValueError):
            QuerySpec(plan="sometimes")
