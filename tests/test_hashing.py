"""Tests for repro.hashing: stable hashes, rolling hashes, window minima."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.rolling import (
    MinQueue,
    PolynomialRollingHash,
    direct_window_hash,
    rolling_hashes,
    windowed_minima,
)
from repro.hashing.stable import (
    fnv1a_32,
    fnv1a_64,
    hash_bytes,
    hash_int_sequence_32,
    hash_int_sequence_64,
    mix32,
    mix64,
    splitmix64,
    truncate_hash,
)


class TestStableHashes:
    def test_fnv1a_32_known_vectors(self):
        # Published FNV-1a test vectors.
        assert fnv1a_32(b"") == 0x811C9DC5
        assert fnv1a_32(b"a") == 0xE40C292C
        assert fnv1a_32(b"foobar") == 0xBF9CF968

    def test_fnv1a_64_known_vectors(self):
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C
        assert fnv1a_64(b"foobar") == 0x85944171F73967E8

    def test_splitmix64_known_sequence(self):
        # First outputs of splitmix64 seeded with 0 feed-forward.
        assert splitmix64(0) == 0xE220A8397B1DCDAF

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_mix64_stays_in_64_bits(self, x):
        assert 0 <= mix64(x) < 2**64

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_mix32_stays_in_32_bits(self, x):
        assert 0 <= mix32(x) < 2**32

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_mix64_bijective_sample(self, x):
        # Distinct inputs give distinct outputs for a sample pair.
        if x > 0:
            assert mix64(x) != mix64(x - 1)

    def test_hash_bytes_width(self):
        for bits in (1, 8, 16, 32, 63, 64):
            assert 0 <= hash_bytes(b"payload", bits) < (1 << bits)

    def test_hash_bytes_invalid_width(self):
        with pytest.raises(ValueError):
            hash_bytes(b"x", 0)
        with pytest.raises(ValueError):
            hash_bytes(b"x", 65)

    def test_hash_bytes_seed_changes_value(self):
        assert hash_bytes(b"x", 64, seed=1) != hash_bytes(b"x", 64, seed=2)

    def test_truncate_hash(self):
        assert truncate_hash(0xFFFF_FFFF_FFFF_FFFF, 8) == 0xFF
        with pytest.raises(ValueError):
            truncate_hash(1, 0)


class TestSequenceHash:
    def test_deterministic(self):
        assert hash_int_sequence_64([1, 2, 3]) == hash_int_sequence_64([1, 2, 3])

    def test_order_sensitive(self):
        assert hash_int_sequence_64([1, 2, 3]) != hash_int_sequence_64([3, 2, 1])

    def test_reverse_differs(self):
        # The geodab property: a path and its reverse get different hashes.
        cells = [10, 20, 30, 40, 50, 60]
        assert hash_int_sequence_64(cells) != hash_int_sequence_64(cells[::-1])

    def test_seed_changes_value(self):
        assert hash_int_sequence_64([1], seed=0) != hash_int_sequence_64([1], seed=1)

    def test_32_bit_is_truncation_domain(self):
        assert 0 <= hash_int_sequence_32([5, 6, 7]) < 2**32

    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=12))
    def test_extension_changes_hash(self, values):
        # Appending an element must change the hash (prefix-freeness in
        # practice for a mixing accumulator).
        assert hash_int_sequence_64(values) != hash_int_sequence_64(values + [0])

    def test_empty_sequence_is_seed_dependent_constant(self):
        assert hash_int_sequence_64([]) == hash_int_sequence_64([])


class TestRollingHash:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    def test_matches_direct_computation(self, values, window):
        rolled = list(rolling_hashes(values, window))
        expected = [
            direct_window_hash(values[i : i + window])
            for i in range(len(values) - window + 1)
        ]
        assert rolled == expected

    def test_short_sequence_yields_nothing(self):
        assert list(rolling_hashes([1, 2], 3)) == []

    def test_push_protocol(self):
        roller = PolynomialRollingHash(window=2)
        assert roller.push(1) is None
        assert not roller.full
        first = roller.push(2)
        assert first is not None
        assert roller.full
        second = roller.push(3)
        assert second == direct_window_hash([2, 3])

    def test_reset(self):
        roller = PolynomialRollingHash(window=2)
        roller.push(1)
        roller.push(2)
        roller.reset()
        assert not roller.full
        assert roller.push(9) is None

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            PolynomialRollingHash(0)

    def test_even_base_rejected(self):
        with pytest.raises(ValueError):
            PolynomialRollingHash(4, base=2)


class TestWindowMinima:
    def test_basic(self):
        values = [5, 3, 8, 3, 9, 1]
        minima = list(windowed_minima(values, 3))
        # Windows: [5,3,8] [3,8,3] [8,3,9] [3,9,1]
        assert minima == [(3, 1), (3, 3), (3, 3), (1, 5)]

    def test_rightmost_tie_break(self):
        # Equal values: the rightmost index wins (winnowing requirement).
        minima = list(windowed_minima([7, 7, 7], 2))
        assert minima == [(7, 1), (7, 2)]

    def test_window_one(self):
        assert list(windowed_minima([4, 2, 6], 1)) == [(4, 0), (2, 1), (6, 2)]

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=10),
    )
    def test_matches_naive(self, values, window):
        if len(values) < window:
            assert list(windowed_minima(values, window)) == []
            return
        naive = []
        for i in range(len(values) - window + 1):
            chunk = values[i : i + window]
            m = min(chunk)
            # Rightmost occurrence of the minimum.
            j = max(k for k, v in enumerate(chunk) if v == m)
            naive.append((m, i + j))
        assert list(windowed_minima(values, window)) == naive

    def test_minqueue_empty_minimum_raises(self):
        q = MinQueue(2)
        with pytest.raises(ValueError):
            q.minimum()

    def test_minqueue_invalid_window(self):
        with pytest.raises(ValueError):
            MinQueue(0)
