"""Tests for repro.cli: the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.workload.dataset import TrajectoryDataset


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "dataset.jsonl"
    code = main(
        [
            "generate",
            "--routes",
            "3",
            "--per-direction",
            "3",
            "--queries",
            "2",
            "--half-side-m",
            "2000",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x.jsonl"])
        assert args.routes == 10
        assert args.noise_m == 20.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_loadable_dataset(self, dataset_path, capsys):
        dataset = TrajectoryDataset.load(dataset_path)
        assert len(dataset) == 3 * 3 * 2
        assert len(dataset.queries) == 2

    def test_output_mentions_counts(self, tmp_path, capsys):
        out = tmp_path / "d.jsonl"
        main(
            [
                "generate",
                "--routes",
                "2",
                "--per-direction",
                "2",
                "--queries",
                "1",
                "--half-side-m",
                "2000",
                "--out",
                str(out),
            ]
        )
        stdout = capsys.readouterr().out
        assert "8 trajectories" in stdout


class TestEvaluate:
    def test_prints_quality_table(self, dataset_path, capsys):
        code = main(["evaluate", "--dataset", str(dataset_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "geodabs" in out
        assert "geohash" in out
        assert "MAP" in out

    def test_requires_queries(self, tmp_path, capsys):
        empty = TrajectoryDataset()
        path = tmp_path / "empty.jsonl"
        empty.save(path)
        code = main(["evaluate", "--dataset", str(path)])
        assert code == 1


class TestQuery:
    def test_known_query(self, dataset_path, capsys):
        code = main(
            ["query", "--dataset", str(dataset_path), "--query-id", "q0000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "q0000" in out
        assert "rank" in out

    def test_geohash_index_choice(self, dataset_path, capsys):
        code = main(
            [
                "query",
                "--dataset",
                str(dataset_path),
                "--query-id",
                "q0001",
                "--index",
                "geohash",
                "--limit",
                "3",
            ]
        )
        assert code == 0

    def test_unknown_query_id(self, dataset_path, capsys):
        code = main(
            ["query", "--dataset", str(dataset_path), "--query-id", "nope"]
        )
        assert code == 1
        assert "unknown query" in capsys.readouterr().err


class TestServeParser:
    def test_snapshot_flags(self):
        args = build_parser().parse_args(
            ["serve", "--snapshot-dir", "/tmp/snaps", "--mmap", "off"]
        )
        assert args.snapshot_dir == "/tmp/snaps"
        assert args.mmap == "off"

    def test_mmap_defaults_to_read_mapping(self):
        args = build_parser().parse_args(["serve"])
        assert args.snapshot_dir is None
        assert args.mmap == "r"

    def test_mmap_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--mmap", "w"])
