"""Tests for repro.service.tracing: spans, traces, and threaded trace IDs.

Covers the Trace/Span primitives with a fake clock (exact arithmetic)
and the span-tree *shapes* each query path produces: single-node,
sharded fan-out, batched burst, and cache hit.
"""

import pytest

from repro.cluster import ShardedGeodabIndex, ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.core.query import NO_TRACE, QuerySpec
from repro.service import IndexService, QueryExecutor, Trace, new_trace_id
from repro.service.tracing import Span

CONFIG = GeodabConfig(k=3, t=5)


class FakeClock:
    """Deterministic clock: each reading advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def span_names(tree: dict) -> list[str]:
    return [span["name"] for span in tree["spans"]]


def find_span(tree: dict, name: str) -> dict:
    matches = [span for span in tree["spans"] if span["name"] == name]
    assert matches, f"no span named {name!r} in {span_names(tree)}"
    return matches[0]


class TestTracePrimitives:
    def test_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)

    def test_stage_aggregates_without_detail(self):
        trace = Trace(detail=False, clock=FakeClock())
        trace.stage("fanout", 1.0, 3.0)
        trace.stage("fanout", 10.0, 11.0)
        trace.stage("rank", 5.0, 5.5)
        assert trace.stage_seconds() == {"fanout": 3.0, "rank": 0.5}
        # No spans are retained below detail.
        assert trace.as_dict()["spans"] == []

    def test_events_dropped_without_detail(self):
        trace = Trace(detail=False, clock=FakeClock())
        assert trace.event("shard", 0.0, 1.0) is None
        assert trace.stage_seconds() == {}

    def test_detail_builds_nested_span_tree(self):
        clock = FakeClock()
        trace = Trace(detail=True, trace_id="abc", clock=clock)
        # Trace start consumed clock reading 0.0.
        parent = trace.stage("fanout", 1.0, 5.0)
        trace.event("shard", 1.5, 2.5, parent=parent, shard=3)
        trace.event("shard", 2.5, 4.0, parent=parent, shard=7)
        trace.stage("rank", 5.0, 6.0)
        tree = trace.as_dict()
        assert tree["trace_id"] == "abc"
        assert tree["stages_ms"] == {"fanout": 4000.0, "rank": 1000.0}
        assert span_names(tree) == ["fanout", "rank"]
        fanout = find_span(tree, "fanout")
        children = fanout["children"]
        assert [child["shard"] for child in children] == [3, 7]
        # Offsets are relative to the trace start (clock read 0.0).
        assert fanout["start_ms"] == 1000.0
        assert fanout["duration_ms"] == 4000.0
        assert children[0]["start_ms"] == 1500.0
        assert children[0]["duration_ms"] == 1000.0

    def test_children_sorted_by_start_time(self):
        trace = Trace(detail=True, clock=FakeClock())
        parent = trace.stage("fanout", 0.0, 10.0)
        trace.event("shard", 7.0, 8.0, parent=parent, shard=1)
        trace.event("shard", 2.0, 3.0, parent=parent, shard=0)
        children = find_span(trace.as_dict(), "fanout")["children"]
        assert [child["shard"] for child in children] == [0, 1]

    def test_span_meta_merges_into_dict(self):
        span = Span(0, None, "shard", 0.001, 0.002, {"shard": 4, "terms": 9})
        payload = span.as_dict()
        assert payload["name"] == "shard"
        assert payload["shard"] == 4
        assert payload["terms"] == 9
        assert payload["start_ms"] == 1.0
        assert payload["duration_ms"] == 2.0

    def test_no_trace_is_inert(self):
        assert NO_TRACE.now() == 0.0
        assert NO_TRACE.stage("x", 0.0, 1.0) is None
        assert NO_TRACE.event("x", 0.0, 1.0) is None
        assert NO_TRACE.detail is False


@pytest.fixture()
def single_service(small_dataset):
    service = IndexService(GeodabIndex(CONFIG))
    service.ingest(
        (r.trajectory_id, r.points) for r in small_dataset.records
    )
    yield service
    service.close()


@pytest.fixture()
def sharded_service(small_dataset):
    index = ShardedGeodabIndex(
        CONFIG, ShardingConfig(num_shards=8, num_nodes=2)
    )
    executor = QueryExecutor(index, pool_size=4)
    service = IndexService(index, executor=executor)
    service.ingest(
        (r.trajectory_id, r.points) for r in small_dataset.records
    )
    yield service
    service.close()


class TestQueryPathShapes:
    def test_single_node_span_tree(self, single_service, small_dataset):
        # A top-k query takes the planner's bounded collection by
        # default: one ``collect`` stage replaces ``fanout``/``merge``.
        response = single_service.query(
            small_dataset.queries[0].points, limit=5, trace=True
        )
        tree = response.trace
        assert tree is not None
        assert set(tree["stages_ms"]) == {"prepare", "collect", "rank"}
        assert span_names(tree) == [
            "prepare", "result_cache", "collect", "rank",
        ]
        assert find_span(tree, "result_cache")["hit"] is False
        # The stage durations account for (most of) the request latency:
        # everything outside them is cache bookkeeping and allocation.
        assert sum(tree["stages_ms"].values()) <= response.latency_s * 1000.0

    def test_single_node_span_tree_plan_off(
        self, single_service, small_dataset
    ):
        # ``plan="off"`` keeps the exhaustive fan-out/merge shape.
        response = single_service.query(
            small_dataset.queries[1].points,
            trace=True,
            spec=QuerySpec(limit=5, plan="off"),
        )
        tree = response.trace
        assert tree is not None
        assert set(tree["stages_ms"]) == {"prepare", "fanout", "merge", "rank"}
        assert span_names(tree) == [
            "prepare", "result_cache", "fanout", "merge", "rank",
        ]

    def test_sharded_fanout_has_shard_children(
        self, sharded_service, small_dataset
    ):
        # plan="off" keeps the shared scatter this test is about; the
        # planned path scatters inside one ``collect`` span instead.
        response = sharded_service.query(
            small_dataset.queries[0].points,
            trace=True,
            spec=QuerySpec(limit=5, plan="off"),
        )
        tree = response.trace
        assert tree is not None
        fanout = find_span(tree, "fanout")
        children = fanout.get("children", [])
        assert children, "pooled fan-out must record per-shard spans"
        prepared = sharded_service.index.prepare_query(
            small_dataset.queries[0].points
        )
        assert len(children) == len(prepared.plan)
        for child in children:
            assert child["name"] == "shard"
            assert child["queue_wait_ms"] >= 0.0
            assert child["terms"] >= 1

    def test_cached_path_skips_execution_spans(
        self, single_service, small_dataset
    ):
        points = small_dataset.queries[0].points
        single_service.query(points, limit=5)
        response = single_service.query(points, limit=5, trace=True)
        assert response.cached is True
        tree = response.trace
        assert span_names(tree) == ["prepare", "result_cache"]
        assert find_span(tree, "result_cache")["hit"] is True

    def test_batched_burst_shares_one_trace(
        self, sharded_service, small_dataset
    ):
        queries = [q.points for q in small_dataset.queries[:3]]
        responses = sharded_service.query_many(queries, limit=5, trace=True)
        assert responses[0].trace is not None
        assert all(r.trace is None for r in responses[1:])
        tree = responses[0].trace
        # Top-k burst items run the planner's bounded collection.
        assert "collect" in tree["stages_ms"]
        assert find_span(tree, "prepare")["queries"] == 3

    def test_untraced_response_carries_no_tree(
        self, single_service, small_dataset
    ):
        response = single_service.query(small_dataset.queries[0].points)
        assert response.trace is None
        assert "trace" not in response.as_dict()

    def test_stage_histograms_populated_without_detail(
        self, sharded_service, small_dataset
    ):
        sharded_service.query(small_dataset.queries[0].points, limit=5)
        sharded_service.query(
            small_dataset.queries[1].points,
            spec=QuerySpec(limit=5, plan="off"),
        )
        snapshot = sharded_service.metrics.snapshot()
        for stage in ("prepare", "collect", "fanout", "merge", "rank"):
            assert snapshot.stages[stage]["count"] >= 1

    def test_disabled_metrics_skip_tracing_entirely(self, small_dataset):
        from repro.service import ServiceMetrics

        service = IndexService(
            GeodabIndex(CONFIG), metrics=ServiceMetrics(enabled=False)
        )
        service.ingest(
            (r.trajectory_id, r.points) for r in small_dataset.records[:3]
        )
        try:
            response = service.query(small_dataset.queries[0].points)
            assert response.trace is None
            assert service.metrics.snapshot().stages == {}
            # An explicit trace request still works with metrics off.
            traced = service.query(
                small_dataset.queries[0].points, trace=True
            )
            assert traced.trace is not None
        finally:
            service.close()

    def test_results_identical_with_and_without_trace(
        self, sharded_service, small_dataset
    ):
        points = small_dataset.queries[1].points
        plain = sharded_service.query(points, limit=10)
        sharded_service.result_cache.invalidate_all()
        traced = sharded_service.query(points, limit=10, trace=True)
        assert plain.results == traced.results

    def test_executor_stats_stage_ms_under_null_trace(self, small_dataset):
        index = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=4, num_nodes=2)
        )
        index.add_many(
            (r.trajectory_id, r.points) for r in small_dataset.records[:4]
        )
        with QueryExecutor(index, pool_size=2) as executor:
            _, stats = executor.execute(small_dataset.queries[0].points)
            assert stats.stage_ms == ()
            _, stats = executor.execute(
                small_dataset.queries[0].points, trace=Trace()
            )
            assert [name for name, _ in stats.stage_ms] == [
                "fanout", "merge", "rank",
            ]


class TestSlowQueryLogIntegration:
    def test_slow_log_records_over_threshold(self, small_dataset):
        service = IndexService(GeodabIndex(CONFIG), slow_query_ms=0.0)
        service.ingest(
            (r.trajectory_id, r.points) for r in small_dataset.records[:3]
        )
        try:
            service.query(small_dataset.queries[0].points, trace=True)
            entries = service.slow_log.entries()
            assert len(entries) == 1
            entry = entries[0]
            assert entry["kind"] == "query"
            assert entry["latency_ms"] >= 0.0
            assert entry["trace_id"]
            assert entry["cached"] is False
        finally:
            service.close()

    def test_threshold_filters(self, small_dataset):
        service = IndexService(GeodabIndex(CONFIG), slow_query_ms=60_000.0)
        service.ingest(
            (r.trajectory_id, r.points) for r in small_dataset.records[:3]
        )
        try:
            service.query(small_dataset.queries[0].points)
            assert service.slow_log.entries() == []
        finally:
            service.close()
