"""Tests for repro.geo.curve: z-order curve arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.curve import (
    curve_index,
    curve_range,
    deinterleave,
    fraction_of_curve,
    interleave,
    node_of,
    shard_of,
    shards_in_curve_range,
    sort_by_curve,
    walk_cells,
)
from repro.geo.geohash import Geohash


class TestInterleave:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_roundtrip(self, x, y):
        assert deinterleave(interleave(x, y)) == (x, y)

    def test_known_pattern(self):
        # x=0b11 (odd positions), y=0b00 -> 0b1010.
        assert interleave(0b11, 0b00) == 0b1010
        assert interleave(0b00, 0b11) == 0b0101

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_x_monotonic(self, x, y):
        # Increasing x increases the interleaving for fixed y.
        if x < 2**32 - 1:
            assert interleave(x, y) < interleave(x + 1, y)


class TestCurveIndex:
    def test_leaf_cell(self):
        cell = Geohash(0b101, 3)
        assert curve_index(cell, 3) == 0b101

    def test_shallow_cell_maps_to_subtree_start(self):
        cell = Geohash(0b10, 2)
        assert curve_index(cell, 4) == 0b1000

    def test_too_shallow_depth_raises(self):
        with pytest.raises(ValueError):
            curve_index(Geohash(0b101, 3), 2)

    def test_curve_range_span(self):
        cell = Geohash(0b1, 1)
        start, end = curve_range(cell, 4)
        assert (start, end) == (8, 16)

    @given(st.integers(min_value=0, max_value=255))
    def test_ranges_partition_at_same_depth(self, bits):
        cell = Geohash(bits, 8)
        start, end = curve_range(cell, 8)
        assert end - start == 1
        assert start == bits


class TestFractionAndSharding:
    def test_fraction_of_root(self):
        assert fraction_of_curve(Geohash(0, 0)) == 0.0

    def test_fraction_of_last_cell(self):
        assert fraction_of_curve(Geohash(0b1111, 4)) == pytest.approx(15 / 16)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_shard_of_within_range(self, bits):
        cell = Geohash(bits, 16)
        shard = shard_of(cell, 100)
        assert 0 <= shard < 100

    def test_shard_of_is_monotonic_on_curve(self):
        shards = [shard_of(Geohash(b, 8), 16) for b in range(256)]
        assert shards == sorted(shards)

    def test_shard_of_even_split(self):
        # 4 cells, 2 shards: first two cells on shard 0.
        assert shard_of(Geohash(0, 2), 2) == 0
        assert shard_of(Geohash(1, 2), 2) == 0
        assert shard_of(Geohash(2, 2), 2) == 1
        assert shard_of(Geohash(3, 2), 2) == 1

    def test_shard_of_invalid(self):
        with pytest.raises(ValueError):
            shard_of(Geohash(0, 4), 0)

    def test_node_of_modulo(self):
        assert node_of(13, 10) == 3

    def test_node_of_invalid(self):
        with pytest.raises(ValueError):
            node_of(1, 0)


class TestShardsInRange:
    def test_full_range_touches_all(self):
        assert shards_in_curve_range(0, 256, 8, 4) == [0, 1, 2, 3]

    def test_empty_range(self):
        assert shards_in_curve_range(5, 5, 8, 4) == []

    def test_single_cell(self):
        assert shards_in_curve_range(0, 1, 8, 4) == [0]
        assert shards_in_curve_range(255, 256, 8, 4) == [3]

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            shards_in_curve_range(5, 2, 8, 4)

    def test_out_of_domain(self):
        with pytest.raises(ValueError):
            shards_in_curve_range(0, 1 << 9, 8, 4)

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_contiguity(self, a, b):
        lo, hi = min(a, b), max(a, b) + 1
        shards = shards_in_curve_range(lo, hi, 8, 16)
        assert shards == list(range(shards[0], shards[-1] + 1))


class TestTraversal:
    def test_sort_by_curve(self):
        cells = [Geohash(3, 4), Geohash(0, 2), Geohash(1, 4)]
        ordered = sort_by_curve(cells)
        positions = [c.curve_position(8) for c in ordered]
        assert positions == sorted(positions)

    def test_walk_cells_count(self):
        assert len(list(walk_cells(4))) == 16

    def test_walk_cells_in_order(self):
        cells = list(walk_cells(3))
        assert [c.bits for c in cells] == list(range(8))

    def test_walk_cells_depth_guard(self):
        with pytest.raises(ValueError):
            list(walk_cells(30))

    def test_walk_cells_locality(self):
        # Consecutive cells on the curve are geographically adjacent at
        # least half the time (z-order locality is good but not perfect).
        cells = list(walk_cells(8))
        adjacent = 0
        for a, b in zip(cells, cells[1:]):
            if a.bbox().buffer_degrees(1e-9, 1e-9).intersects(b.bbox()):
                adjacent += 1
        assert adjacent / (len(cells) - 1) > 0.5
