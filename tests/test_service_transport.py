"""Tests for repro.service.transport: wire format and the three transports.

The worker-process transport is exercised against real spawned worker
processes over a published snapshot; the remote-HTTP stub is mounted on
an in-test stdlib HTTP server wrapping the same :class:`ShardWorker`
handler, which is exactly the deployment shape it documents.
"""

import http.server
import os
import signal
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.persistence import attach_shard_postings, publish_snapshot
from repro.service.transport import (
    FRAME_MAGIC,
    InProcessTransport,
    RemoteHttpTransport,
    TransportError,
    WorkerProcessTransport,
    pack_frame,
    recv_frame,
    send_frame,
    unpack_frame,
)
from repro.service.worker import ShardWorker

CONFIG = GeodabConfig(k=3, t=5)
# Hash placement: every query plans onto several shards, so the
# per-shard equality sweeps below cover more than one shard id.
SHARDING = ShardingConfig(num_shards=4, num_nodes=2, placement="hash")


@pytest.fixture(scope="module")
def sharded(small_dataset):
    index = ShardedGeodabIndex(CONFIG, SHARDING)
    index.add_many(
        [(r.trajectory_id, r.points) for r in small_dataset.records]
    )
    return index


@pytest.fixture(scope="module")
def snapshot_path(sharded, tmp_path_factory):
    root = tmp_path_factory.mktemp("transport-snapshots")
    return publish_snapshot(sharded, root, tag="test")


@pytest.fixture(scope="module")
def plans(sharded, small_dataset):
    """Per-query shard plans: {shard_id: [terms]} with real postings."""
    return [
        sharded.prepare_query(q.points).plan for q in small_dataset.queries
    ]


@pytest.fixture(scope="module")
def process_transport(snapshot_path):
    transport = WorkerProcessTransport(snapshot_path, num_workers=2)
    yield transport
    transport.close()


class TestWireFormat:
    def test_round_trip_preserves_header_and_arrays(self):
        header = {"op": "partial", "shard": 3, "nested": {"a": [1, 2]}}
        arrays = [
            np.arange(17, dtype=np.int64),
            np.array([], dtype=np.uint32),
            np.linspace(0.0, 1.0, 5, dtype=np.float64),
        ]
        out_header, out_arrays = unpack_frame(pack_frame(header, arrays))
        assert out_header == header
        assert len(out_arrays) == len(arrays)
        for sent, received in zip(arrays, out_arrays):
            assert sent.dtype == received.dtype
            np.testing.assert_array_equal(sent, received)

    def test_no_arrays(self):
        header, arrays = unpack_frame(pack_frame({"op": "ping"}))
        assert header == {"op": "ping"}
        assert arrays == []

    def test_sender_header_is_not_mutated(self):
        header = {"op": "partial"}
        pack_frame(header, [np.arange(3)])
        assert header == {"op": "partial"}

    def test_bad_magic_rejected(self):
        blob = bytearray(pack_frame({"op": "ping"}))
        blob[:4] = b"NOPE"
        with pytest.raises(TransportError, match="magic"):
            unpack_frame(bytes(blob))

    def test_truncated_array_payload_rejected(self):
        blob = pack_frame({"op": "x"}, [np.arange(100, dtype=np.int64)])
        with pytest.raises(TransportError, match="truncated"):
            unpack_frame(blob[:-8])

    def test_oversize_header_length_rejected(self):
        # Corrupt length prefix: must refuse before allocating.
        blob = FRAME_MAGIC + struct.pack("<I", 1 << 31) + b"{}"
        with pytest.raises(TransportError, match="frame limit"):
            unpack_frame(blob)

    def test_socket_round_trip(self):
        left, right = socket.socketpair()
        try:
            arrays = [np.arange(1000, dtype=np.int64)]
            send_frame(left, {"op": "partial", "shard": 1}, arrays)
            header, received = recv_frame(right)
            assert header == {"op": "partial", "shard": 1}
            np.testing.assert_array_equal(received[0], arrays[0])
        finally:
            left.close()
            right.close()

    def test_recv_on_closed_socket_raises(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(TransportError, match="closed"):
                recv_frame(right)
        finally:
            right.close()


class TestAttachShardPostings:
    def test_round_trip_matches_live_stores(self, sharded, snapshot_path):
        stores = attach_shard_postings(snapshot_path)
        assert sorted(stores) == [s.shard_id for s in sharded.shards]
        for shard in sharded.shards:
            live = shard.postings
            attached = stores[shard.shard_id]
            terms = sorted(live)[:20]
            np.testing.assert_array_equal(
                attached.hits(terms), live.hits(terms)
            )

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises((OSError, ValueError)):
            attach_shard_postings(tmp_path / "nowhere")


class TestInProcessTransport:
    def test_partial_and_postings_delegate(self, sharded, plans):
        transport = InProcessTransport(sharded)
        assert transport.kind == "inprocess"
        for plan in plans:
            for shard_id, terms in plan.items():
                np.testing.assert_array_equal(
                    transport.shard_partial(shard_id, terms),
                    sharded.shard_partial(shard_id, terms),
                )
                direct = sharded.shard_postings(shard_id, terms)
                via = transport.shard_postings(shard_id, terms)
                assert sorted(via) == sorted(direct)

    def test_stats_and_maintain(self, sharded):
        transport = InProcessTransport(sharded)
        assert transport.stats()["kind"] == "inprocess"
        assert transport.maintain() == {}
        transport.close()  # no-op


class TestShardWorkerHandler:
    def test_unknown_op_is_an_application_error(self, snapshot_path):
        worker = ShardWorker(snapshot_path)
        header, arrays = worker.handle({"op": "frobnicate"}, [])
        assert header["ok"] is False
        assert arrays == []

    def test_unknown_shard_does_not_kill_the_worker(self, snapshot_path):
        worker = ShardWorker(snapshot_path)
        header, _ = worker.handle(
            {"op": "partial", "shard": 999},
            [np.array([1], dtype=np.int64)],
        )
        assert header["ok"] is False
        assert "999" in header["error"]
        # Still serves good requests afterwards.
        ping, _ = worker.handle({"op": "ping"}, [])
        assert ping["ok"] is True

    def test_stats_op(self, snapshot_path):
        worker = ShardWorker(snapshot_path)
        header, _ = worker.handle({"op": "stats"}, [])
        assert header["ok"] is True
        assert header["shards"] == list(range(SHARDING.num_shards))


class TestWorkerProcessTransport:
    def test_partials_match_the_live_index(
        self, sharded, plans, process_transport
    ):
        for plan in plans:
            for shard_id, terms in plan.items():
                np.testing.assert_array_equal(
                    process_transport.shard_partial(shard_id, terms),
                    sharded.shard_partial(shard_id, terms),
                )

    def test_postings_match_the_live_index(
        self, sharded, plans, process_transport
    ):
        plan = next(p for p in plans if p)
        shard_id, terms = next(iter(plan.items()))
        direct = sharded.shard_postings(shard_id, terms)
        via = process_transport.shard_postings(shard_id, terms)
        assert sorted(via) == sorted(direct)
        for term in direct:
            np.testing.assert_array_equal(via[term], direct[term])

    def test_meta_reports_worker_and_timing(self, plans, process_transport):
        plan = next(p for p in plans if p)
        shard_id, terms = next(iter(plan.items()))
        meta: dict = {}
        process_transport.shard_partial(shard_id, terms, meta=meta)
        assert meta["worker"] in (0, 1)
        assert meta["pid"] > 0
        assert meta["worker_us"] >= 0

    def test_attempt_routes_to_a_different_worker(
        self, plans, process_transport
    ):
        plan = next(p for p in plans if p)
        shard_id, terms = next(iter(plan.items()))
        primary: dict = {}
        retry: dict = {}
        process_transport.shard_partial(shard_id, terms, meta=primary)
        process_transport.shard_partial(
            shard_id, terms, attempt=1, meta=retry
        )
        assert primary["worker"] != retry["worker"]

    def test_stats_shape(self, process_transport):
        stats = process_transport.stats()
        assert stats["kind"] == "process"
        assert len(stats["workers"]) == 2
        assert all(w["alive"] for w in stats["workers"])
        assert sum(w["requests"] for w in stats["workers"]) > 0

    def test_rejects_zero_workers(self, snapshot_path):
        with pytest.raises(ValueError, match="num_workers"):
            WorkerProcessTransport(snapshot_path, num_workers=0)

    def test_spawn_failure_surfaces_and_leaves_no_processes(self, tmp_path):
        with pytest.raises(TransportError, match="worker"):
            WorkerProcessTransport(
                tmp_path / "no-such-snapshot", num_workers=1
            )


class TestWorkerLifecycle:
    """Kill/respawn/refresh/close, on a private transport per test."""

    @pytest.fixture()
    def transport(self, snapshot_path):
        transport = WorkerProcessTransport(snapshot_path, num_workers=2)
        yield transport
        transport.close()

    @staticmethod
    def _kill(transport, slot):
        proc = transport._workers[slot].proc
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)

    def test_killed_worker_fails_over_then_respawns(
        self, sharded, plans, transport
    ):
        plan = next(p for p in plans if p)
        shard_id, terms = next(iter(plan.items()))
        meta: dict = {}
        transport.shard_partial(shard_id, terms, meta=meta)
        self._kill(transport, meta["worker"])
        # The primary still routes to the killed slot: the contact fails
        # and marks it dead...
        with pytest.raises(TransportError):
            transport.shard_partial(shard_id, terms)
        # ...then routing skips the dead slot: same answer, other worker.
        after: dict = {}
        np.testing.assert_array_equal(
            transport.shard_partial(shard_id, terms, meta=after),
            sharded.shard_partial(shard_id, terms),
        )
        assert after["worker"] != meta["worker"]
        report = transport.maintain()
        assert report == {"respawned": [meta["worker"]], "failed": []}
        assert transport.stats()["respawns"] == 1
        assert all(w["alive"] for w in transport.stats()["workers"])

    def test_all_workers_dead_raises_no_live_workers(self, plans, transport):
        plan = next(p for p in plans if p)
        shard_id, terms = next(iter(plan.items()))
        for slot in range(2):
            self._kill(transport, slot)
        for _ in range(4):
            try:
                transport.shard_partial(shard_id, terms)
            except TransportError:
                pass
        with pytest.raises(TransportError, match="no live workers"):
            transport.shard_partial(shard_id, terms)
        report = transport.maintain()
        assert sorted(report["respawned"]) == [0, 1]

    def test_refresh_points_workers_at_a_new_snapshot(
        self, sharded, plans, transport, tmp_path
    ):
        new_path = publish_snapshot(sharded, tmp_path, tag="refreshed")
        report = transport.refresh(new_path)
        assert report == {"refreshed": [0, 1], "failed": []}
        assert transport.snapshot_path == new_path
        plan = next(p for p in plans if p)
        shard_id, terms = next(iter(plan.items()))
        np.testing.assert_array_equal(
            transport.shard_partial(shard_id, terms),
            sharded.shard_partial(shard_id, terms),
        )

    def test_close_reaps_every_worker(self, snapshot_path):
        transport = WorkerProcessTransport(snapshot_path, num_workers=2)
        procs = [handle.proc for handle in transport._workers]
        transport.close()
        for proc in procs:
            assert proc.poll() is not None
        transport.close()  # idempotent

    def test_maintain_after_close_is_a_no_op(self, snapshot_path):
        transport = WorkerProcessTransport(snapshot_path, num_workers=1)
        transport.close()
        assert transport.maintain() == {"respawned": [], "failed": []}


class _ShardHTTPHandler(http.server.BaseHTTPRequestHandler):
    """Minimal HTTP front end over ShardWorker.handle (the remote shape)."""

    worker: ShardWorker  # set on the subclass per server

    def do_POST(self):  # noqa: N802 - stdlib naming
        # Counted before responding: the client returns as soon as the
        # body lands, so counting afterwards would race the assertions.
        type(self).hits = getattr(type(self), "hits", 0) + 1
        body = self.rfile.read(int(self.headers.get("Content-Length", 0)))
        if self.path != "/shard":
            self.send_error(404)
            return
        header, arrays = unpack_frame(body)
        response, payload = type(self).worker.handle(header, arrays)
        blob = pack_frame(response, payload)
        self.send_response(200)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, *args):  # quiet
        return


@pytest.fixture()
def shard_http_servers(snapshot_path):
    worker = ShardWorker(snapshot_path)
    servers = []
    handlers = []
    for _ in range(2):
        handler = type("Handler", (_ShardHTTPHandler,), {"worker": worker})
        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), handler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        handlers.append(handler)
    yield servers, handlers
    for server in servers:
        server.shutdown()
        server.server_close()


class TestRemoteHttpTransport:
    def test_requires_an_endpoint(self):
        with pytest.raises(ValueError):
            RemoteHttpTransport([])

    def test_partials_match_the_live_index(
        self, sharded, plans, shard_http_servers
    ):
        servers, _ = shard_http_servers
        transport = RemoteHttpTransport(
            [f"http://127.0.0.1:{s.server_address[1]}" for s in servers]
        )
        assert transport.kind == "http"
        for plan in plans:
            for shard_id, terms in plan.items():
                meta: dict = {}
                np.testing.assert_array_equal(
                    transport.shard_partial(shard_id, terms, meta=meta),
                    sharded.shard_partial(shard_id, terms),
                )
                assert meta["worker_us"] >= 0
        assert transport.stats()["requests"] > 0
        assert transport.stats()["errors"] == 0

    def test_postings_match_the_live_index(
        self, sharded, plans, shard_http_servers
    ):
        servers, _ = shard_http_servers
        transport = RemoteHttpTransport(
            [f"http://127.0.0.1:{servers[0].server_address[1]}"]
        )
        plan = next(p for p in plans if p)
        shard_id, terms = next(iter(plan.items()))
        direct = sharded.shard_postings(shard_id, terms)
        via = transport.shard_postings(shard_id, terms)
        assert sorted(via) == sorted(direct)

    def test_attempt_routes_to_the_other_endpoint(
        self, plans, shard_http_servers
    ):
        servers, handlers = shard_http_servers
        transport = RemoteHttpTransport(
            [f"http://127.0.0.1:{s.server_address[1]}" for s in servers]
        )
        plan = next(p for p in plans if p)
        shard_id, terms = next(iter(plan.items()))
        transport.shard_partial(shard_id, terms, attempt=0)
        transport.shard_partial(shard_id, terms, attempt=1)
        counts = sorted(getattr(h, "hits", 0) for h in handlers)
        assert counts == [1, 1]

    def test_application_error_raises_transport_error(
        self, shard_http_servers
    ):
        servers, _ = shard_http_servers
        transport = RemoteHttpTransport(
            [f"http://127.0.0.1:{servers[0].server_address[1]}"]
        )
        with pytest.raises(TransportError, match="no shard"):
            transport.shard_partial(
                999, [1, 2, 3]
            )

    def test_unreachable_endpoint_raises_transport_error(self):
        # Grab a port that nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        transport = RemoteHttpTransport(
            [f"http://127.0.0.1:{port}"], timeout_s=1.0
        )
        with pytest.raises(TransportError):
            transport.shard_partial(0, [1])
        assert transport.stats()["errors"] == 1


class TestWorkerParentWatchdog:
    def test_worker_exits_when_parent_pid_disappears(self, snapshot_path):
        """--parent-pid points at a process that dies: the worker follows."""
        import subprocess
        import sys

        # A short-lived stand-in parent.
        parent = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(30)"])
        worker = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.service.worker import main; "
                "sys.exit(main(sys.argv[1:]))",
                "--snapshot",
                str(snapshot_path),
                "--parent-pid",
                str(parent.pid),
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            ready = worker.stdout.readline()
            assert ready.startswith("GEODAB-WORKER READY")
            parent.kill()
            parent.wait(timeout=10)
            assert worker.wait(timeout=10) == 0
        finally:
            for proc in (parent, worker):
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
            worker.stdout.close()
