"""Tests for the IndexService background maintenance thread.

The compaction policy's age trigger used to fire only *on* writes, so an
idle service could sit on unfolded append buffers forever.  The
maintenance daemon re-evaluates the policy every
``maintenance_interval_s`` seconds; these tests drive the age trigger
with a fake clock (no sleeps on the assertion path) and check the
thread's lifecycle around ``close()``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.service import CompactionPolicy, IndexService

CONFIG = GeodabConfig(k=3, t=5)
LONDON = [(51.5074 + 0.001 * i, -0.1278 + 0.001 * i) for i in range(20)]


def make_points(offset=0.0):
    from repro.geo.point import Point

    return [Point(lat + offset, lon) for lat, lon in LONDON]


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestMaintenanceTick:
    def test_age_trigger_fires_via_tick_with_fake_clock(self):
        clock = FakeClock()
        service = IndexService(
            GeodabIndex(CONFIG),
            compaction=CompactionPolicy(
                max_buffered_postings=10**9, max_age_s=5.0
            ),
            clock=clock,
        )
        service.ingest([("a", make_points())])
        assert service.index.buffered_postings > 0
        # Too young: the tick evaluates the policy but does not fold.
        assert service.maintenance_tick() is False
        assert service.index.buffered_postings > 0
        clock.advance(5.1)
        assert service.maintenance_tick() is True
        assert service.index.buffered_postings == 0
        stats = service.stats()
        assert stats["maintenance"]["ticks"] == 2
        assert stats["maintenance"]["enabled"] is False
        assert stats["compaction"]["runs"] == 1
        service.close()

    def test_tick_without_policy_is_noop(self):
        service = IndexService(GeodabIndex(CONFIG), compaction=None)
        service.ingest([("a", make_points())])
        assert service.maintenance_tick() is False
        assert service.index.buffered_postings > 0
        service.close()

    def test_dirty_marker_resets_after_fold(self):
        clock = FakeClock()
        service = IndexService(
            GeodabIndex(CONFIG),
            compaction=CompactionPolicy(
                max_buffered_postings=10**9, max_age_s=5.0
            ),
            clock=clock,
        )
        service.ingest([("a", make_points())])
        clock.advance(6.0)
        assert service.maintenance_tick() is True
        # Nothing dirty anymore: further ticks are no-ops even though
        # the clock keeps advancing.
        clock.advance(60.0)
        assert service.maintenance_tick() is False
        service.close()


class TestMaintenanceThread:
    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            IndexService(GeodabIndex(CONFIG), maintenance_interval_s=0.0)
        with pytest.raises(ValueError):
            IndexService(GeodabIndex(CONFIG), maintenance_interval_s=-1.0)

    def test_daemon_compacts_while_writes_idle(self):
        service = IndexService(
            GeodabIndex(CONFIG),
            compaction=CompactionPolicy(
                max_buffered_postings=10**9, max_age_s=0.05
            ),
            maintenance_interval_s=0.01,
        )
        try:
            service.ingest([("a", make_points())])
            # The write-path trigger saw age ~0 and skipped; only the
            # daemon can fold once the buffers age past 50 ms.
            deadline = time.monotonic() + 5.0
            while service.index.buffered_postings and time.monotonic() < deadline:
                time.sleep(0.01)
            assert service.index.buffered_postings == 0
            assert service.stats()["maintenance"]["enabled"] is True
            assert service.stats()["maintenance"]["ticks"] >= 1
        finally:
            service.close()

    def test_close_stops_thread(self):
        service = IndexService(
            GeodabIndex(CONFIG), maintenance_interval_s=0.01
        )
        thread = service._maintenance_thread
        assert thread is not None and thread.is_alive()
        service.close()
        assert service._maintenance_thread is None
        assert not thread.is_alive()
        # Idempotent.
        service.close()

    def test_no_thread_by_default(self):
        service = IndexService(GeodabIndex(CONFIG))
        assert service._maintenance_thread is None
        assert service.stats()["maintenance"]["enabled"] is False
        service.close()
