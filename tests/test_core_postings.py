"""Tests for repro.core.postings: the columnar postings store."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.postings import EMPTY_HITS, PostingsStore, merge_hits


class TestPostingsStore:
    def test_empty_store(self):
        store = PostingsStore()
        assert len(store) == 0
        assert store.num_postings == 0
        assert not store
        assert store.get(1) is None
        assert len(store.hits([1, 2, 3])) == 0
        assert store.postings_map([1]) == {}
        assert 1 not in store

    def test_append_and_get_sorted(self):
        store = PostingsStore()
        for internal in (5, 1, 3):
            store.append(7, internal)
        assert store.get(7).tolist() == [1, 3, 5]
        assert store.get(7).dtype == np.int64
        assert store.num_postings == 3
        assert len(store) == 1
        assert 7 in store and list(store) == [7]

    def test_appends_after_compaction_fold_in(self):
        store = PostingsStore()
        store.extend(1, [4, 2])
        assert store.get(1).tolist() == [2, 4]
        store.append(1, 3)  # lands in the buffer of a compacted term
        assert store.get(1).tolist() == [2, 3, 4]
        assert store.num_postings == 3

    def test_extend_grouped(self):
        store = PostingsStore()
        store.extend_grouped({1: [0, 2], 2: [1], 3: []})
        assert store.get(1).tolist() == [0, 2]
        assert store.get(2).tolist() == [1]
        assert store.get(3) is None
        assert store.num_postings == 3
        assert len(store) == 2

    def test_discard_from_buffer_and_array(self):
        store = PostingsStore()
        store.extend(1, [0, 1, 2])
        assert store.get(1) is not None  # compact into the array
        store.append(1, 3)  # buffered
        assert store.discard(1, 3) is True  # from buffer
        assert store.discard(1, 1) is True  # from sorted array
        assert store.discard(1, 9) is False
        assert store.get(1).tolist() == [0, 2]
        assert store.num_postings == 2

    def test_term_dropped_when_last_posting_removed(self):
        store = PostingsStore()
        store.append(5, 0)
        assert store.discard(5, 0) is True
        assert 5 not in store
        assert len(store) == 0
        assert store.num_postings == 0

    def test_hits_concatenates_with_multiplicity(self):
        store = PostingsStore()
        store.extend(1, [0, 1])
        store.extend(2, [1, 2])
        hits = store.hits([1, 2, 99])
        assert sorted(hits.tolist()) == [0, 1, 1, 2]

    def test_postings_map_skips_absent_terms(self):
        store = PostingsStore()
        store.extend(4, [7])
        fetched = store.postings_map([4, 5])
        assert set(fetched) == {4}
        assert fetched[4].tolist() == [7]

    def test_distinct_internals(self):
        store = PostingsStore()
        store.extend(1, [0, 1])
        store.extend(2, [1, 2])
        store.append(3, 5)
        assert store.distinct_internals() == {0, 1, 2, 5}

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # term
                st.integers(min_value=0, max_value=20),  # internal
                st.booleans(),  # add or remove
            ),
            max_size=60,
        )
    )
    def test_matches_reference_dict_of_lists(self, ops):
        """The store behaves like the old dict[int, list[int]] postings."""
        store = PostingsStore()
        reference: dict[int, list[int]] = {}
        for term, internal, add in ops:
            if add:
                store.append(term, internal)
                reference.setdefault(term, []).append(internal)
            else:
                present = internal in reference.get(term, [])
                assert store.discard(term, internal) is present
                if present:
                    reference[term].remove(internal)
                    if not reference[term]:
                        del reference[term]
        assert len(store) == len(reference)
        assert store.num_postings == sum(len(v) for v in reference.values())
        for term, internals in reference.items():
            assert store.get(term).tolist() == sorted(internals)
        hits = store.hits(sorted(reference))
        assert sorted(hits.tolist()) == sorted(
            i for v in reference.values() for i in v
        )


class TestConcurrentReaders:
    def test_racing_readers_never_miss_buffered_postings(self):
        """Lazy compaction must be safe under the shared read lock.

        The serving tier admits many readers at once; the first read of
        a freshly ingested term folds its append buffer into the sorted
        array.  Two readers folding the same term concurrently must
        both observe every posting — an unguarded pop-then-publish fold
        loses the buffer for whichever reader arrives second.
        """
        trials = 300
        readers = 4
        for trial in range(trials):
            store = PostingsStore()
            store.extend(1, [10])
            assert store.get(1) is not None  # compact the base array
            store.append(1, 20)  # the buffered posting under contention
            barrier = threading.Barrier(readers)
            seen: list[list[int]] = [[] for _ in range(readers)]

            def read(slot: int) -> None:
                barrier.wait()
                seen[slot] = sorted(store.hits([1]).tolist())

            threads = [
                threading.Thread(target=read, args=(slot,))
                for slot in range(readers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for slot, got in enumerate(seen):
                assert got == [10, 20], (
                    f"trial {trial}: reader {slot} saw {got}"
                )


class TestMergeHits:
    def test_empty(self):
        ids, counts = merge_hits([])
        assert len(ids) == 0 and len(counts) == 0
        ids, counts = merge_hits([EMPTY_HITS, EMPTY_HITS])
        assert len(ids) == 0 and len(counts) == 0

    def test_counts_multiplicity_across_streams(self):
        ids, counts = merge_hits(
            [
                np.array([0, 1, 1], dtype=np.int64),
                np.array([1, 2], dtype=np.int64),
            ]
        )
        assert ids.tolist() == [0, 1, 2]
        assert counts.tolist() == [1, 3, 1]

    def test_single_stream_passthrough(self):
        ids, counts = merge_hits([np.array([3, 3, 4], dtype=np.int64)])
        assert ids.tolist() == [3, 4]
        assert counts.tolist() == [2, 1]

    @given(
        streams=st.lists(
            st.lists(st.integers(min_value=0, max_value=30), max_size=20),
            max_size=5,
        )
    )
    def test_equivalent_to_counter(self, streams):
        from collections import Counter

        reference = Counter()
        for stream in streams:
            reference.update(stream)
        ids, counts = merge_hits(
            [np.asarray(stream, dtype=np.int64) for stream in streams]
        )
        assert dict(zip(ids.tolist(), counts.tolist())) == dict(reference)


class TestCompaction:
    def test_buffered_postings_counts_unfolded(self):
        store = PostingsStore()
        store.extend(1, [3, 1])
        store.append(2, 0)
        assert store.buffered_postings == 3
        store.compact_all()
        assert store.buffered_postings == 0
        assert store.get(1).tolist() == [1, 3]
        assert store.get(2).tolist() == [0]
        assert store.num_postings == 3

    def test_compact_all_idempotent(self):
        store = PostingsStore()
        store.extend(5, [2, 1])
        store.compact_all()
        store.compact_all()
        assert store.get(5).tolist() == [1, 2]


class TestSaveLoad:
    def _populated(self):
        store = PostingsStore()
        store.extend(7, [5, 1, 3])
        store.extend(2, [0])
        store.append(7, 2)  # left buffered: save must fold it
        store.extend((1 << 63) + 11, [9, 8])  # 64-bit term
        return store

    @pytest.mark.parametrize("mmap_mode", [None, "r"])
    def test_round_trip(self, tmp_path, mmap_mode):
        store = self._populated()
        path = tmp_path / "postings.bin"
        store.save(path)
        loaded = PostingsStore.load(path, mmap_mode=mmap_mode)
        assert sorted(loaded) == sorted(store)
        assert loaded.num_postings == store.num_postings
        assert loaded.buffered_postings == 0
        for term in store:
            assert loaded.get(term).tolist() == store.get(term).tolist()
        assert loaded.get(999) is None

    def test_save_folds_buffers_first(self, tmp_path):
        store = self._populated()
        path = tmp_path / "postings.bin"
        store.save(path)
        assert store.buffered_postings == 0
        assert PostingsStore.load(path).get(7).tolist() == [1, 2, 3, 5]

    @pytest.mark.parametrize("mmap_mode", [None, "r"])
    def test_empty_store(self, tmp_path, mmap_mode):
        path = tmp_path / "empty.bin"
        PostingsStore().save(path)
        loaded = PostingsStore.load(path, mmap_mode=mmap_mode)
        assert len(loaded) == 0
        assert loaded.num_postings == 0

    def test_loaded_store_stays_mutable(self, tmp_path):
        # A memory-mapped read-only store must still absorb writes: new
        # postings land in buffers and folds build fresh arrays instead
        # of mutating the mapped pages.
        store = self._populated()
        path = tmp_path / "postings.bin"
        store.save(path)
        loaded = PostingsStore.load(path, mmap_mode="r")
        loaded.append(7, 4)
        assert loaded.get(7).tolist() == [1, 2, 3, 4, 5]
        assert loaded.discard(7, 1) is True
        assert loaded.get(7).tolist() == [2, 3, 4, 5]
        loaded.extend(100, [1])
        assert loaded.get(100).tolist() == [1]

    def test_merge_hits_over_mapped_arrays(self, tmp_path):
        store = self._populated()
        path = tmp_path / "postings.bin"
        store.save(path)
        loaded = PostingsStore.load(path, mmap_mode="r")
        ids, counts = merge_hits([loaded.hits([7, 2])])
        expected_ids, expected_counts = merge_hits([store.hits([7, 2])])
        assert ids.tolist() == expected_ids.tolist()
        assert counts.tolist() == expected_counts.tolist()

    def test_rejects_non_blob(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"not a postings blob at all")
        with pytest.raises(ValueError):
            PostingsStore.load(path)

    def test_rejects_truncated(self, tmp_path):
        store = self._populated()
        path = tmp_path / "postings.bin"
        store.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 8])
        with pytest.raises(ValueError):
            PostingsStore.load(path)
