"""Tests for repro.core.motif: fingerprint-window motif discovery."""

import pytest

from repro.core.config import GeodabConfig
from repro.core.fingerprint import Fingerprinter
from repro.core.motif import MotifMatch, discover_motif, find_common_motif
from repro.core.winnowing import Selection
from repro.core.fingerprint import FingerprintSet
from repro.geo.point import Point, destination

LONDON = Point(51.5074, -0.1278)
CONFIG = GeodabConfig(k=3, t=5)


def walk_points(n, bearing=90.0, start=LONDON, step_m=90.0):
    out = [start]
    for _ in range(n - 1):
        out.append(destination(out[-1], bearing, step_m))
    return out


def _fingerprint_set(values_positions):
    selections = [Selection(v, p) for v, p in values_positions]
    return FingerprintSet.from_selections(selections, wide=False)


class TestDiscoverMotif:
    def test_identical_windows_zero_distance(self):
        fp = _fingerprint_set([(10, 0), (20, 3), (30, 6)])
        match = discover_motif(fp, fp, num_fingerprints=2, k=3)
        assert match is not None
        assert match.distance == pytest.approx(0.0)
        assert match.jaccard == pytest.approx(1.0)

    def test_finds_embedded_common_window(self):
        a = _fingerprint_set([(1, 0), (2, 2), (3, 4), (4, 6)])
        b = _fingerprint_set([(9, 0), (2, 1), (3, 3), (8, 5)])
        match = discover_motif(a, b, num_fingerprints=2, k=3)
        assert match is not None
        # Best shared window is {2, 3}: positions 2..4 in a, 1..3 in b.
        assert match.distance == pytest.approx(0.0)
        assert match.window_i == (1, 3)
        assert match.window_j == (1, 3)

    def test_spans_cover_kgram_extent(self):
        a = _fingerprint_set([(1, 0), (2, 5), (3, 9)])
        match = discover_motif(a, a, num_fingerprints=3, k=4)
        assert match is not None
        # Span: first selection position to last position + k.
        assert match.span_i == (0, 13)

    def test_too_few_selections_returns_none(self):
        a = _fingerprint_set([(1, 0)])
        b = _fingerprint_set([(1, 0), (2, 1), (3, 2)])
        assert discover_motif(a, b, num_fingerprints=2, k=3) is None

    def test_invalid_window_raises(self):
        a = _fingerprint_set([(1, 0)])
        with pytest.raises(ValueError):
            discover_motif(a, a, num_fingerprints=0, k=3)

    def test_disjoint_sets_distance_one(self):
        a = _fingerprint_set([(1, 0), (2, 1)])
        b = _fingerprint_set([(8, 0), (9, 1)])
        match = discover_motif(a, b, num_fingerprints=2, k=3)
        assert match is not None
        assert match.distance == pytest.approx(1.0)

    def test_earliest_tie_wins(self):
        a = _fingerprint_set([(1, 0), (1, 1), (1, 2)])
        match = discover_motif(a, a, num_fingerprints=1, k=3)
        assert match is not None
        assert match.window_i == (0, 1)
        assert match.window_j == (0, 1)


class TestFindCommonMotif:
    def test_shared_segment_is_found(self):
        # Two L-shaped trajectories sharing a long east-west leg.
        shared = walk_points(25, bearing=90.0)
        a = walk_points(10, bearing=0.0, start=shared[0])[::-1] + shared
        b = shared + walk_points(10, bearing=180.0, start=shared[-1])
        match = find_common_motif(a, b, length_m=900.0, fingerprinter=CONFIG)
        assert match is not None
        assert match.distance < 1.0  # some overlap found
        assert match.jaccard > 0.0

    def test_no_fingerprints_returns_none(self):
        a = [LONDON]
        b = walk_points(30)
        assert find_common_motif(a, b, length_m=500.0, fingerprinter=CONFIG) is None

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            find_common_motif(walk_points(5), walk_points(5), length_m=0.0)

    def test_accepts_fingerprinter_instance(self):
        fp = Fingerprinter(CONFIG)
        shared = walk_points(20)
        match = find_common_motif(shared, shared, length_m=600.0, fingerprinter=fp)
        assert match is not None
        assert match.distance == pytest.approx(0.0)

    def test_window_scales_with_length(self):
        shared = walk_points(40)
        short = find_common_motif(shared, shared, length_m=400.0, fingerprinter=CONFIG)
        long = find_common_motif(shared, shared, length_m=2_000.0, fingerprinter=CONFIG)
        assert short is not None and long is not None
        short_width = short.window_i[1] - short.window_i[0]
        long_width = long.window_i[1] - long.window_i[0]
        assert long_width >= short_width
