"""Tests for repro.normalize: grid, smoothing, resampling, composition."""

import pytest

from repro.geo.geohash import encode
from repro.geo.point import Point, destination, haversine, path_length
from repro.normalize import (
    Decimator,
    GridNormalizer,
    MedianSmoother,
    MovingAverageSmoother,
    UniformResampler,
    compose,
    identity,
    standard_normalizer,
)

LONDON = Point(51.5074, -0.1278)


def walk_points(n, step_m=50.0, bearing=90.0):
    out = [LONDON]
    for _ in range(n - 1):
        out.append(destination(out[-1], bearing, step_m))
    return out


class TestGridNormalizer:
    def test_output_points_are_cell_centers(self):
        norm = GridNormalizer(30)
        for p in norm(walk_points(20)):
            cell = encode(p, 30)
            # A cell center re-encodes to its own cell.
            assert encode(p, 30) == cell

    def test_consecutive_duplicates_removed(self):
        norm = GridNormalizer(30)
        points = [LONDON] * 10
        assert len(norm(points)) == 1

    def test_jitter_within_cell_collapses(self):
        norm = GridNormalizer(30)
        # Jitter far smaller than a depth-30 cell.
        a = norm(walk_points(20, step_m=400.0))
        jittered = [destination(p, 45.0, 2.0) for p in walk_points(20, step_m=400.0)]
        b = norm(jittered)
        assert a == b

    def test_empty(self):
        assert GridNormalizer(30)([]) == []

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            GridNormalizer(0)


class TestSmoothers:
    def test_moving_average_reduces_noise(self):
        from random import Random

        from repro.workload.noise import GaussianGpsNoise

        truth = walk_points(60, step_m=10.0)
        noisy = GaussianGpsNoise(20.0, Random(1)).apply_all(truth)
        smoothed = MovingAverageSmoother(9)(noisy)
        raw_error = sum(haversine(a, b) for a, b in zip(truth, noisy))
        smooth_error = sum(haversine(a, b) for a, b in zip(truth, smoothed))
        assert smooth_error < raw_error * 0.6

    def test_moving_average_preserves_length(self):
        points = walk_points(30)
        assert len(MovingAverageSmoother(9)(points)) == 30

    def test_moving_average_window_one_is_identity(self):
        points = walk_points(10)
        assert MovingAverageSmoother(1)(points) == points

    def test_moving_average_short_input_unchanged(self):
        points = walk_points(2)
        assert MovingAverageSmoother(9)(points) == points

    def test_median_smoother_kills_outlier(self):
        points = walk_points(11, step_m=10.0)
        spiked = list(points)
        spiked[5] = destination(points[5], 0.0, 500.0)
        repaired = MedianSmoother(5)(spiked)
        assert haversine(repaired[5], points[5]) < 100.0

    def test_median_preserves_length(self):
        assert len(MedianSmoother(5)(walk_points(20))) == 20

    def test_invalid_windows(self):
        with pytest.raises(ValueError):
            MovingAverageSmoother(0)
        with pytest.raises(ValueError):
            MedianSmoother(0)


class TestResampling:
    def test_uniform_spacing(self):
        resampler = UniformResampler(100.0)
        out = resampler(walk_points(50, step_m=17.0))
        gaps = [haversine(a, b) for a, b in zip(out, out[1:])]
        assert all(g <= 110.0 for g in gaps)

    def test_resampler_invalid_step(self):
        with pytest.raises(ValueError):
            UniformResampler(0.0)

    def test_decimator_keeps_endpoints(self):
        points = walk_points(10)
        out = Decimator(4)(points)
        assert out[0] == points[0]
        assert out[-1] == points[-1]

    def test_decimator_factor_one(self):
        points = walk_points(5)
        assert Decimator(1)(points) == points

    def test_decimator_empty(self):
        assert Decimator(3)([]) == []

    def test_decimator_invalid(self):
        with pytest.raises(ValueError):
            Decimator(0)


class TestComposition:
    def test_identity(self):
        points = walk_points(5)
        assert identity(points) == points

    def test_compose_empty_is_identity(self):
        points = walk_points(5)
        assert compose()(points) == points

    def test_compose_order(self):
        # Decimate-then-smooth differs from smooth-then-decimate.
        points = walk_points(30, step_m=10.0)
        a = compose(Decimator(3), MovingAverageSmoother(5))(points)
        b = compose(MovingAverageSmoother(5), Decimator(3))(points)
        assert len(a) == len(b)
        assert a != b

    def test_standard_normalizer_shrinks_noisy_input(self):
        from random import Random

        from repro.workload.noise import GaussianGpsNoise

        norm = standard_normalizer()
        truth = walk_points(120, step_m=10.0)
        noisy = GaussianGpsNoise(20.0, Random(2)).apply_all(truth)
        out = norm(noisy)
        # Normalization collapses ~10 m steps into ~90 m cells.
        assert 0 < len(out) < len(noisy) / 2

    def test_standard_normalizer_convergence(self):
        from random import Random

        from repro.workload.noise import GaussianGpsNoise

        norm = standard_normalizer()
        truth = walk_points(120, step_m=10.0)
        a = norm(GaussianGpsNoise(20.0, Random(3)).apply_all(truth))
        b = norm(GaussianGpsNoise(20.0, Random(4)).apply_all(truth))
        shared = len(set(a) & set(b))
        # At 20 m noise over ~90 m cells roughly half the cells coincide;
        # end-task retrieval quality is asserted by the integration tests.
        assert shared / max(len(a), len(b)) >= 0.4
