"""End-to-end integration tests: the full paper pipeline on small data.

These tests tie every subsystem together: road network -> workload ->
normalization -> fingerprinting -> indexing -> ranked retrieval ->
evaluation, plus the motif-discovery and distribution paths.  They assert
the *qualitative* results of the paper's evaluation at miniature scale.
"""

import pytest

from repro.baselines.btm import btm_motif
from repro.core.baseline import GeohashIndex
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.core.motif import find_common_motif
from repro.core.fingerprint import Fingerprinter
from repro.ir.metrics import (
    average_precision,
    precision_recall_curve,
    roc_curve,
    auc,
)
from repro.normalize import standard_normalizer
from repro.workload.dataset import FORWARD


@pytest.fixture(scope="module")
def indexes(request):
    dataset = request.getfixturevalue("small_dataset")
    norm = standard_normalizer()
    geodab = GeodabIndex(GeodabConfig(), normalizer=norm)
    geohash = GeohashIndex(36, normalizer=norm)
    for record in dataset.records:
        geodab.add(record.trajectory_id, record.points)
        geohash.add(record.trajectory_id, record.points)
    return geodab, geohash


class TestRetrievalPipeline:
    def test_geodab_retrieves_relevant_records(self, indexes, small_dataset):
        geodab, _ = indexes
        found_any = 0
        for query in small_dataset.queries:
            ranked = [r.trajectory_id for r in geodab.query(query.points)]
            hits = sum(1 for rid in ranked if rid in query.relevant_ids)
            found_any += hits
        # Across queries, the index recovers most relevant records.
        total_relevant = sum(len(q.relevant_ids) for q in small_dataset.queries)
        assert found_any / total_relevant > 0.6

    def test_geodab_outranks_geohash_on_direction(self, indexes, small_dataset):
        geodab, geohash = indexes
        geodab_ap = []
        geohash_ap = []
        for query in small_dataset.queries:
            g_ranked = [r.trajectory_id for r in geodab.query(query.points)]
            h_ranked = [r.trajectory_id for r in geohash.query(query.points)]
            geodab_ap.append(average_precision(g_ranked, query.relevant_ids))
            geohash_ap.append(average_precision(h_ranked, query.relevant_ids))
        # The paper's core claim (Figure 12): geodabs rank the right
        # direction far higher than the direction-blind baseline.
        assert sum(geodab_ap) > sum(geohash_ap)

    def test_geohash_cannot_separate_directions(self, indexes, small_dataset):
        _, geohash = indexes
        query = small_dataset.queries[0]
        reverse_ids = small_dataset.relevant_ids(
            query.route_id,
            "reverse" if query.direction == FORWARD else "forward",
        )
        ranked = geohash.query(query.points)
        by_id = {r.trajectory_id: r.distance for r in ranked}
        relevant_distances = [
            by_id[rid] for rid in query.relevant_ids if rid in by_id
        ]
        reverse_distances = [by_id[rid] for rid in reverse_ids if rid in by_id]
        assert relevant_distances and reverse_distances
        # Reverse recordings sit at essentially the same distance band.
        assert min(reverse_distances) < max(relevant_distances) + 0.15

    def test_geodab_candidates_fewer_than_geohash(self, indexes, small_dataset):
        geodab, geohash = indexes
        total_geodab = 0
        total_geohash = 0
        for query in small_dataset.queries:
            total_geodab += len(geodab.candidates(query.points))
            total_geohash += len(geohash.candidates(query.points))
        # Figure 14's mechanism: geodab terms discriminate, so fewer
        # candidates reach the scoring stage.
        assert total_geodab < total_geohash

    def test_roc_auc_near_one(self, indexes, small_dataset):
        geodab, _ = indexes
        corpus = len(small_dataset)
        aucs = []
        for query in small_dataset.queries:
            ranked = [r.trajectory_id for r in geodab.query(query.points)]
            fpr, tpr = roc_curve(ranked, query.relevant_ids, corpus)
            aucs.append(auc(fpr, tpr))
        assert sum(aucs) / len(aucs) > 0.85

    def test_pr_curve_shape(self, indexes, small_dataset):
        geodab, _ = indexes
        query = small_dataset.queries[0]
        ranked = [r.trajectory_id for r in geodab.query(query.points)]
        if not ranked:
            pytest.skip("query returned nothing on this tiny dataset")
        curve = precision_recall_curve(ranked, query.relevant_ids)
        # Early precision beats late precision (ranked retrieval works).
        assert curve[0].precision >= curve[-1].precision


class TestMotifPipeline:
    def test_geodab_motif_agrees_with_btm_location(self, small_dataset):
        # Two same-route recordings share (essentially) their whole path;
        # both methods should find a strongly matching motif.
        group = small_dataset.groups()[(0, FORWARD)]
        a, b = group[0].points, group[1].points
        norm = standard_normalizer()
        na, nb = norm(a), norm(b)
        match = find_common_motif(
            na, nb, length_m=700.0, fingerprinter=GeodabConfig()
        )
        assert match is not None
        assert match.distance < 0.9
        exact = btm_motif(list(a)[:80], list(b)[:80], 30)
        # The exact DFD motif over same-route noisy recordings is tight
        # (bounded by a few noise standard deviations).
        assert exact.distance < 150.0

    def test_fingerprint_density_supports_length_translation(self, small_dataset):
        fingerprinter = Fingerprinter(GeodabConfig())
        norm = standard_normalizer()
        record = small_dataset.records[0]
        from repro.geo.point import path_length

        normalized = norm(record.points)
        fp = fingerprinter.fingerprint(normalized)
        length = path_length(normalized)
        density = len(fp.selections) / length
        # Sanity band: one fingerprint every 100-1500 m under the paper
        # configuration (w = 7 windows over ~90 m cells).
        assert 1 / 1500.0 < density < 1 / 100.0


class TestRemoveAndRequery:
    def test_index_remains_consistent_after_removal(self, small_dataset):
        norm = standard_normalizer()
        index = GeodabIndex(GeodabConfig(), normalizer=norm)
        for record in small_dataset.records:
            index.add(record.trajectory_id, record.points)
        victim = small_dataset.records[0].trajectory_id
        index.remove(victim)
        for query in small_dataset.queries:
            ranked = [r.trajectory_id for r in index.query(query.points)]
            assert victim not in ranked
