"""Tests for repro.baselines.btm: exact bounding-based motif discovery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.btm import btm_motif, naive_motif
from repro.distance.frechet import discrete_frechet
from repro.geo.point import Point, destination

from .conftest import city_points

LONDON = Point(51.5074, -0.1278)


def walk_points(n, bearing=90.0, start=LONDON, step_m=50.0):
    out = [start]
    for _ in range(n - 1):
        out.append(destination(out[-1], bearing, step_m))
    return out


class TestExactness:
    @given(
        st.lists(city_points(), min_size=4, max_size=9),
        st.lists(city_points(), min_size=4, max_size=9),
        st.integers(min_value=2, max_value=4),
    )
    def test_btm_matches_naive(self, p, q, length):
        if len(p) < length or len(q) < length:
            return
        fast = btm_motif(p, q, length)
        slow = naive_motif(p, q, length)
        assert fast.distance == pytest.approx(slow.distance, rel=1e-9, abs=1e-6)

    def test_btm_result_is_true_dfd(self):
        p = walk_points(12)
        q = walk_points(10, bearing=85.0, start=destination(LONDON, 0.0, 40.0))
        result = btm_motif(p, q, 5)
        window_p = p[result.start_i : result.start_i + 5]
        window_q = q[result.start_j : result.start_j + 5]
        assert result.distance == pytest.approx(
            discrete_frechet(window_p, window_q), rel=1e-9
        )

    def test_identical_trajectories_find_zero_motif(self):
        p = walk_points(10)
        result = btm_motif(p, list(p), 4)
        assert result.distance == pytest.approx(0.0, abs=1e-9)
        assert result.start_i == result.start_j

    def test_shared_segment_located(self):
        # Trajectory q contains p's middle segment exactly.
        p = walk_points(15)
        q = p[5:12]
        result = btm_motif(p, q, 5)
        assert result.distance == pytest.approx(0.0, abs=1e-9)
        assert result.start_i == 5 + result.start_j


class TestValidation:
    def test_length_too_large(self):
        with pytest.raises(ValueError):
            btm_motif(walk_points(4), walk_points(10), 5)
        with pytest.raises(ValueError):
            naive_motif(walk_points(10), walk_points(4), 5)

    def test_length_not_positive(self):
        with pytest.raises(ValueError):
            btm_motif(walk_points(4), walk_points(4), 0)

    def test_motif_equals_full_length(self):
        p = walk_points(6)
        q = walk_points(6, bearing=88.0)
        result = btm_motif(p, q, 6)
        assert result.start_i == 0 and result.start_j == 0
        assert result.distance == pytest.approx(discrete_frechet(p, q), rel=1e-9)


class TestPruning:
    def test_pruning_saves_work(self):
        # Two far-apart bundles: most window pairs prune via bounds.
        p = walk_points(30)
        q = walk_points(30, start=destination(LONDON, 0.0, 30.0), bearing=89.0)
        result = btm_motif(p, q, 8)
        total_pairs = (30 - 8 + 1) ** 2
        assert result.evaluated + result.pruned == total_pairs
        assert result.evaluated < total_pairs

    def test_accounting_consistent(self):
        p = walk_points(12)
        q = walk_points(12, bearing=91.0)
        result = btm_motif(p, q, 4)
        assert result.evaluated >= 1
        assert result.pruned >= 0
        assert result.evaluated + result.pruned == (12 - 4 + 1) ** 2
