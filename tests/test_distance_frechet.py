"""Tests for repro.distance.frechet: discrete Frechet distance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.frechet import (
    discrete_frechet,
    discrete_frechet_matrix,
    frechet_reference,
    greedy_frechet_upper_bound,
)
from repro.distance.haversine import pairwise_ground_distance
from repro.geo.point import Point, haversine

from .conftest import city_points


def short_trajectories(min_size=1, max_size=6):
    return st.lists(city_points(), min_size=min_size, max_size=max_size)


def _line(n, lat0=51.50, lon=-0.12, step=1e-4):
    return [Point(lat0 + i * step, lon) for i in range(n)]


class TestDiscreteFrechet:
    def test_identical_is_zero(self):
        t = _line(8)
        assert discrete_frechet(t, t) == pytest.approx(0.0, abs=1e-9)

    def test_single_points(self):
        p = [Point(51.5, -0.12)]
        q = [Point(51.55, -0.12)]
        assert discrete_frechet(p, q) == pytest.approx(haversine(p[0], q[0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            discrete_frechet([], _line(3))
        with pytest.raises(ValueError):
            discrete_frechet(_line(3), [])

    def test_parallel_lines_is_offset(self):
        # DFD of two parallel lines is the constant offset (the leash
        # never needs to stretch further).
        p = _line(6)
        q = [Point(pt.lat, pt.lon + 2e-4) for pt in p]
        assert discrete_frechet(p, q) == pytest.approx(
            haversine(p[0], q[0]), rel=1e-6
        )

    def test_endpoint_anchoring(self):
        # DFD couples endpoints, so a reversed trajectory is far.
        p = _line(10)
        assert discrete_frechet(p, list(reversed(p))) == pytest.approx(
            haversine(p[0], p[-1]), rel=1e-6
        )

    @given(short_trajectories(), short_trajectories())
    def test_matches_reference_recursion(self, p, q):
        assert discrete_frechet(p, q) == pytest.approx(
            frechet_reference(p, q), rel=1e-9, abs=1e-6
        )

    @given(short_trajectories(max_size=5), short_trajectories(max_size=5))
    def test_symmetry(self, p, q):
        assert discrete_frechet(p, q) == pytest.approx(
            discrete_frechet(q, p), rel=1e-9, abs=1e-6
        )

    @given(short_trajectories(min_size=2), short_trajectories(min_size=2))
    def test_at_least_endpoint_distances(self, p, q):
        # The coupled first and last pairs lower-bound the DFD (the bound
        # the BTM baseline prunes with).
        d = discrete_frechet(p, q)
        assert d >= haversine(p[0], q[0]) - 1e-6
        assert d >= haversine(p[-1], q[-1]) - 1e-6

    @given(short_trajectories(max_size=5), short_trajectories(max_size=5))
    def test_dfd_bounded_by_max_pairwise(self, p, q):
        dist = pairwise_ground_distance(p, q)
        assert discrete_frechet(p, q) <= dist.max() + 1e-6

    def test_matrix_variant_matches(self):
        p = _line(7)
        q = _line(9, lon=-0.1205)
        dist = pairwise_ground_distance(p, q)
        assert discrete_frechet_matrix(dist) == pytest.approx(
            discrete_frechet(p, q)
        )

    def test_submatrix_motif_usage(self):
        # BTM slices one big matrix; slicing must equal recomputation.
        p = _line(10)
        q = _line(10, lon=-0.1203)
        dist = pairwise_ground_distance(p, q)
        window = discrete_frechet_matrix(dist[2:7, 3:8])
        direct = discrete_frechet(p[2:7], q[3:8])
        assert window == pytest.approx(direct)


class TestGreedyUpperBound:
    @given(short_trajectories(min_size=1), short_trajectories(min_size=1))
    def test_is_an_upper_bound(self, p, q):
        assert greedy_frechet_upper_bound(p, q) >= discrete_frechet(p, q) - 1e-6

    def test_tight_for_parallel_lines(self):
        p = _line(5)
        q = [Point(pt.lat, pt.lon + 1e-4) for pt in p]
        assert greedy_frechet_upper_bound(p, q) == pytest.approx(
            discrete_frechet(p, q), rel=1e-6
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            greedy_frechet_upper_bound([], _line(2))
