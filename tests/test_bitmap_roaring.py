"""Tests for repro.bitmap.roaring: RoaringBitmap and Roaring64Map."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitmap.roaring import Roaring64Map, RoaringBitmap


def value_sets(max_size=200):
    """Sets spanning several containers, mixing dense and sparse regions."""
    return st.sets(
        st.one_of(
            st.integers(min_value=0, max_value=2**32 - 1),
            st.integers(min_value=0, max_value=300),
            st.integers(min_value=2**16 - 50, max_value=2**16 + 50),
        ),
        max_size=max_size,
    )


class TestBasics:
    def test_empty(self):
        rb = RoaringBitmap()
        assert len(rb) == 0
        assert not rb
        assert 0 not in rb
        assert list(rb) == []

    def test_add_contains_len(self):
        rb = RoaringBitmap()
        rb.add(0)
        rb.add(2**32 - 1)
        rb.add(65_536)
        rb.add(0)  # duplicate
        assert len(rb) == 3
        assert 0 in rb and 65_536 in rb and 2**32 - 1 in rb
        assert 1 not in rb

    def test_out_of_universe_rejected(self):
        rb = RoaringBitmap()
        with pytest.raises(ValueError):
            rb.add(-1)
        with pytest.raises(ValueError):
            rb.add(2**32)

    def test_contains_non_int(self):
        rb = RoaringBitmap.from_iterable([1])
        assert "1" not in rb
        assert -5 not in rb

    def test_discard_and_remove(self):
        rb = RoaringBitmap.from_iterable([1, 2, 3])
        rb.discard(2)
        assert 2 not in rb
        rb.discard(99)  # absent: no error
        with pytest.raises(KeyError):
            rb.remove(99)
        rb.remove(1)
        assert len(rb) == 1

    def test_discard_drops_empty_container(self):
        rb = RoaringBitmap.from_iterable([70_000])
        rb.discard(70_000)
        assert len(rb) == 0
        assert list(rb) == []

    def test_iteration_sorted(self):
        values = [5, 2**20, 3, 2**31, 100]
        rb = RoaringBitmap.from_iterable(values)
        assert list(rb) == sorted(values)

    def test_from_numpy(self):
        arr = np.array([9, 1, 9, 2**17], dtype=np.int64)
        rb = RoaringBitmap.from_numpy(arr)
        assert list(rb) == [1, 9, 2**17]

    def test_from_numpy_rejects_negative(self):
        with pytest.raises(ValueError):
            RoaringBitmap.from_numpy(np.array([-1]))

    def test_to_numpy_roundtrip(self):
        values = sorted({1, 2, 70_000, 2**31 + 5})
        rb = RoaringBitmap.from_iterable(values)
        assert rb.to_numpy().tolist() == values

    def test_copy_is_independent(self):
        rb = RoaringBitmap.from_iterable([1, 2])
        clone = rb.copy()
        clone.add(3)
        assert 3 not in rb
        assert 3 in clone


class TestOrderStatistics:
    def test_min_max(self):
        rb = RoaringBitmap.from_iterable([42, 7, 2**30])
        assert rb.min() == 7
        assert rb.max() == 2**30

    def test_min_empty_raises(self):
        with pytest.raises(ValueError):
            RoaringBitmap().min()

    def test_rank(self):
        rb = RoaringBitmap.from_iterable([10, 20, 70_000])
        assert rb.rank(9) == 0
        assert rb.rank(10) == 1
        assert rb.rank(69_999) == 2
        assert rb.rank(2**32 - 1) == 3

    def test_select(self):
        values = sorted({10, 20, 70_000, 2**25})
        rb = RoaringBitmap.from_iterable(values)
        for i, v in enumerate(values):
            assert rb.select(i) == v

    def test_select_out_of_range(self):
        rb = RoaringBitmap.from_iterable([1])
        with pytest.raises(IndexError):
            rb.select(1)
        with pytest.raises(IndexError):
            rb.select(-1)

    @given(value_sets(max_size=80))
    def test_rank_select_inverse(self, values):
        rb = RoaringBitmap.from_iterable(values)
        for i in range(len(values)):
            assert rb.rank(rb.select(i)) == i + 1


class TestSetAlgebra:
    @given(value_sets(), value_sets())
    def test_matches_python_sets(self, a, b):
        ra = RoaringBitmap.from_iterable(a)
        rb = RoaringBitmap.from_iterable(b)
        assert set(ra | rb) == a | b
        assert set(ra & rb) == a & b
        assert set(ra - rb) == a - b
        assert set(ra ^ rb) == a ^ b
        assert ra.intersection_cardinality(rb) == len(a & b)
        assert ra.union_cardinality(rb) == len(a | b)
        assert ra.isdisjoint(rb) == a.isdisjoint(b)
        assert ra.issubset(rb) == (a <= b)

    @given(value_sets())
    def test_self_operations(self, a):
        ra = RoaringBitmap.from_iterable(a)
        assert set(ra & ra) == a
        assert set(ra | ra) == a
        assert len(ra - ra) == 0
        assert len(ra ^ ra) == 0

    def test_equality(self):
        a = RoaringBitmap.from_iterable([1, 2, 70_000])
        b = RoaringBitmap.from_iterable([70_000, 2, 1])
        assert a == b
        b.add(5)
        assert a != b
        assert a != "not a bitmap"

    def test_dense_promotion_equality(self):
        # Same logical set in array vs bitmap container forms.
        a = RoaringBitmap.from_iterable(range(5000))
        b = RoaringBitmap()
        for v in range(5000):
            b.add(v)
        assert a == b


class TestJaccard:
    def test_identical(self):
        a = RoaringBitmap.from_iterable([1, 2, 3])
        assert a.jaccard(a) == 1.0
        assert a.jaccard_distance(a) == 0.0

    def test_disjoint(self):
        a = RoaringBitmap.from_iterable([1])
        b = RoaringBitmap.from_iterable([2])
        assert a.jaccard(b) == 0.0
        assert a.jaccard_distance(b) == 1.0

    def test_both_empty(self):
        # Defined edge case: empty/empty is maximally distant (the
        # 0/0 coefficient is 0.0), never a ZeroDivisionError.
        assert RoaringBitmap().jaccard(RoaringBitmap()) == 0.0
        assert RoaringBitmap().jaccard_distance(RoaringBitmap()) == 1.0

    def test_half_overlap(self):
        a = RoaringBitmap.from_iterable([1, 2])
        b = RoaringBitmap.from_iterable([2, 3])
        assert a.jaccard(b) == pytest.approx(1 / 3)

    @given(value_sets(max_size=60), value_sets(max_size=60), value_sets(max_size=60))
    def test_jaccard_distance_triangle_inequality(self, a, b, c):
        # Equation 1 obeys the triangle inequality (Kosub 2016).
        ra = RoaringBitmap.from_iterable(a)
        rb = RoaringBitmap.from_iterable(b)
        rc = RoaringBitmap.from_iterable(c)
        dab = ra.jaccard_distance(rb)
        dbc = rb.jaccard_distance(rc)
        dac = ra.jaccard_distance(rc)
        assert dac <= dab + dbc + 1e-12


class TestMaintenance:
    def test_serialize_roundtrip(self):
        values = set(range(0, 10_000, 3)) | {2**31, 2**32 - 1}
        rb = RoaringBitmap.from_iterable(values)
        blob = rb.serialize()
        assert RoaringBitmap.deserialize(blob) == rb

    def test_serialize_empty(self):
        assert RoaringBitmap.deserialize(RoaringBitmap().serialize()) == RoaringBitmap()

    def test_run_optimize_preserves_contents(self):
        rb = RoaringBitmap.from_iterable(range(100_000, 140_000))
        before = rb.to_numpy().tolist()
        rb.run_optimize()
        assert rb.to_numpy().tolist() == before
        stats = rb.container_stats()
        assert stats["run"] >= 1

    def test_byte_size_reflects_compression(self):
        dense_run = RoaringBitmap.from_iterable(range(60_000))
        dense_run.run_optimize()
        scattered = RoaringBitmap.from_iterable(range(0, 60_000 * 16, 16))
        assert dense_run.byte_size() < scattered.byte_size()

    def test_container_stats_kinds(self):
        rb = RoaringBitmap.from_iterable(list(range(5000)) + [2**20])
        stats = rb.container_stats()
        assert stats["bitmap"] == 1
        assert stats["array"] == 1


class TestRoaring64:
    def test_add_contains(self):
        m = Roaring64Map.from_iterable([1, 2**40, 2**63])
        assert 1 in m
        assert 2**40 in m
        assert 2**63 in m
        assert 2**41 not in m
        assert len(m) == 3

    def test_out_of_universe(self):
        m = Roaring64Map()
        with pytest.raises(ValueError):
            m.add(2**64)
        with pytest.raises(ValueError):
            m.add(-1)

    def test_iteration_sorted(self):
        values = [2**40, 5, 2**33, 6]
        m = Roaring64Map.from_iterable(values)
        assert list(m) == sorted(values)

    @given(
        st.sets(st.integers(min_value=0, max_value=2**64 - 1), max_size=80),
        st.sets(st.integers(min_value=0, max_value=2**64 - 1), max_size=80),
    )
    def test_algebra_matches_sets(self, a, b):
        ma = Roaring64Map.from_iterable(a)
        mb = Roaring64Map.from_iterable(b)
        assert set(ma | mb) == a | b
        assert set(ma & mb) == a & b
        assert ma.intersection_cardinality(mb) == len(a & b)

    def test_jaccard(self):
        a = Roaring64Map.from_iterable([1, 2**40])
        b = Roaring64Map.from_iterable([2**40, 7])
        assert a.jaccard(b) == pytest.approx(1 / 3)
        assert a.jaccard_distance(b) == pytest.approx(2 / 3)
        # The regression target of PR 5's edge-case fix: two empty maps
        # have a *defined* distance of 1.0 (no ZeroDivisionError, and
        # no spurious perfect match).
        assert Roaring64Map().jaccard(Roaring64Map()) == 0.0
        assert Roaring64Map().jaccard_distance(Roaring64Map()) == 1.0

    def test_equality(self):
        a = Roaring64Map.from_iterable([1, 2**50])
        b = Roaring64Map.from_iterable([2**50, 1])
        assert a == b
        b.add(3)
        assert a != b
