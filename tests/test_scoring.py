"""Tests for repro.core.scoring: the vectorized top-k ranking engine.

The load-bearing property: :func:`repro.core.scoring.rank_candidates`
is *bit-identical* to the retired per-candidate bitmap loop
(:func:`rank_candidates_scalar`, kept on both backends as
``score_matches_scalar``) — same ranks, same float distances, same
``(distance, str(id))`` tie-breaks — including after removals, recycled
slots, and a v2 snapshot warm start.  Pruning (``max_distance`` < 1)
may only skip work, never change results.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.arena import TOMBSTONE_CARD, CardinalityColumn, SlotArena
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.core.persistence import load_index, save_index
from repro.core.postings import merge_hits
from repro.core.scoring import (
    SearchResult,
    rank_candidates,
    rank_candidates_scalar,
)
from repro.geo.point import Point

CONFIG = GeodabConfig(k=3, t=5)
SHARDING = ShardingConfig(num_shards=8, num_nodes=2, placement="hash")


def walk_points(n, seed=0, start=Point(51.5074, -0.1278)):
    """A deterministic jittered random walk near London."""
    rng = random.Random(seed)
    lat, lon = start.lat, start.lon
    points = []
    for _ in range(n):
        lat += rng.uniform(-8e-4, 8e-4)
        lon += rng.uniform(-1.2e-3, 1.2e-3)
        points.append(Point(lat, lon))
    return points


#: Shared corpus: fingerprinted once, re-inserted per example through
#: ``add_fingerprints_many`` so hypothesis examples stay cheap.
CORPUS = [
    (f"t{i:03d}", walk_points(rng_n, seed=i))
    for i, rng_n in enumerate([20 + (7 * i) % 25 for i in range(24)])
]
_FINGERPRINTER_INDEX = GeodabIndex(CONFIG)
FINGERPRINTS = _FINGERPRINTER_INDEX.fingerprint_many(
    points for _, points in CORPUS
)
QUERIES = [walk_points(30, seed=100 + i) for i in range(6)] + [
    points for _, points in CORPUS[:4]
]


def build_single() -> GeodabIndex:
    return GeodabIndex(CONFIG)


def build_sharded() -> ShardedGeodabIndex:
    return ShardedGeodabIndex(CONFIG, SHARDING)


def populate(index, alive):
    """Insert the corpus rows whose positions are in ``alive``."""
    index.add_fingerprints_many(
        (CORPUS[i][0], FINGERPRINTS[i], None) for i in sorted(alive)
    )


def matches_for(index, prepared):
    return merge_hits(
        index.shard_partial(shard_id, shard_terms)
        for shard_id, shard_terms in prepared.plan.items()
    )


def apply_churn(index, toggles):
    """Remove live / re-add removed corpus rows, exercising recycling."""
    alive = {i for i in range(len(CORPUS)) if CORPUS[i][0] in index}
    for i in toggles:
        trajectory_id, _ = CORPUS[i]
        if i in alive:
            index.remove(trajectory_id)
            alive.discard(i)
        else:
            index.add_fingerprints(trajectory_id, FINGERPRINTS[i])
            alive.add(i)
    return alive


class TestCardinalityColumn:
    def test_set_get_view(self):
        column = CardinalityColumn()
        column.set(0, 5)
        column.set(1, 0)
        column.set(2, TOMBSTONE_CARD)
        assert len(column) == 3
        assert column.get(0) == 5
        assert column.get(2) == TOMBSTONE_CARD
        assert column.view().tolist() == [5, 0, -1]

    def test_growth_preserves_values(self):
        column = CardinalityColumn()
        for slot in range(100):
            column.set(slot, slot * 2)
        assert column.view().tolist() == [slot * 2 for slot in range(100)]

    def test_out_of_range_get(self):
        column = CardinalityColumn()
        column.set(0, 1)
        with pytest.raises(IndexError):
            column.get(1)

    def test_overwrite_recycled_slot(self):
        column = CardinalityColumn()
        column.set(0, 7)
        column.set(0, TOMBSTONE_CARD)
        column.set(0, 3)
        assert column.get(0) == 3

    def test_arena_requires_cardinalities_on_restore(self):
        arena = SlotArena(num_columns=1, track_cardinality=True)
        with pytest.raises(ValueError):
            arena.restore(["a"], ([1],))


class TestRankCandidatesUnit:
    IDS = ["a", "b", "c", "d"]

    def test_empty_matches(self):
        empty = np.empty(0, dtype=np.int64)
        results, stats = rank_candidates(
            (empty, empty), np.empty(0, dtype=np.int64), [], 5
        )
        assert results == []
        assert (stats.candidates, stats.pruned, stats.scored) == (0, 0, 0)

    def test_tombstones_masked(self):
        internals = np.array([0, 1, 2], dtype=np.int64)
        counts = np.array([3, 3, 3], dtype=np.int64)
        cards = np.array([4, TOMBSTONE_CARD, 4, 9], dtype=np.int64)
        results, stats = rank_candidates((internals, counts), cards, self.IDS, 4)
        assert [r.trajectory_id for r in results] == ["a", "c"]
        assert stats.candidates == 2

    def test_distance_value_and_tie_break(self):
        # Two candidates at the same distance must order by str(id).
        internals = np.array([2, 0], dtype=np.int64)
        counts = np.array([2, 2], dtype=np.int64)
        cards = np.array([4, -1, 4, -1], dtype=np.int64)
        results, _ = rank_candidates((internals, counts), cards, self.IDS, 4)
        assert [r.trajectory_id for r in results] == ["a", "c"]
        assert results[0].distance == 1.0 - 2 / 6

    def test_limit_cut_respects_ties(self):
        # Three candidates tied at the best distance: limit=2 must keep
        # the two smallest str(id), exactly like sorting everything.
        internals = np.array([0, 2, 3, 1], dtype=np.int64)
        counts = np.array([2, 2, 2, 1], dtype=np.int64)
        cards = np.array([4, 4, 4, 4], dtype=np.int64)
        results, _ = rank_candidates(
            (internals, counts), cards, self.IDS, 4, limit=2
        )
        assert [r.trajectory_id for r in results] == ["a", "c"]

    def test_max_distance_prunes_before_scoring(self):
        # |Q|=10 against a candidate sharing 1 of its 10 terms: distance
        # 1 - 1/19 is far above 0.3, so the overlap threshold cuts it
        # without scoring; the strong candidate survives.
        internals = np.array([0, 1], dtype=np.int64)
        counts = np.array([9, 1], dtype=np.int64)
        cards = np.array([10, 10], dtype=np.int64)
        results, stats = rank_candidates(
            (internals, counts), cards, ["strong", "weak"], 10,
            max_distance=0.3,
        )
        assert [r.trajectory_id for r in results] == ["strong"]
        assert stats.pruned == 1
        assert stats.scored == 1

    def test_prune_never_drops_boundary_candidate(self):
        # distance == max_distance exactly: must be kept (<=), and the
        # conservative prune must not cut it.
        internals = np.array([0], dtype=np.int64)
        counts = np.array([5], dtype=np.int64)
        cards = np.array([5], dtype=np.int64)
        # |Q|=5, |T|=5, inter=5 -> distance 0.0 at max_distance 0.0.
        results, stats = rank_candidates(
            (internals, counts), cards, ["x"], 5, max_distance=0.0
        )
        assert [r.trajectory_id for r in results] == ["x"]
        assert stats.pruned == 0

    def test_scalar_oracle_agrees_on_synthetic_input(self):
        # Direct cross-check of the two module-level functions.
        from repro.bitmap.roaring import RoaringBitmap

        bitmaps = [
            RoaringBitmap.from_iterable(range(0, 8)),
            RoaringBitmap.from_iterable(range(4, 12)),
        ]
        query = RoaringBitmap.from_iterable(range(2, 9))
        internals = np.array([0, 1], dtype=np.int64)
        counts = np.array([6, 5], dtype=np.int64)
        cards = np.array([8, 8], dtype=np.int64)
        ids = ["p", "q"]
        fast, _ = rank_candidates((internals, counts), cards, ids, len(query))
        slow = rank_candidates_scalar(
            (internals, counts), bitmaps, ids, query
        )
        assert fast == slow


class TestEngineIdentity:
    """Hypothesis: engine == scalar oracle on both backends."""

    @settings(max_examples=20)
    @given(
        toggles=st.lists(
            st.integers(min_value=0, max_value=len(CORPUS) - 1),
            max_size=20,
        ),
        limit=st.sampled_from([None, 1, 3, 10]),
        max_distance=st.sampled_from([1.0, 0.9, 0.6, 0.3, 0.0]),
        query_at=st.integers(min_value=0, max_value=len(QUERIES) - 1),
        builder=st.sampled_from([build_single, build_sharded]),
    )
    def test_rank_distance_and_tiebreak_identity(
        self, toggles, limit, max_distance, query_at, builder
    ):
        index = builder()
        populate(index, range(len(CORPUS)))
        apply_churn(index, toggles)
        prepared = index.prepare_query(QUERIES[query_at])
        matches = matches_for(index, prepared)
        fast = index.score_matches(prepared, matches, limit, max_distance)
        slow = index.score_matches_scalar(prepared, matches, limit, max_distance)
        # Dataclass equality is exact: same ids, bit-identical float
        # distances, same shared-term counts, same order.
        assert fast == slow
        if limit is not None:
            assert len(fast) <= limit

    @settings(max_examples=10)
    @given(
        toggles=st.lists(
            st.integers(min_value=0, max_value=len(CORPUS) - 1),
            max_size=12,
        ),
        builder=st.sampled_from([build_single, build_sharded]),
    )
    def test_query_prepared_matches_oracle_after_churn(self, toggles, builder):
        index = builder()
        populate(index, range(len(CORPUS)))
        apply_churn(index, toggles)
        for points in QUERIES[:3]:
            prepared = index.prepare_query(points)
            matches = matches_for(index, prepared)
            results, fanout = index.query_prepared(prepared, limit=5)
            assert results == index.score_matches_scalar(
                prepared, matches, limit=5
            )
            assert fanout.pruned == 0  # max_distance defaulted to 1.0

    def test_single_vs_sharded_identical(self):
        single, sharded = build_single(), build_sharded()
        populate(single, range(len(CORPUS)))
        populate(sharded, range(len(CORPUS)))
        for trajectory_id in ("t003", "t010"):
            single.remove(trajectory_id)
            sharded.remove(trajectory_id)
        for points in QUERIES:
            assert single.query(points, limit=10) == sharded.query(
                points, limit=10
            )

    def test_pruning_changes_no_results(self):
        index = build_single()
        populate(index, range(len(CORPUS)))
        for points in QUERIES:
            prepared = index.prepare_query(points)
            matches = matches_for(index, prepared)
            for max_distance in (0.9, 0.5, 0.2):
                results, scoring = index.rank_matches(
                    prepared, matches, None, max_distance
                )
                assert results == index.score_matches_scalar(
                    prepared, matches, None, max_distance
                )
                # Everything pruned would have failed max_distance.
                assert scoring.pruned <= scoring.candidates - scoring.scored

    def test_stats_pruned_counts_weak_candidates(self):
        index = build_single()
        populate(index, range(len(CORPUS)))
        # A near-duplicate query at a strict threshold: its re-recording
        # matches, while unrelated walks sharing a stray term get pruned.
        points = CORPUS[0][1]
        _, stats = index.query_with_stats(points, max_distance=0.5)
        assert stats.pruned >= 0
        assert stats.pruned + stats.scored <= stats.candidates

    def test_empty_fingerprint_query(self):
        # Too few points to form a single k-gram: the fingerprint set is
        # empty and both paths agree nothing matches (the empty set is
        # maximally distant — the Equation-1 edge case fixed this PR).
        index = build_single()
        populate(index, range(len(CORPUS)))
        points = walk_points(2, seed=7)
        prepared = index.prepare_query(points)
        assert len(prepared.query_bitmap) == 0
        matches = matches_for(index, prepared)
        assert index.score_matches(prepared, matches) == []
        assert index.score_matches_scalar(prepared, matches) == []
        assert index.query(points) == []

    def test_query_terms_tolerates_duplicate_terms(self):
        # The public query_terms surface must dedupe: with repeats, the
        # raw hit-stream multiplicity would overshoot |Q ∩ T| and drive
        # the computed union to zero or below (the pre-refactor bitmap
        # loop was immune because it ignored the counts for distances).
        index = build_single()
        populate(index, {0})
        terms = sorted(set(FINGERPRINTS[0].values))
        with np.errstate(all="raise"):
            results, stats = index.query_terms(
                terms + terms, FINGERPRINTS[0].bitmap
            )
        assert [r.trajectory_id for r in results] == ["t000"]
        assert results[0].distance == 0.0
        assert stats.query_terms == len(terms)

    def test_searchresult_moved_but_importable_from_index(self):
        from repro.core.index import SearchResult as FromIndex

        assert FromIndex is SearchResult

    def test_hot_path_performs_no_bitmap_jaccard(self, monkeypatch):
        # The acceptance criterion of the refactor: ranking candidates
        # must never intersect bitmaps.  Make every bitmap Jaccard call
        # explode and run full queries on both backends.
        from repro.bitmap.roaring import Roaring64Map, RoaringBitmap

        def boom(self, other):
            raise AssertionError("per-candidate bitmap Jaccard on the hot path")

        monkeypatch.setattr(RoaringBitmap, "jaccard_distance", boom)
        monkeypatch.setattr(Roaring64Map, "jaccard_distance", boom)
        monkeypatch.setattr(RoaringBitmap, "jaccard", boom)
        monkeypatch.setattr(Roaring64Map, "jaccard", boom)
        for builder in (build_single, build_sharded):
            index = builder()
            populate(index, range(len(CORPUS)))
            index.remove(CORPUS[0][0])
            # QUERIES[7] is t001's own point list: an exact self-match
            # survives any threshold, so results are guaranteed.
            results = index.query(QUERIES[7], limit=5, max_distance=0.9)
            assert any(r.trajectory_id == "t001" for r in results)
            _, stats = index.query_with_stats(QUERIES[0], limit=5)


class TestCardinalityInvariant:
    """``cards[slot] == |term set|`` survives add/remove/re-add churn."""

    @settings(max_examples=20)
    @given(
        toggles=st.lists(
            st.integers(min_value=0, max_value=len(CORPUS) - 1),
            max_size=30,
        ),
        builder=st.sampled_from([build_single, build_sharded]),
    )
    def test_card_matches_term_set_after_churn(self, toggles, builder):
        index = builder()
        populate(index, range(len(CORPUS)))
        alive = apply_churn(index, toggles)
        self.assert_column_consistent(index, alive)

    @staticmethod
    def assert_column_consistent(index, alive):
        arena = index._arena
        assert arena.cardinalities is not None
        cards = arena.cardinalities.view()
        assert len(cards) == len(arena.ids)
        bitmap_column = arena.columns[0]
        for i in range(len(CORPUS)):
            trajectory_id = CORPUS[i][0]
            if i in alive:
                slot = arena.id_to_internal[trajectory_id]
                assert cards[slot] == len(bitmap_column[slot])
                assert cards[slot] == len(FINGERPRINTS[i].bitmap)
            else:
                assert trajectory_id not in arena.id_to_internal
        for slot, external_id in enumerate(arena.ids):
            from repro.core.arena import TOMBSTONE

            if external_id is TOMBSTONE:
                assert cards[slot] == TOMBSTONE_CARD
            else:
                assert cards[slot] == len(bitmap_column[slot])

    @settings(max_examples=8)
    @given(
        toggles=st.lists(
            st.integers(min_value=0, max_value=len(CORPUS) - 1),
            max_size=10,
        ),
        builder=st.sampled_from([build_single, build_sharded]),
        mmap_mode=st.sampled_from([None, "r"]),
    )
    def test_snapshot_round_trip_keeps_column(self, toggles, builder, mmap_mode):
        import tempfile
        from pathlib import Path

        index = builder()
        populate(index, range(len(CORPUS)))
        alive = apply_churn(index, toggles)
        with tempfile.TemporaryDirectory() as tmp:
            target = Path(tmp) / "snap"
            save_index(index, target)
            loaded = load_index(target, mmap_mode=mmap_mode)
            self._check_loaded(index, loaded, alive)

    def _check_loaded(self, index, loaded, alive):
        self.assert_column_consistent(loaded, alive)
        # Warm-started engine still matches the oracle bit for bit.
        for points in QUERIES[:3]:
            prepared = loaded.prepare_query(points)
            matches = matches_for(loaded, prepared)
            assert loaded.score_matches(
                prepared, matches, 5
            ) == loaded.score_matches_scalar(prepared, matches, 5)
            assert loaded.query(points, limit=5) == index.query(points, limit=5)

    def test_remove_readd_recycles_slot_with_fresh_cardinality(self):
        index = build_single()
        populate(index, {0, 1})
        arena = index._arena
        slot = arena.id_to_internal["t000"]
        index.remove("t000")
        assert arena.cardinalities.get(slot) == TOMBSTONE_CARD
        # Recycled slot must pick up the *new* document's cardinality.
        index.add_fingerprints("x", FINGERPRINTS[5])
        assert arena.id_to_internal["x"] == slot
        assert arena.cardinalities.get(slot) == len(FINGERPRINTS[5].bitmap)
