"""Tests for repro.core.subsearch: containment / sub-trajectory search."""

import pytest

from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.core.subsearch import (
    _lcs_length,
    containment_search,
    ordered_containment_search,
)
from repro.geo.point import Point, destination

CONFIG = GeodabConfig(k=3, t=5)
LONDON = Point(51.5074, -0.1278)


def walk(start, bearing, n, step_m=90.0):
    points = [start]
    for _ in range(n - 1):
        points.append(destination(points[-1], bearing, step_m))
    return points


@pytest.fixture()
def index():
    idx = GeodabIndex(CONFIG)
    long_east = walk(LONDON, 90.0, 60)
    idx.add("long-east", long_east)
    idx.add("long-west", list(reversed(long_east)))
    idx.add("north", walk(LONDON, 0.0, 60))
    # A trajectory visiting the query's middle region via a detour: it
    # passes the same cells but interleaved with a northern excursion.
    detour = long_east[:20] + walk(long_east[20], 0.0, 15) + long_east[20:40]
    idx.add("detour", detour)
    return idx


class TestLcs:
    def test_empty(self):
        assert _lcs_length([], [1, 2]) == 0
        assert _lcs_length([1], []) == 0

    def test_identical(self):
        assert _lcs_length([1, 2, 3], [1, 2, 3]) == 3

    def test_subsequence(self):
        assert _lcs_length([2, 4], [1, 2, 3, 4, 5]) == 2

    def test_reversal(self):
        assert _lcs_length([1, 2, 3, 4], [4, 3, 2, 1]) == 1

    def test_classic_case(self):
        assert _lcs_length(list("AGCAT"), list("GAC")) == 2


class TestContainmentSearch:
    def test_sub_trajectory_fully_contained(self, index):
        # The middle third of the long eastbound trajectory.  Both
        # "long-east" and "detour" genuinely contain it (the detour ends
        # with the same segment).
        query = walk(LONDON, 90.0, 60)[20:40]
        matches = containment_search(index, query)
        assert matches
        by_id = {m.trajectory_id: m for m in matches}
        assert by_id["long-east"].containment > 0.7
        assert matches[0].trajectory_id in ("long-east", "detour")

    def test_whole_trajectory_query(self, index):
        query = walk(LONDON, 90.0, 60)
        matches = containment_search(index, query)
        assert matches[0].trajectory_id == "long-east"
        assert matches[0].containment == pytest.approx(1.0)

    def test_direction_matters(self, index):
        query = walk(LONDON, 90.0, 60)[20:40]
        matches = containment_search(index, query)
        ids = [m.trajectory_id for m in matches]
        assert "long-west" not in ids

    def test_min_containment_filters(self, index):
        query = walk(LONDON, 90.0, 60)[20:40]
        all_matches = containment_search(index, query)
        strict = containment_search(index, query, min_containment=0.9)
        assert len(strict) <= len(all_matches)
        assert all(m.containment >= 0.9 for m in strict)

    def test_limit(self, index):
        query = walk(LONDON, 90.0, 60)
        assert len(containment_search(index, query, limit=1)) == 1

    def test_empty_query(self, index):
        assert containment_search(index, []) == []

    def test_invalid_threshold(self, index):
        with pytest.raises(ValueError):
            containment_search(index, [], min_containment=1.5)

    def test_unrelated_query(self, index):
        query = walk(Point(48.85, 2.35), 90.0, 30)
        assert containment_search(index, query) == []


class TestOrderedContainmentSearch:
    def test_contained_query_scores_high(self, index):
        query = walk(LONDON, 90.0, 60)[20:40]
        matches = ordered_containment_search(index, query)
        by_id = {m.trajectory_id: m for m in matches}
        assert by_id["long-east"].ordered_containment > 0.7
        assert matches[0].trajectory_id in ("long-east", "detour")

    def test_ordered_score_never_exceeds_containment(self, index):
        query = walk(LONDON, 90.0, 60)[10:50]
        for match in ordered_containment_search(index, query):
            assert match.ordered_containment <= match.containment + 1e-9

    def test_detour_ranks_below_true_containment(self, index):
        query = walk(LONDON, 90.0, 60)[5:40]
        matches = ordered_containment_search(index, query)
        by_id = {m.trajectory_id: m for m in matches}
        assert "long-east" in by_id
        if "detour" in by_id:
            assert (
                by_id["long-east"].ordered_containment
                >= by_id["detour"].ordered_containment
            )

    def test_results_sorted(self, index):
        query = walk(LONDON, 90.0, 60)
        matches = ordered_containment_search(index, query)
        scores = [m.ordered_containment for m in matches]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_threshold(self, index):
        with pytest.raises(ValueError):
            ordered_containment_search(index, [], min_containment=-0.1)
