"""Fingerprint-registry invariants (PR 9).

Two contracts pin the registry refactor down:

* **Default bit-identity** — registering extra variants must not change
  what default-variant queries return, on either backend, through
  removals, snapshot round-trips, and both transports.  The default
  variant occupies exactly the pre-registry storage (postings attribute,
  bitmap column 0, cardinality column 0), so the comparison is strict
  equality of result lists, not approximate.
* **Dense recall** — the point of multiple variants: a denser
  fingerprint variant surfaces strictly more of the exact metric's true
  neighbours at the Jaccard tier, while the exact re-rank keeps the
  final rankings oracle-identical across variants.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.core.persistence import load_index, publish_snapshot, save_index
from repro.core.query import QuerySpec
from repro.core.registry import UnknownVariant, VariantSpec
from repro.distance.dtw import dtw
from repro.geo.point import Point, destination
from repro.service.executor import QueryExecutor
from repro.service.transport import WorkerProcessTransport

#: The paper's parameters as the base (default-variant) configuration.
CONFIG = GeodabConfig(normalization_depth=36, k=6, t=12)
#: A much denser parameterization: 3-grams, winnowing window 3.
DENSE = VariantSpec("dense", normalization_depth=36, k=3, t=5)
SHARDING = ShardingConfig(num_shards=4, num_nodes=2, placement="hash")


@st.composite
def random_walks(draw, min_len=5, max_len=30):
    """A deterministic random-walk trajectory strategy."""
    n = draw(st.integers(min_value=min_len, max_value=max_len))
    lat = draw(st.floats(min_value=51.3, max_value=51.7, allow_nan=False))
    lon = draw(st.floats(min_value=-0.3, max_value=0.1, allow_nan=False))
    bearings = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=360.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    steps = draw(
        st.lists(
            st.floats(min_value=20.0, max_value=300.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    points = [Point(lat, lon)]
    for bearing, step in zip(bearings, steps):
        points.append(destination(points[-1], bearing, step))
    return points


def corpora():
    return st.lists(random_walks(), min_size=1, max_size=5)


def _pair(factory, corpus, remove=()):
    """The same corpus in a registry-free and a multi-variant index."""
    plain = factory(())
    multi = factory((DENSE,))
    items = [(f"t{i}", points) for i, points in enumerate(corpus)]
    plain.add_many(items)
    multi.add_many(items)
    for trajectory_id in remove:
        plain.remove(trajectory_id)
        multi.remove(trajectory_id)
    return plain, multi


def _single_node(variants):
    return GeodabIndex(CONFIG, store_points=True, variants=variants)


def _sharded(variants):
    return ShardedGeodabIndex(
        CONFIG, SHARDING, store_points=True, variants=variants
    )


class TestDefaultBitIdentity:
    """Extra variants never perturb default-variant answers."""

    @settings(max_examples=20)
    @given(corpus=corpora())
    def test_single_node_rankings_identical(self, corpus):
        plain, multi = _pair(_single_node, corpus)
        for points in corpus:
            assert multi.query(points) == plain.query(points)

    @settings(max_examples=15)
    @given(corpus=corpora())
    def test_sharded_rankings_identical(self, corpus):
        plain, multi = _pair(_sharded, corpus)
        for points in corpus:
            assert multi.query(points) == plain.query(points)

    @settings(max_examples=15)
    @given(corpus=corpora())
    def test_identity_survives_removals(self, corpus):
        remove = [f"t{i}" for i in range(0, len(corpus), 2)]
        plain, multi = _pair(_single_node, corpus, remove=remove)
        for points in corpus:
            plain_results = plain.query(points)
            assert multi.query(points) == plain_results
            assert all(
                r.trajectory_id not in set(remove) for r in plain_results
            )

    @settings(max_examples=10)
    @given(corpus=corpora())
    def test_identity_survives_snapshot_round_trip(self, corpus):
        plain, multi = _pair(_sharded, corpus)
        with tempfile.TemporaryDirectory() as tmp:
            target = Path(tmp) / "snapshot"
            save_index(multi, target)
            reloaded = load_index(target)
            self._check_round_trip(plain, multi, reloaded, corpus)

    def _check_round_trip(self, plain, multi, reloaded, corpus):
        assert reloaded.variant_names == multi.variant_names
        for points in corpus:
            assert reloaded.query(points) == plain.query(points)
            # The dense variant's rankings round-trip too.
            spec = QuerySpec(limit=10, variant="dense")
            assert multi.query(points, spec=spec) == reloaded.query(
                points, spec=spec
            )

    def test_default_query_is_default_variant(self):
        index = _single_node((DENSE,))
        index.add("t0", _cluster_base())
        prepared = index.prepare_query(_cluster_base())
        assert prepared.variant == "default"

    def test_unknown_variant_raises_structured_lookup_error(self):
        index = _single_node((DENSE,))
        index.add("t0", _cluster_base())
        with pytest.raises(UnknownVariant) as excinfo:
            index.prepare_query(_cluster_base(), variant="nope")
        assert excinfo.value.name == "nope"
        assert "dense" in excinfo.value.known

    def test_auto_resolves_to_densest(self):
        index = _single_node((DENSE,))
        assert index.resolve_variant("auto") == "dense"
        assert _single_node(()).resolve_variant("auto") == "default"


class TestTransportEquivalence:
    """Thread and process transports agree on every variant's postings."""

    @pytest.fixture(scope="class")
    def env(self, tmp_path_factory):
        index = _sharded((DENSE,))
        corpus = [(f"t{i}", _cluster_member(i)) for i in range(8)]
        index.add_many(corpus)
        snapshot = publish_snapshot(
            index, tmp_path_factory.mktemp("registry-equiv"), tag="variants"
        )
        thread = QueryExecutor(index, pool_size=4)
        process = QueryExecutor(
            index,
            pool_size=4,
            transport=WorkerProcessTransport(snapshot, num_workers=2),
        )
        yield index, thread, process
        thread.close()
        process.close()

    @pytest.mark.parametrize("variant", ["default", "dense", "auto"])
    def test_rankings_identical_across_transports(self, env, variant):
        index, thread, process = env
        prepared = index.prepare_query(_cluster_base(), variant=variant)
        thread_results, thread_stats = thread.execute_prepared(prepared, 10)
        process_results, process_stats = process.execute_prepared(prepared, 10)
        assert process_results == thread_results
        assert process_stats.candidates == thread_stats.candidates
        assert not process_stats.degraded
        if variant != "default":
            # The dense variant genuinely reads denser postings.
            assert thread_stats.query_terms > 0

    def test_batched_execution_identical(self, env):
        index, thread, process = env
        requests = [
            (index.prepare_query(_cluster_member(i), variant=variant), 10, 1.0)
            for i in range(3)
            for variant in ("default", "dense")
        ]
        thread_out = thread.execute_prepared_many(requests)
        process_out = process.execute_prepared_many(requests)
        for (thread_results, _), (process_results, _) in zip(
            thread_out, process_out
        ):
            assert process_results == thread_results


def _cluster_base():
    """A fixed diagonal walk through the test city area."""
    return [
        Point(51.5 + 0.0002 * i, -0.1 + 0.0003 * i) for i in range(40)
    ]


def _cluster_member(j, shift=5e-5):
    """The base walk displaced by ``j`` small lateral steps (~5 m each)."""
    return [Point(p.lat, p.lon + j * shift) for p in _cluster_base()]


class TestDenseRecall:
    """The acceptance scenario: same exact-kNN answer, different tier-1.

    The corpus is one tight cluster (two exact duplicates of the query
    plus six near-duplicates a few meters out) and far-away distractors.
    The sparse default fingerprints only re-find the exact duplicates;
    the dense variant also surfaces the near-duplicates — so its tier-1
    recall over the cluster is strictly higher, while the exact DTW
    re-rank returns the oracle's top-k identically through both.
    """

    K = 2

    @pytest.fixture(scope="class")
    def corpus(self):
        items = [("dup0", _cluster_base()), ("dup1", _cluster_base())]
        items += [(f"near{j}", _cluster_member(j + 1)) for j in range(6)]
        items += [
            (
                f"far{j}",
                [
                    Point(52.0 + 0.001 * j + 0.0004 * i, 0.5 - 0.0002 * i)
                    for i in range(40)
                ],
            )
            for j in range(4)
        ]
        return items

    @pytest.fixture(scope="class")
    def index(self, corpus):
        index = _single_node((DENSE,))
        index.add_many(corpus)
        return index

    def _oracle_top_k(self, corpus, query):
        ranked = sorted(
            ((dtw(query, points), tid) for tid, points in corpus),
            key=lambda pair: (pair[0], pair[1]),
        )
        return [tid for _, tid in ranked[: self.K]]

    def _tier1_candidates(self, index, query, variant):
        prepared = index.prepare_query(query, variant=variant)
        results, _ = index.query_prepared(prepared, limit=None, max_distance=1.0)
        return {r.trajectory_id for r in results}

    def test_dense_variant_strictly_improves_tier1_recall(self, index, corpus):
        query = _cluster_base()
        cluster = {tid for tid, _ in corpus if not tid.startswith("far")}
        sparse = self._tier1_candidates(index, query, "default") & cluster
        dense = self._tier1_candidates(index, query, "dense") & cluster
        assert sparse < dense  # strict subset: recall measurably improves
        assert len(dense) / len(cluster) > len(sparse) / len(cluster)

    def test_exact_knn_final_rankings_oracle_identical(self, index, corpus):
        query = _cluster_base()
        oracle = self._oracle_top_k(corpus, query)
        rankings = {}
        for variant in ("default", "dense", "auto"):
            spec = QuerySpec(
                mode="exact_knn", metric="dtw", limit=self.K, variant=variant
            )
            rankings[variant] = [
                r.trajectory_id for r in index.query(query, spec=spec)
            ]
        assert rankings["default"] == oracle
        assert rankings["dense"] == oracle
        assert rankings["auto"] == oracle

    def test_sharded_backend_agrees(self, corpus):
        sharded = _sharded((DENSE,))
        sharded.add_many(corpus)
        query = _cluster_base()
        oracle = self._oracle_top_k(corpus, query)
        for variant in ("default", "dense"):
            spec = QuerySpec(
                mode="exact_knn", metric="dtw", limit=self.K, variant=variant
            )
            assert [
                r.trajectory_id for r in sharded.query(query, spec=spec)
            ] == oracle


class TestVariantSpecSurface:
    def test_parse_round_trip(self):
        spec = VariantSpec.parse("dense=36,3,5")
        assert spec == VariantSpec("dense", 36, 3, 5)
        assert VariantSpec.from_json(spec.to_json()) == spec

    def test_parse_with_scheme(self):
        spec = VariantSpec.parse("poly=30,4,8,polynomial")
        assert spec.suffix_hash == "polynomial"

    @pytest.mark.parametrize(
        "flag", ["dense", "dense=36,3", "dense=a,b,c", "auto=36,3,5"]
    )
    def test_parse_rejects_malformed(self, flag):
        with pytest.raises(ValueError):
            VariantSpec.parse(flag)

    def test_duplicate_variant_names_rejected(self):
        with pytest.raises(ValueError):
            _single_node((DENSE, DENSE))
