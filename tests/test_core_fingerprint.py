"""Tests for repro.core.fingerprint: FingerprintSet and Fingerprinter."""

import pytest

from repro.bitmap.roaring import Roaring64Map, RoaringBitmap
from repro.core.config import GeodabConfig
from repro.core.fingerprint import Fingerprinter, FingerprintSet
from repro.core.winnowing import Selection
from repro.geo.point import Point, destination

LONDON = Point(51.5074, -0.1278)


def walk_points(n, step_m=90.0, bearing=45.0):
    out = [LONDON]
    for _ in range(n - 1):
        out.append(destination(out[-1], bearing, step_m))
    return out


class TestFingerprintSet:
    def test_from_selections_narrow(self):
        selections = [Selection(5, 0), Selection(9, 3), Selection(5, 7)]
        fs = FingerprintSet.from_selections(selections, wide=False)
        assert isinstance(fs.bitmap, RoaringBitmap)
        assert len(fs) == 2  # distinct values
        assert fs.values == [5, 9, 5]
        assert fs.positions == [0, 3, 7]
        assert 5 in fs and 9 in fs and 7 not in fs

    def test_from_selections_wide(self):
        selections = [Selection(2**40, 0)]
        fs = FingerprintSet.from_selections(selections, wide=True)
        assert isinstance(fs.bitmap, Roaring64Map)
        assert 2**40 in fs

    def test_jaccard_between_sets(self):
        a = FingerprintSet.from_selections(
            [Selection(1, 0), Selection(2, 1)], wide=False
        )
        b = FingerprintSet.from_selections(
            [Selection(2, 0), Selection(3, 1)], wide=False
        )
        assert a.jaccard(b) == pytest.approx(1 / 3)
        assert a.jaccard_distance(b) == pytest.approx(2 / 3)
        assert a.intersection_cardinality(b) == 1

    def test_empty_set(self):
        fs = FingerprintSet.from_selections([], wide=False)
        assert len(fs) == 0
        assert fs.values == []


class TestFingerprinter:
    def test_default_config_is_narrow(self):
        fp = Fingerprinter()
        out = fp.fingerprint(walk_points(30))
        assert isinstance(out.bitmap, RoaringBitmap)
        assert len(out) > 0

    def test_wide_layout_uses_64_bit_bitmap(self):
        fp = Fingerprinter(GeodabConfig(prefix_bits=20, suffix_bits=20))
        out = fp.fingerprint(walk_points(30))
        assert isinstance(out.bitmap, Roaring64Map)

    def test_same_trajectory_same_fingerprints(self):
        fp = Fingerprinter(GeodabConfig(k=3, t=5))
        points = walk_points(25)
        assert fp.fingerprint(points).values == fp.fingerprint(points).values

    def test_fingerprint_many(self):
        fp = Fingerprinter(GeodabConfig(k=3, t=5))
        batch = fp.fingerprint_many([walk_points(20), walk_points(25)])
        assert len(batch) == 2
        assert all(len(b) > 0 for b in batch)

    def test_scheme_passthrough(self):
        from repro.core.geodab import GeodabScheme

        scheme = GeodabScheme(GeodabConfig(k=3, t=4))
        fp = Fingerprinter(scheme)
        assert fp.scheme is scheme
        assert fp.config.k == 3

    def test_short_trajectory_empty_fingerprints(self):
        fp = Fingerprinter()
        out = fp.fingerprint([LONDON])
        assert len(out) == 0
