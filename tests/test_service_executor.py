"""Tests for repro.service.executor: pooled fan-out equals sequential."""

import threading

import pytest

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.service.executor import QueryExecutor

CONFIG = GeodabConfig(k=3, t=5)
SHARDING = ShardingConfig(num_shards=8, num_nodes=2)


@pytest.fixture(scope="module")
def corpus(small_dataset):
    return [(r.trajectory_id, r.points) for r in small_dataset.records]


@pytest.fixture(scope="module")
def single(corpus):
    index = GeodabIndex(CONFIG)
    index.add_many(corpus)
    return index


@pytest.fixture(scope="module")
def sharded(corpus):
    index = ShardedGeodabIndex(CONFIG, SHARDING)
    index.add_many(corpus)
    return index


class TestShardPartialAPI:
    def test_sequential_decomposition_matches_monolithic_query(
        self, sharded, single, small_dataset
    ):
        for query in small_dataset.queries:
            assert sharded.query(query.points, limit=10) == single.query(
                query.points, limit=10
            )

    def test_partials_cover_the_plan(self, sharded, small_dataset):
        prepared = sharded.prepare_query(small_dataset.queries[0].points)
        merged: dict[int, int] = {}
        for shard_id, terms in prepared.plan.items():
            # A partial is the shard's raw hit stream: one internal id
            # per (term, posting) pairing, counts via multiplicity.
            for internal in sharded.shard_partial(shard_id, terms).tolist():
                merged[internal] = merged.get(internal, 0) + 1
        _, stats = sharded.query_prepared(prepared)
        assert len(merged) == stats.candidates

    def test_shard_postings_is_the_raw_form_of_shard_partial(self, sharded):
        shard_id = next(
            s.shard_id for s in sharded.shards if s.postings
        )
        terms = list(sharded.shards[shard_id].postings)[:5]
        postings = sharded.shard_postings(shard_id, terms)
        rebuilt: dict[int, int] = {}
        for posting in postings.values():
            for internal in posting.tolist():
                rebuilt[internal] = rebuilt.get(internal, 0) + 1
        stream: dict[int, int] = {}
        for internal in sharded.shard_partial(shard_id, terms).tolist():
            stream[internal] = stream.get(internal, 0) + 1
        assert rebuilt == stream


class TestPooledEquality:
    @pytest.mark.parametrize("pool_size", [0, 2, 8])
    def test_pooled_matches_sequential(
        self, sharded, single, small_dataset, pool_size
    ):
        with QueryExecutor(sharded, pool_size=pool_size) as executor:
            for query in small_dataset.queries:
                results, stats = executor.execute(query.points, limit=10)
                assert results == single.query(query.points, limit=10)
                assert stats.pooled == (pool_size > 0)
                assert stats.batch_size == 1

    def test_limit_and_max_distance_respected(self, sharded, small_dataset):
        query = small_dataset.queries[0]
        with QueryExecutor(sharded, pool_size=4) as executor:
            results, _ = executor.execute(query.points, limit=2, max_distance=0.95)
            assert len(results) <= 2
            assert all(r.distance <= 0.95 for r in results)

    def test_rpc_latency_does_not_change_results(
        self, sharded, single, small_dataset
    ):
        query = small_dataset.queries[0]
        with QueryExecutor(sharded, pool_size=4, rpc_latency_s=0.001) as executor:
            results, _ = executor.execute(query.points, limit=10)
        assert results == single.query(query.points, limit=10)

    def test_invalid_parameters(self, sharded):
        with pytest.raises(ValueError):
            QueryExecutor(sharded, pool_size=-1)
        with pytest.raises(ValueError):
            QueryExecutor(sharded, pool_size=1, rpc_latency_s=-1.0)
        with pytest.raises(ValueError):
            QueryExecutor(sharded, pool_size=1, batch_window_s=-1.0)


class TestMicroBatching:
    def test_concurrent_queries_share_a_batch(
        self, sharded, single, small_dataset
    ):
        queries = small_dataset.queries
        with QueryExecutor(
            sharded, pool_size=4, batch_window_s=0.05
        ) as executor:
            barrier = threading.Barrier(len(queries))
            outcomes: dict[int, tuple] = {}

            def run(i, query):
                barrier.wait()
                outcomes[i] = executor.execute(query.points, limit=10)

            threads = [
                threading.Thread(target=run, args=(i, q))
                for i, q in enumerate(queries)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        batch_sizes = set()
        for i, query in enumerate(queries):
            results, stats = outcomes[i]
            assert results == single.query(query.points, limit=10)
            batch_sizes.add(stats.batch_size)
        # All queries released together within one window: at least one
        # multi-query batch formed.
        assert max(batch_sizes) >= 2

    def test_lone_query_still_served(self, sharded, single, small_dataset):
        query = small_dataset.queries[0]
        with QueryExecutor(
            sharded, pool_size=2, batch_window_s=0.01
        ) as executor:
            results, stats = executor.execute(query.points, limit=10)
        assert results == single.query(query.points, limit=10)
        assert stats.batch_size == 1
