"""Failure injection and geographic edge cases across the pipeline.

Degenerate trajectories (empty, single point, all-duplicate), coordinates
at the antimeridian and the poles, and adversarial query patterns must
flow through normalization, fingerprinting, indexing, and motif discovery
without crashing — returning empty results where nothing meaningful
exists.
"""

import pytest

from repro.core.config import GeodabConfig
from repro.core.fingerprint import Fingerprinter
from repro.core.index import GeodabIndex
from repro.core.baseline import GeohashIndex
from repro.core.motif import find_common_motif
from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.geo.geohash import Geohash, cover, encode
from repro.geo.point import Point, destination
from repro.normalize import (
    GridNormalizer,
    MovingAverageSmoother,
    standard_normalizer,
)

CONFIG = GeodabConfig(k=3, t=5)


def walk(start, bearing, n, step_m=90.0):
    points = [start]
    for _ in range(n - 1):
        points.append(destination(points[-1], bearing, step_m))
    return points


class TestDegenerateTrajectories:
    @pytest.fixture()
    def index(self):
        idx = GeodabIndex(CONFIG, normalizer=standard_normalizer())
        idx.add("real", walk(Point(51.5, -0.12), 90.0, 40))
        return idx

    def test_empty_trajectory_indexable(self, index):
        index.add("empty", [])
        assert "empty" in index
        # An empty document matches nothing but breaks nothing.
        results = index.query(walk(Point(51.5, -0.12), 90.0, 40))
        assert all(r.trajectory_id != "empty" for r in results)

    def test_single_point_trajectory(self, index):
        index.add("point", [Point(51.5, -0.12)])
        assert len(index.query([Point(51.5, -0.12)])) == 0

    def test_all_duplicate_points(self, index):
        index.add("stuck", [Point(51.5, -0.12)] * 500)
        results = index.query([Point(51.5, -0.12)] * 500)
        assert results == []

    def test_empty_query(self, index):
        assert index.query([]) == []

    def test_two_point_trajectory_below_noise_threshold(self, index):
        short = walk(Point(51.5, -0.12), 90.0, 2)
        index.add("short", short)
        assert index.query(short) == []

    def test_zigzag_between_two_cells(self, index):
        # Pathological flapping: alternate between two far points.
        a = Point(51.5, -0.12)
        b = destination(a, 90.0, 500.0)
        zigzag = [a, b] * 30
        index.add("zigzag", zigzag)
        results = index.query(zigzag)
        assert results and results[0].trajectory_id == "zigzag"


class TestAntimeridian:
    def test_encode_both_sides(self):
        west = Point(0.0, 179.99)
        east = Point(0.0, -179.99)
        # The two sides of the antimeridian land in different cells at
        # any depth >= 1 (the z-order curve splits there).
        assert encode(west, 16) != encode(east, 16)

    def test_cover_straddling_is_shallow(self):
        g = cover([Point(0.0, 179.9), Point(0.0, -179.9)])
        assert g.depth == 0

    def test_trajectory_crossing_antimeridian_indexes(self):
        # A trajectory walking east across the antimeridian.
        points = walk(Point(10.0, 179.97), 90.0, 60, step_m=200.0)
        idx = GeodabIndex(CONFIG)
        idx.add("crossing", points)
        results = idx.query(points)
        assert results and results[0].trajectory_id == "crossing"
        assert results[0].distance == pytest.approx(0.0)

    def test_smoother_near_antimeridian(self):
        # The moving average operates on raw longitudes; verify it does
        # not produce invalid coordinates for same-side input.
        points = walk(Point(10.0, 179.5), 0.0, 30)
        smoothed = MovingAverageSmoother(5)(points)
        assert all(-180.0 <= p.lon <= 180.0 for p in smoothed)


class TestPoles:
    def test_encode_at_poles(self):
        for lat in (90.0, -90.0):
            bits = encode(Point(lat, 0.0), 36)
            assert bits >= 0

    def test_trajectory_near_pole(self):
        points = walk(Point(89.5, 0.0), 90.0, 40, step_m=50.0)
        idx = GeodabIndex(CONFIG)
        idx.add("polar", points)
        results = idx.query(points)
        assert results and results[0].trajectory_id == "polar"

    def test_grid_normalizer_near_pole(self):
        points = walk(Point(89.9, 10.0), 180.0, 20, step_m=100.0)
        normalized = GridNormalizer(36)(points)
        assert normalized
        assert all(-90.0 <= p.lat <= 90.0 for p in normalized)


class TestShardedEdgeCases:
    def test_sharded_index_with_degenerate_documents(self):
        cluster = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=16, num_nodes=4)
        )
        cluster.add("empty", [])
        cluster.add("real", walk(Point(51.5, -0.12), 90.0, 40))
        results, stats = cluster.query_with_stats(
            walk(Point(51.5, -0.12), 90.0, 40)
        )
        assert results[0].trajectory_id == "real"
        assert stats.shards_contacted >= 1

    def test_query_far_from_all_data(self):
        cluster = ShardedGeodabIndex(
            CONFIG, ShardingConfig(num_shards=16, num_nodes=4)
        )
        cluster.add("real", walk(Point(51.5, -0.12), 90.0, 40))
        results, stats = cluster.query_with_stats(
            walk(Point(-33.9, 151.2), 90.0, 40)
        )
        assert results == []
        assert stats.candidates == 0


class TestMotifEdgeCases:
    def test_motif_between_disjoint_trajectories(self):
        a = walk(Point(51.5, -0.12), 90.0, 30)
        b = walk(Point(48.85, 2.35), 90.0, 30)
        match = find_common_motif(a, b, length_m=500.0, fingerprinter=CONFIG)
        # A best pair exists (brute force always returns one) but shares
        # nothing.
        assert match is None or match.distance == pytest.approx(1.0)

    def test_motif_with_empty_trajectory(self):
        a = walk(Point(51.5, -0.12), 90.0, 30)
        assert find_common_motif([], a, length_m=500.0, fingerprinter=CONFIG) is None

    def test_motif_length_longer_than_trajectories(self):
        a = walk(Point(51.5, -0.12), 90.0, 20)
        match = find_common_motif(a, a, length_m=10_000.0, fingerprinter=CONFIG)
        # Window exceeds available fingerprints: no match.
        assert match is None


class TestBaselineEdgeCases:
    def test_geohash_index_degenerate_documents(self):
        idx = GeohashIndex(36)
        idx.add("empty", [])
        idx.add("point", [Point(51.5, -0.12)])
        results = idx.query([Point(51.5, -0.12)])
        assert [r.trajectory_id for r in results] == ["point"]

    def test_fingerprinter_is_pure(self):
        # Repeated fingerprinting of the same input gives identical sets
        # even interleaved with other inputs (no hidden state).
        fingerprinter = Fingerprinter(CONFIG)
        a = walk(Point(51.5, -0.12), 90.0, 40)
        b = walk(Point(51.6, -0.10), 0.0, 40)
        first = fingerprinter.fingerprint(a).values
        fingerprinter.fingerprint(b)
        assert fingerprinter.fingerprint(a).values == first

    def test_geohash_cell_identity_preserved_by_roundtrip(self):
        cell = Geohash.of(Point(51.5, -0.12), 36)
        assert Geohash.of(cell.center(), 36) == cell
