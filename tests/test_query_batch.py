"""Tests for the batched query path: prepare_query_many through HTTP.

Three layers are covered:

* index level — ``prepare_query_many`` produces prepared queries
  interchangeable with per-query ``prepare_query`` on both backends
  (hypothesis-verified, including empty/single-point queries and the
  scalar-fallback normalizer);
* service level — ``IndexService.query_many`` returns exactly what one
  ``query`` per burst entry would, splits cache hits correctly, and
  works with and without an executor;
* HTTP level — ``POST /query/batch`` round-trips, validates payloads,
  and enforces the batch-size cap.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import ShardedGeodabIndex, ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.geo.point import Point
from repro.normalize import standard_normalizer
from repro.service import IndexService, QueryExecutor, start_server
from repro.service.http import MAX_BATCH_QUERIES

from .conftest import city_points

CONFIG = GeodabConfig(k=3, t=5)
SHARDING = ShardingConfig(num_shards=8, num_nodes=2)


def query_bursts() -> st.SearchStrategy[list[list[Point]]]:
    """Bursts mixing empty, single-point, and ordinary queries."""
    return st.lists(
        st.lists(city_points(), min_size=0, max_size=25),
        min_size=0,
        max_size=6,
    )


def _assert_prepared_equal(got, want) -> None:
    assert got.terms == want.terms
    assert got.plan == want.plan
    assert got.fingerprint_set.selections == want.fingerprint_set.selections
    assert len(got.fingerprint_set.bitmap) == len(want.fingerprint_set.bitmap)


# ----------------------------------------------------------------------
# Index level
# ----------------------------------------------------------------------

class TestPrepareQueryMany:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: GeodabIndex(CONFIG),
            lambda: GeodabIndex(CONFIG, normalizer=standard_normalizer(36)),
            lambda: GeodabIndex(CONFIG, normalizer=lambda pts: list(pts)),
            lambda: ShardedGeodabIndex(CONFIG, SHARDING),
            lambda: ShardedGeodabIndex(
                CONFIG, SHARDING, normalizer=standard_normalizer(36)
            ),
        ],
        ids=["single", "single-norm", "single-fallback", "sharded",
             "sharded-norm"],
    )
    @given(burst=query_bursts())
    def test_matches_per_query_prepare(self, build, burst):
        index = build()
        many = index.prepare_query_many(burst)
        assert len(many) == len(burst)
        for points, got in zip(burst, many):
            _assert_prepared_equal(got, index.prepare_query(points))

    def test_empty_burst(self):
        assert GeodabIndex(CONFIG).prepare_query_many([]) == []

    def test_prepared_queries_execute_identically(self, small_dataset):
        index = ShardedGeodabIndex(CONFIG, SHARDING)
        index.add_many(
            [(r.trajectory_id, r.points) for r in small_dataset.records]
        )
        burst = [q.points for q in small_dataset.queries]
        for points, prepared in zip(burst, index.prepare_query_many(burst)):
            batch_results, _ = index.query_prepared(prepared, limit=10)
            single_results = index.query(points, limit=10)
            assert batch_results == single_results


# ----------------------------------------------------------------------
# Service level
# ----------------------------------------------------------------------

def _service(small_dataset, sharded: bool, executor: bool, caches: int = 256):
    if sharded:
        index = ShardedGeodabIndex(CONFIG, SHARDING)
    else:
        index = GeodabIndex(CONFIG)
    service = IndexService(
        index,
        executor=QueryExecutor(index, pool_size=4) if executor else None,
        result_cache_size=caches,
        fingerprint_cache_size=caches,
    )
    service.ingest(
        (r.trajectory_id, r.points) for r in small_dataset.records
    )
    return service


class TestQueryMany:
    @pytest.mark.parametrize(
        "sharded,executor,caches",
        [
            (False, False, 256),
            (False, False, 0),
            (True, False, 256),
            (True, True, 256),
            (True, True, 0),
        ],
    )
    def test_matches_single_query_path(
        self, small_dataset, sharded, executor, caches
    ):
        service = _service(small_dataset, sharded, executor, caches)
        try:
            burst = [q.points for q in small_dataset.queries]
            expected = [
                service.query(points, limit=10).results for points in burst
            ]
            responses = service.query_many(burst, limit=10)
            assert [r.results for r in responses] == expected
            assert all(r.generation == service.generation for r in responses)
        finally:
            service.close()

    def test_empty_burst(self, small_dataset):
        service = _service(small_dataset, sharded=False, executor=False)
        try:
            assert service.query_many([]) == []
        finally:
            service.close()

    def test_cache_hits_are_flagged(self, small_dataset):
        service = _service(small_dataset, sharded=True, executor=True)
        try:
            burst = [q.points for q in small_dataset.queries]
            first = service.query_many(burst, limit=5)
            assert not any(r.cached for r in first)
            second = service.query_many(burst, limit=5)
            assert all(r.cached for r in second)
            assert [r.results for r in first] == [r.results for r in second]
        finally:
            service.close()

    def test_mixed_cached_and_fresh(self, small_dataset):
        service = _service(small_dataset, sharded=True, executor=True)
        try:
            burst = [q.points for q in small_dataset.queries]
            service.query(burst[0], limit=5)  # warm one entry
            responses = service.query_many(burst, limit=5)
            assert responses[0].cached
            assert not any(r.cached for r in responses[1:])
            for points, response in zip(burst, responses):
                assert (
                    service.query(points, limit=5).results == response.results
                )
        finally:
            service.close()

    @pytest.mark.parametrize("executor", [False, True])
    @pytest.mark.parametrize("caches", [256, 0])
    def test_duplicate_queries_in_one_burst(
        self, small_dataset, executor, caches
    ):
        """Duplicates share one execution (when cache keys exist) but
        every burst entry still gets the right response."""
        service = _service(small_dataset, sharded=True, executor=executor,
                           caches=caches)
        try:
            points = small_dataset.queries[0].points
            other = small_dataset.queries[1].points
            burst = [points, other, points, points]
            responses = service.query_many(burst, limit=5)
            assert len(responses) == 4
            reference = service.query(points, limit=5).results
            assert responses[0].results == reference
            assert responses[2].results == reference
            assert responses[3].results == reference
            assert responses[1].results == service.query(other, limit=5).results
        finally:
            service.close()

    def test_write_invalidates_batch_results(self, small_dataset):
        service = _service(small_dataset, sharded=False, executor=False)
        try:
            burst = [q.points for q in small_dataset.queries]
            service.query_many(burst, limit=5)
            removed = small_dataset.records[0].trajectory_id
            service.delete(removed)
            responses = service.query_many(burst, limit=5)
            assert not any(r.cached for r in responses)
            for response in responses:
                assert removed not in {
                    result.trajectory_id for result in response.results
                }
        finally:
            service.close()


# ----------------------------------------------------------------------
# HTTP level
# ----------------------------------------------------------------------

def call(base, method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def as_wire(points):
    return [[p.lat, p.lon] for p in points]


@pytest.fixture()
def loaded_server(small_dataset):
    index = ShardedGeodabIndex(CONFIG, SHARDING)
    service = IndexService(index, executor=QueryExecutor(index, pool_size=4))
    service.ingest((r.trajectory_id, r.points) for r in small_dataset.records)
    server = start_server(service)
    yield server
    server.shutdown()
    service.close()


class TestQueryBatchEndpoint:
    def test_round_trip(self, loaded_server, small_dataset):
        queries = [as_wire(q.points) for q in small_dataset.queries]
        status, payload = call(
            loaded_server.url, "POST", "/query/batch",
            {"queries": queries, "limit": 5},
        )
        assert status == 200
        assert payload["count"] == len(queries)
        assert len(payload["results"]) == len(queries)
        for query, entry in zip(small_dataset.queries, payload["results"]):
            single_status, single = call(
                loaded_server.url, "POST", "/query",
                {"points": as_wire(query.points), "limit": 5},
            )
            assert single_status == 200
            assert [r["id"] for r in entry["results"]] == [
                r["id"] for r in single["results"]
            ]

    def test_accepts_object_entries(self, loaded_server, small_dataset):
        points = as_wire(small_dataset.queries[0].points)
        status, payload = call(
            loaded_server.url, "POST", "/query/batch",
            {"queries": [{"points": points}, points]},
        )
        assert status == 200
        assert payload["count"] == 2
        assert (
            payload["results"][0]["results"] == payload["results"][1]["results"]
        )

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"queries": []},
            {"queries": "nope"},
            {"queries": [[[1000.0, 0.0]]]},
            {"queries": [[[51.5, -0.1]]], "limit": 0},
            {"queries": [[[51.5, -0.1]]], "max_distance": 2.0},
            {"queries": [{"nope": []}]},
        ],
    )
    def test_rejects_malformed_payloads(self, loaded_server, body):
        status, payload = call(loaded_server.url, "POST", "/query/batch", body)
        assert status == 400
        assert "error" in payload

    def test_rejects_oversized_batches(self, loaded_server):
        queries = [[[51.5, -0.1]]] * (MAX_BATCH_QUERIES + 1)
        status, payload = call(
            loaded_server.url, "POST", "/query/batch", {"queries": queries}
        )
        assert status == 400
        assert "exceeds" in payload["error"]["message"]
