"""Transport equivalence: thread and process fan-out are bit-identical.

The cluster-serving contract (PR 7): whichever transport carries the
shard partials — direct in-process calls or worker processes mmap'ing a
published snapshot — the executor returns *exactly* the same rankings
and query stats.  Hypothesis drives the query side; the corpus side is
covered by two fixed environments (pristine, and with post-publish
removals so the coordinator's tombstone masking must reconcile the
workers' stale postings).  The degraded path — a worker killed
mid-load — is pinned separately: results are served and flagged, never
an error, and maintenance brings the worker back.
"""

import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.persistence import publish_snapshot
from repro.geo.point import Point
from repro.service import IndexService
from repro.service.executor import QueryExecutor
from repro.service.transport import WorkerProcessTransport

CONFIG = GeodabConfig(k=3, t=5)
# Hash placement: queries fan out over every shard, so the equivalence
# actually exercises multi-shard scatter-gather on both transports.
SHARDING = ShardingConfig(num_shards=4, num_nodes=2, placement="hash")


@st.composite
def query_walks(draw, min_len=4, max_len=30):
    """Random-walk queries over the dataset's city area."""
    n = draw(st.integers(min_value=min_len, max_value=max_len))
    lat = draw(st.floats(min_value=51.44, max_value=51.58, allow_nan=False))
    lon = draw(st.floats(min_value=-0.25, max_value=0.0, allow_nan=False))
    steps = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=-8e-4, max_value=8e-4, allow_nan=False),
                st.floats(min_value=-1e-3, max_value=1e-3, allow_nan=False),
            ),
            min_size=n,
            max_size=n,
        )
    )
    points = []
    for dlat, dlon in steps:
        lat += dlat
        lon += dlon
        points.append(Point(lat, lon))
    return points


class _Environment:
    """A coordinator index plus thread- and process-backed executors."""

    def __init__(self, corpus, root, remove=()):
        self.index = ShardedGeodabIndex(CONFIG, SHARDING)
        self.index.add_many(corpus)
        snapshot = publish_snapshot(self.index, root, tag="equiv")
        for trajectory_id in remove:
            self.index.remove(trajectory_id)
        self.removed = set(remove)
        self.thread = QueryExecutor(self.index, pool_size=4)
        self.process = QueryExecutor(
            self.index,
            pool_size=4,
            transport=WorkerProcessTransport(snapshot, num_workers=2),
        )

    def close(self):
        self.thread.close()
        self.process.close()


@pytest.fixture(scope="module")
def pristine(small_dataset, tmp_path_factory):
    corpus = [(r.trajectory_id, r.points) for r in small_dataset.records]
    env = _Environment(corpus, tmp_path_factory.mktemp("equiv-pristine"))
    yield env
    env.close()


@pytest.fixture(scope="module")
def with_removals(small_dataset, tmp_path_factory):
    """Every third trajectory removed *after* the snapshot was published.

    The workers keep serving the stale postings; the coordinator must
    mask the tombstoned internal ids so both transports agree.
    """
    corpus = [(r.trajectory_id, r.points) for r in small_dataset.records]
    env = _Environment(
        corpus,
        tmp_path_factory.mktemp("equiv-removals"),
        remove=[tid for position, (tid, _) in enumerate(corpus) if position % 3 == 0],
    )
    yield env
    env.close()


def assert_equivalent(env, points, limit=10):
    prepared = env.index.prepare_query(points)
    thread_results, thread_stats = env.thread.execute_prepared(
        prepared, limit
    )
    process_results, process_stats = env.process.execute_prepared(
        prepared, limit
    )
    assert process_results == thread_results
    assert process_stats.candidates == thread_stats.candidates
    assert process_stats.shards_contacted == thread_stats.shards_contacted
    assert process_stats.pruned == thread_stats.pruned
    assert process_stats.query_terms == thread_stats.query_terms
    assert not process_stats.degraded
    assert not thread_stats.degraded
    return thread_results


class TestEquivalence:
    @settings(max_examples=30)
    @given(points=query_walks())
    def test_rankings_identical_on_pristine_corpus(self, pristine, points):
        assert_equivalent(pristine, points)

    @settings(max_examples=30)
    @given(points=query_walks())
    def test_rankings_identical_with_tombstoned_removals(
        self, with_removals, points
    ):
        results = assert_equivalent(with_removals, points)
        assert all(
            r.trajectory_id not in with_removals.removed for r in results
        )

    def test_dataset_queries_identical(self, pristine, small_dataset):
        for query in small_dataset.queries:
            assert_equivalent(pristine, query.points)

    def test_batched_execution_identical(self, pristine, small_dataset):
        requests = [
            (pristine.index.prepare_query(q.points), 10, 1.0)
            for q in small_dataset.queries
        ]
        thread_out = pristine.thread.execute_prepared_many(requests)
        process_out = pristine.process.execute_prepared_many(requests)
        for (thread_results, _), (process_results, _) in zip(
            thread_out, process_out
        ):
            assert process_results == thread_results


class TestDegradedPath:
    """A worker killed mid-load degrades results instead of erroring."""

    def test_kill_degrade_respawn_recover(
        self, small_dataset, tmp_path_factory
    ):
        corpus = [(r.trajectory_id, r.points) for r in small_dataset.records]
        index = ShardedGeodabIndex(CONFIG, SHARDING)
        index.add_many(corpus)
        root = tmp_path_factory.mktemp("equiv-degraded")
        snapshot = publish_snapshot(index, root, tag="kill")
        transport = WorkerProcessTransport(snapshot, num_workers=1)
        executor = QueryExecutor(index, pool_size=4, transport=transport)
        reference = QueryExecutor(index, pool_size=4)
        try:
            query = small_dataset.queries[0].points
            expected, _ = reference.execute(query, limit=10)

            os.kill(transport._workers[0].pid, signal.SIGKILL)
            transport._workers[0].proc.wait(timeout=10)

            # Served, flagged — not a 500. With the only worker gone,
            # every planned shard fails and the ranking runs over
            # nothing.
            results, stats = executor.execute(query, limit=10)
            assert stats.degraded
            assert stats.failed_shards > 0
            assert results == []

            # One maintenance pass respawns the worker; the next query
            # is whole again and bit-identical to the thread transport.
            report = executor.maintain()
            assert report["respawned"] == [0]
            recovered, stats = executor.execute(query, limit=10)
            assert not stats.degraded
            assert recovered == expected
        finally:
            executor.close()
            reference.close()

    def test_kill_one_of_two_workers_is_invisible(
        self, small_dataset, tmp_path_factory
    ):
        """With a live peer, failover hides the death entirely."""
        corpus = [(r.trajectory_id, r.points) for r in small_dataset.records]
        index = ShardedGeodabIndex(CONFIG, SHARDING)
        index.add_many(corpus)
        root = tmp_path_factory.mktemp("equiv-failover")
        snapshot = publish_snapshot(index, root, tag="failover")
        transport = WorkerProcessTransport(snapshot, num_workers=2)
        executor = QueryExecutor(index, pool_size=4, transport=transport)
        reference = QueryExecutor(index, pool_size=4)
        try:
            query = small_dataset.queries[0].points
            expected, _ = reference.execute(query, limit=10)

            os.kill(transport._workers[0].pid, signal.SIGKILL)
            transport._workers[0].proc.wait(timeout=10)

            results, stats = executor.execute(query, limit=10)
            assert results == expected
            assert not stats.degraded
            assert executor.fault_counts()["failovers"] >= 0
        finally:
            executor.close()
            reference.close()


class TestPublishRefreshConsistency:
    def test_publish_refresh_invalidates_stale_window_cache(
        self, small_dataset, tmp_path_factory
    ):
        """Answers cached while workers lagged die with the refresh.

        Between an ingest and the next publish, process-served queries
        are computed from the workers' previous snapshot and cached
        under the *current* generation — so the generation check alone
        would keep serving them after the workers catch up.  The
        publish path must drop them along with the re-point.
        """
        corpus = [(r.trajectory_id, r.points) for r in small_dataset.records]
        index = ShardedGeodabIndex(CONFIG, SHARDING)
        index.add_many(corpus)
        root = tmp_path_factory.mktemp("equiv-refresh")
        snapshot = publish_snapshot(index, root, tag="boot")
        transport = WorkerProcessTransport(snapshot, num_workers=2)
        executor = QueryExecutor(index, pool_size=4, transport=transport)
        service = IndexService(index, executor=executor)
        try:
            # A nudged clone of an indexed trajectory: accepted by the
            # coordinator, invisible to the workers' boot snapshot.
            source = small_dataset.records[0]
            clone = [
                Point(p.lat + 1e-5, p.lon + 1e-5) for p in source.points
            ]
            service.add("clone", clone)

            stale = service.query(clone, limit=5)
            assert "clone" not in [
                r.trajectory_id for r in stale.results
            ]

            service.snapshot(root)
            fresh = service.query(clone, limit=5)
            assert not fresh.cached
            assert "clone" in [r.trajectory_id for r in fresh.results]
        finally:
            service.close()
