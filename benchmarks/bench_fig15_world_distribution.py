"""Figure 15 — distribution of trajectories over 16-bit geohash cells.

The paper plots world-scale trajectory counts per 16-bit geohash prefix:
sharp peaks at megacities (the tallest around Mexico City) separated by
oceanic voids.  We regenerate the distribution from the synthetic world
activity model and report its skew statistics and top peaks.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.geo.geohash import Geohash
from repro.roadnet.world import WorldActivityModel

TOTAL_TRAJECTORIES = 1_000_000


@pytest.fixture(scope="module")
def world_counts():
    model = WorldActivityModel(seed=7)
    return model, model.trajectories_per_cell(TOTAL_TRAJECTORIES)


def bench_fig15_world_distribution(benchmark, world_counts, capsys):
    """Regenerate the per-cell distribution and its peak structure."""
    model, counts = world_counts
    stats = model.skew_statistics(counts)
    peaks = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)[:10]
    peak_rows = []
    for cell_bits, count in peaks:
        center = Geohash(cell_bits, 16).center()
        peak_rows.append(
            [f"{cell_bits:#06x}", count, f"{center.lat:.1f}", f"{center.lon:.1f}"]
        )

    with capsys.disabled():
        print_table(
            "Figure 15: top-10 cells by trajectory count "
            f"(total {TOTAL_TRAJECTORIES:,})",
            ["cell", "trajectories", "lat", "lon"],
            peak_rows,
        )
        print_table(
            "Figure 15: distribution summary",
            ["populated cells", "of 2^16", "max/cell", "mean/cell", "gini"],
            [
                [
                    int(stats["cells"]),
                    1 << 16,
                    int(stats["max"]),
                    stats["mean"],
                    stats["gini"],
                ]
            ],
        )

    # Shape: extreme skew (megacity peaks) and oceanic voids.
    assert stats["gini"] > 0.5
    assert stats["max"] > 20 * stats["mean"]
    assert stats["cells"] < (1 << 16) / 2

    model_for_timing = WorldActivityModel(seed=8)

    def regenerate():
        model_for_timing.trajectories_per_cell(100_000)

    benchmark.pedantic(regenerate, rounds=3, iterations=1)
