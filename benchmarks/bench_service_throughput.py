"""Serving-tier throughput: sequential vs pooled shard fan-out.

Closed-loop load generation against an :class:`IndexService` over an
8-shard :class:`ShardedGeodabIndex`: each of C client threads issues its
queries back-to-back; throughput is total queries / wall time.  Three
server configurations are compared at 1, 4, and 16 concurrent clients:

* **sequential** — shard lookups run one after another on the request
  thread (the cluster's original fan-out loop);
* **pooled** — the :class:`QueryExecutor` fans the lookups out over a
  worker pool, so a query costs the slowest shard, not the sum;
* **pooled+cache** — pooled fan-out with the result cache enabled (the
  production default; the closed loop repeats queries, so hits dominate).

The index uses ``placement="hash"`` — a single-city corpus occupies one
sliver of the z-order curve, so the paper's range placement would put
every posting on one of the 8 shards and leave nothing to fan out (see
:mod:`repro.cluster.sharding`).  Shard contact is an in-process dict
probe standing in for a network RPC, so a per-contact latency (default
10 ms, ``REPRO_BENCH_RPC_MS``) injects the regime the paper's Section
VI-E cluster actually operates in.  With it, pooled fan-out overlaps its
shard round-trips and clears the sequential baseline by well over the
1.5x acceptance bar at 16 clients.

Run with:  python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import os
import threading
import time

from repro.bench.report import print_table
from repro.bench.runner import bench_workload
from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.core.config import GeodabConfig
from repro.normalize import standard_normalizer
from repro.service import IndexService, QueryExecutor

#: Concurrent closed-loop clients per measurement.
CLIENT_COUNTS = (1, 4, 16)

#: Queries each client issues per measurement.
QUERIES_PER_CLIENT = 30

NUM_SHARDS = 8
NUM_NODES = 2
POOL_SIZE = 64


def rpc_latency_s() -> float:
    """Simulated per-shard-contact latency (env ``REPRO_BENCH_RPC_MS``)."""
    return float(os.environ.get("REPRO_BENCH_RPC_MS", "10.0")) / 1000.0


def build_index() -> tuple[ShardedGeodabIndex, list]:
    """An 8-shard index over the dense benchmark workload."""
    workload = bench_workload(num_routes=20, per_direction=10, num_queries=16, seed=3)
    config = GeodabConfig()
    index = ShardedGeodabIndex(
        config,
        ShardingConfig(
            num_shards=NUM_SHARDS, num_nodes=NUM_NODES, placement="hash"
        ),
        normalizer=standard_normalizer(config.normalization_depth),
    )
    for record in workload.records:
        index.add(record.trajectory_id, record.points)
    return index, list(workload.queries)


def closed_loop_qps(service: IndexService, queries, clients: int) -> float:
    """Throughput of ``clients`` synchronized closed-loop clients."""
    barrier = threading.Barrier(clients + 1)

    def client(offset: int) -> None:
        barrier.wait()
        for i in range(QUERIES_PER_CLIENT):
            query = queries[(offset + i) % len(queries)]
            service.query(query.points, limit=10)

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return clients * QUERIES_PER_CLIENT / elapsed


def measure(index, queries, pool_size: int, cache: bool) -> dict[int, float]:
    """qps per client count for one server configuration."""
    out: dict[int, float] = {}
    for clients in CLIENT_COUNTS:
        executor = QueryExecutor(
            index, pool_size=pool_size, rpc_latency_s=rpc_latency_s()
        )
        service = IndexService(
            index,
            executor=executor,
            result_cache_size=4096 if cache else 0,
        )
        out[clients] = closed_loop_qps(service, queries, clients)
        service.close()
    return out


def bench_service_throughput(capsys=None) -> None:
    """Closed-loop serving throughput at 1/4/16 concurrent clients."""
    index, queries = build_index()
    sequential = measure(index, queries, pool_size=0, cache=False)
    pooled = measure(index, queries, pool_size=POOL_SIZE, cache=False)
    cached = measure(index, queries, pool_size=POOL_SIZE, cache=True)

    rows = []
    for clients in CLIENT_COUNTS:
        rows.append([
            clients,
            round(sequential[clients], 1),
            round(pooled[clients], 1),
            round(cached[clients], 1),
            round(pooled[clients] / sequential[clients], 2),
        ])
    print_table(
        f"Serving throughput (qps), {NUM_SHARDS} shards, "
        f"rpc={rpc_latency_s() * 1000:.1f}ms, "
        f"{QUERIES_PER_CLIENT} queries/client",
        ["clients", "sequential", "pooled", "pooled+cache", "pool speedup"],
        rows,
    )
    speedup = pooled[16] / sequential[16]
    print(f"\npooled fan-out speedup at 16 clients: {speedup:.2f}x "
          f"(acceptance bar: 1.5x)")
    if os.environ.get("REPRO_BENCH_RPC_MS") is None:
        # The bar is defined for the default latency-bound regime; a
        # custom REPRO_BENCH_RPC_MS is an exploration run, not a gate.
        assert speedup >= 1.5, (
            f"pooled fan-out speedup {speedup:.2f}x below the 1.5x bar"
        )
    else:
        print("(custom REPRO_BENCH_RPC_MS set: acceptance bar not enforced)")


if __name__ == "__main__":
    bench_service_throughput()
