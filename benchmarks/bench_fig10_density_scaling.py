"""Figure 10 — distance-computation cost vs candidate-set size.

The paper fixes trajectory length and grows the number of candidates the
distance must be computed against: DTW/DFD cost rises linearly in the
candidate count, Jaccard over geodabs stays negligible.  (Captions of
Figures 9/10 are swapped in the paper; we follow the prose — Figure 10
sweeps density.)
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.bench.runner import time_callable
from repro.core.config import GeodabConfig
from repro.core.fingerprint import Fingerprinter
from repro.distance.dtw import dtw
from repro.distance.frechet import discrete_frechet
from repro.normalize import standard_normalizer

from .bench_fig09_length_scaling import _make_trajectory

DENSITIES = (2, 4, 6, 8, 10)
LENGTH = 300


@pytest.fixture(scope="module")
def candidate_pool():
    return [_make_trajectory(LENGTH, seed) for seed in range(max(DENSITIES) + 1)]


def bench_fig10_density_scaling(benchmark, candidate_pool, capsys):
    """DTW/DFD vs geodab-Jaccard as the candidate set densifies."""
    fingerprinter = Fingerprinter(GeodabConfig())
    normalizer = standard_normalizer()
    query, *pool = candidate_pool
    fp_query = fingerprinter.fingerprint(normalizer(query))
    fp_pool = [fingerprinter.fingerprint(normalizer(c)) for c in pool]

    rows = []
    for density in DENSITIES:
        candidates = pool[:density]
        fp_candidates = fp_pool[:density]

        def score_dtw():
            for c in candidates:
                dtw(query, c)

        def score_dfd():
            for c in candidates:
                discrete_frechet(query, c)

        def score_geodabs():
            for fp in fp_candidates:
                fp_query.jaccard_distance(fp)

        rows.append(
            [
                density,
                time_callable(score_dfd, repeats=1),
                time_callable(score_dtw, repeats=1),
                time_callable(score_geodabs, repeats=2),
            ]
        )

    with capsys.disabled():
        print_table(
            f"Figure 10: scoring time vs candidate count at length {LENGTH} (ms)",
            ["candidates", "DFD", "DTW", "Geodabs"],
            rows,
        )

    # Shape: DP cost grows ~linearly with density; geodabs remain orders
    # of magnitude cheaper throughout.
    assert rows[-1][1] > rows[0][1] * 2.5
    assert rows[-1][2] > rows[0][2] * 2.5
    assert all(row[3] < row[1] / 10.0 for row in rows)

    fp_all = fp_pool[: DENSITIES[-1]]

    def score_max_density():
        for fp in fp_all:
            fp_query.jaccard_distance(fp)

    benchmark(score_max_density)
