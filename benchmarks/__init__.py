"""Figure-reproduction benchmark suite (run with pytest --benchmark-only)."""
