"""Ablation — classic spatial indexes as candidate selectors.

The paper's introduction argues that space-partitioning structures
(quadtrees, r-trees) select many irrelevant candidates on dense
trajectory data because their bounding boxes are coarse.  This ablation
indexes the same workload in a quadtree, an r-tree, and the two inverted
indexes, then compares candidate-set sizes per query.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.bench.runner import build_geodab_index, build_geohash_index
from repro.geo.bbox import bbox_of
from repro.spatial.quadtree import QuadTree
from repro.spatial.rtree import RTree


@pytest.fixture(scope="module")
def spatial_indexes(retrieval_workload):
    quadtree = QuadTree(node_capacity=16)
    rtree = RTree(max_entries=16)
    for record in retrieval_workload.records:
        box = bbox_of(record.points)
        quadtree.insert(record.trajectory_id, box)
        rtree.insert(record.trajectory_id, box)
    return quadtree, rtree


def bench_ablation_spatial(
    benchmark, spatial_indexes, retrieval_workload, capsys
):
    """Candidate counts: bounding-box selection vs inverted indexes."""
    quadtree, rtree = spatial_indexes
    geodab_index = build_geodab_index(retrieval_workload)
    geohash_index = build_geohash_index(retrieval_workload)

    total = {"quadtree": 0, "rtree": 0, "geohash": 0, "geodabs": 0, "relevant": 0}
    for query in retrieval_workload.queries:
        region = bbox_of(list(query.points))
        total["quadtree"] += len(quadtree.query(region))
        total["rtree"] += len(rtree.query(region))
        total["geohash"] += len(geohash_index.candidates(query.points))
        total["geodabs"] += len(geodab_index.candidates(query.points))
        total["relevant"] += len(query.relevant_ids)

    n = len(retrieval_workload.queries)
    rows = [
        [name, count / n, count / max(1, total["relevant"])]
        for name, count in total.items()
        if name != "relevant"
    ]

    with capsys.disabled():
        print_table(
            "Ablation: mean candidates per query (vs "
            f"{total['relevant'] / n:.0f} relevant)",
            ["selector", "candidates/query", "candidates per relevant"],
            rows,
        )

    # The paper's premise: bounding-box selection is the least
    # discriminating; geodabs the most.
    assert total["geodabs"] <= total["geohash"]
    assert total["geohash"] <= max(total["quadtree"], total["rtree"]) * 2

    queries = retrieval_workload.queries

    def quadtree_candidates():
        for query in queries:
            quadtree.query(bbox_of(list(query.points)))

    benchmark(quadtree_candidates)
