"""Tiered exact search vs brute force: the filter/refine payoff.

An exact kNN query answered brute-force pays one O(n*m) dynamic program
per corpus trajectory.  The tiered pipeline pays fingerprint retrieval
(vectorized Jaccard over the inverted index) plus ``limit * overfetch``
exact distances — with cheap endpoint lower bounds pruning part of even
those.  This benchmark measures that gap and *cross-checks exactness*:
every tiered answer (single-node and sharded) must match the
brute-force oracle over the full corpus — same ids, same order,
distances within 1e-9 relative.

The corpus is road-network re-recordings (the regime the paper
evaluates): recordings of the same route share fingerprint terms after
normalization, so the retrieval tier surfaces the true neighbours and
the re-rank returns the exact answer.  The acceptance bar is tiered
>= 3x brute force at a >= 2k trajectory corpus locally; CI runs a
smaller corpus with a conservative 2x bar via ``--min-speedup``.

Run with:  python benchmarks/bench_rerank.py
"""

from __future__ import annotations

import argparse
import json
import math
import time

from repro.cluster.cluster import ShardedGeodabIndex
from repro.cluster.sharding import ShardingConfig
from repro.bench.report import print_table
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.core.query import QuerySpec
from repro.core.rerank import exact_search
from repro.normalize import standard_normalizer
from repro.roadnet import generate_city_network
from repro.workload import WorkloadBuilder


def build_workload(num_trajectories: int, num_queries: int, seed: int):
    """Road-network corpus of ``num_trajectories`` re-recordings."""
    per_direction = 10
    num_routes = max(1, -(-num_trajectories // (2 * per_direction)))
    network = generate_city_network(
        half_side_m=2_000.0, spacing_m=250.0, seed=seed
    )
    dataset = WorkloadBuilder(network, seed=seed + 1).build(
        num_routes=num_routes,
        trajectories_per_direction=per_direction,
        num_queries=num_queries,
    )
    corpus = [
        (r.trajectory_id, list(r.points))
        for r in dataset.records[:num_trajectories]
    ]
    queries = [list(q.points) for q in dataset.queries]
    return corpus, queries


def assert_identical(name, got, want) -> None:
    if [r.trajectory_id for r in got] != [r.trajectory_id for r in want]:
        raise AssertionError(
            f"{name}: tiered ids/order diverge from the brute-force oracle"
        )
    for ours, theirs in zip(got, want):
        if not math.isclose(
            ours.distance, theirs.distance, rel_tol=1e-9, abs_tol=1e-9
        ):
            raise AssertionError(
                f"{name}: distance {ours.distance!r} != oracle "
                f"{theirs.distance!r} for {ours.trajectory_id!r}"
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectories",
        type=int,
        default=2000,
        help="corpus size (the acceptance bar is measured at >= 2000)",
    )
    parser.add_argument(
        "--queries", type=int, default=5, help="number of exact kNN queries"
    )
    parser.add_argument(
        "--limit", type=int, default=10, help="k of the exact kNN"
    )
    parser.add_argument(
        "--overfetch",
        type=int,
        default=4,
        help="Jaccard candidates fetched per requested result",
    )
    parser.add_argument(
        "--metric", choices=["dtw", "frechet"], default="dtw"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero unless every tiered/brute speedup reaches "
        "this factor (0 = report only)",
    )
    parser.add_argument(
        "--json-out",
        help="write the results as JSON (the CI benchmark artifact)",
    )
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    corpus, queries = build_workload(
        args.trajectories, args.queries, args.seed
    )
    spec = QuerySpec(
        mode="exact_knn",
        metric=args.metric,
        limit=args.limit,
        overfetch=args.overfetch,
    )
    print(
        f"corpus: {len(corpus)} trajectories; {len(queries)} exact kNN "
        f"queries, metric={args.metric}, k={args.limit}, "
        f"overfetch={args.overfetch} (seed {args.seed})"
    )

    # Brute force once — the oracle is backend-independent.
    brute_start = time.perf_counter()
    oracle = [exact_search(query, corpus, spec) for query in queries]
    brute_s = time.perf_counter() - brute_start

    # Dense fingerprints (k=3, t=5): every same-route recording shares
    # terms with the query, so the retrieval tier's candidate pool
    # covers the true top-k and the identity cross-check below is a
    # meaningful exactness bar, not a recall lottery.
    config = GeodabConfig(k=3, t=5)
    backends = (
        ("single", lambda: GeodabIndex(
            config, normalizer=standard_normalizer(), store_points=True
        )),
        ("sharded", lambda: ShardedGeodabIndex(
            config,
            ShardingConfig(num_shards=8, num_nodes=2, placement="hash"),
            normalizer=standard_normalizer(),
            store_points=True,
        )),
    )
    rows = []
    report = []
    speedups = []
    for name, builder in backends:
        index = builder()
        index.add_many(corpus)
        index.query(queries[0], spec=spec)  # warm-up, untimed
        tiered_start = time.perf_counter()
        tiered = [index.query(query, spec=spec) for query in queries]
        tiered_s = time.perf_counter() - tiered_start
        for query_id, (got, want) in enumerate(zip(tiered, oracle)):
            assert_identical(f"{name} q{query_id}", got, want)
        speedup = brute_s / tiered_s if tiered_s > 0 else float("inf")
        speedups.append(speedup)
        rows.append(
            [
                name,
                len(queries) / brute_s,
                len(queries) / tiered_s,
                brute_s,
                tiered_s,
                speedup,
            ]
        )
        report.append(
            {
                "index": name,
                "brute_qps": len(queries) / brute_s,
                "tiered_qps": len(queries) / tiered_s,
                "brute_s": brute_s,
                "tiered_s": tiered_s,
                "speedup": speedup,
            }
        )
    print_table(
        f"Exact kNN: brute force vs tiered retrieve+re-rank "
        f"({len(queries)} queries, {len(corpus)}-trajectory corpus, "
        f"metric={args.metric}, k={args.limit})",
        ["index", "brute q/s", "tiered q/s", "brute s", "tiered s",
         "speedup"],
        rows,
    )
    print("cross-check: tiered answers identical to the oracle on both backends")
    if args.json_out:
        payload = {
            "benchmark": "rerank",
            "trajectories": len(corpus),
            "queries": len(queries),
            "limit": args.limit,
            "overfetch": args.overfetch,
            "metric": args.metric,
            "seed": args.seed,
            "results": report,
            "min_speedup_bar": args.min_speedup,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if args.min_speedup > 0 and min(speedups) < args.min_speedup:
        print(
            f"FAIL: minimum speedup {min(speedups):.2f}x below the "
            f"{args.min_speedup:.2f}x bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
