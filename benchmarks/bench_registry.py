"""Fingerprint registry: per-variant ingest cost and exact-kNN recall.

A registry index fingerprints every trajectory once per registered
variant, so ingest cost scales with the registry size — this benchmark
measures that overhead against a single-variant baseline.  The payoff
side is retrieval quality: exact kNN re-ranks only the candidates the
fingerprint tier surfaces, so tier-1 *recall of the true top-k* bounds
answer quality at any fixed ``overfetch``.  The benchmark measures that
recall through the sparse default variant (the paper's parameters) and
through a dense registered variant on the same index, plus the exact
query latency through each.

The recall gate is a ratio: the dense variant must reach at least
``--min-recall-ratio`` times the default variant's recall (CI pins
>= 1.0 — a registry must never retrieve *worse* than the baseline it
generalizes).  Latency is report-only: the dense variant reads more
postings by design; what it buys is recall, not speed.

Run with:  python benchmarks/bench_registry.py
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time

from repro.bench.report import print_table
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.core.query import QuerySpec
from repro.core.registry import VariantSpec
from repro.core.rerank import exact_search
from repro.normalize import standard_normalizer
from repro.roadnet import generate_city_network
from repro.workload import WorkloadBuilder

#: The dense registered variant: 3-grams over a winnowing window of 3.
DENSE = VariantSpec("dense", normalization_depth=36, k=3, t=5)


def build_workload(num_trajectories: int, num_queries: int, seed: int):
    """Road-network corpus of re-recordings (the paper's regime)."""
    per_direction = 10
    num_routes = max(1, -(-num_trajectories // (2 * per_direction)))
    network = generate_city_network(
        half_side_m=2_000.0, spacing_m=250.0, seed=seed
    )
    dataset = WorkloadBuilder(network, seed=seed + 1).build(
        num_routes=num_routes,
        trajectories_per_direction=per_direction,
        num_queries=num_queries,
    )
    corpus = [
        (r.trajectory_id, list(r.points))
        for r in dataset.records[:num_trajectories]
    ]
    queries = [list(q.points) for q in dataset.queries]
    return corpus, queries


def build_index(variants):
    return GeodabIndex(
        GeodabConfig(),  # the "default" variant: the paper's parameters
        normalizer=standard_normalizer(),
        store_points=True,
        variants=variants,
    )


def tier1_recall(index, queries, oracle_ids, variant, tier1_limit):
    """Mean fraction of the oracle top-k inside the tier-1 candidates."""
    recalls = []
    for query, want in zip(queries, oracle_ids):
        prepared = index.prepare_query(query, variant=variant)
        results, _ = index.query_prepared(
            prepared, limit=tier1_limit, max_distance=1.0
        )
        got = {r.trajectory_id for r in results}
        recalls.append(len(got & set(want)) / len(want) if want else 1.0)
    return sum(recalls) / len(recalls)


def timed_exact_queries(index, queries, spec):
    index.query(queries[0], spec=spec)  # warm-up, untimed
    start = time.perf_counter()
    for query in queries:
        index.query(query, spec=spec)
    return time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectories", type=int, default=2000, help="corpus size"
    )
    parser.add_argument(
        "--queries", type=int, default=5, help="number of exact kNN queries"
    )
    parser.add_argument(
        "--limit", type=int, default=10, help="k of the exact kNN"
    )
    parser.add_argument(
        "--overfetch",
        type=int,
        default=4,
        help="Jaccard candidates fetched per requested result",
    )
    parser.add_argument(
        "--min-recall-ratio",
        type=float,
        default=0.0,
        help="exit non-zero unless dense-variant tier-1 recall reaches "
        "this multiple of the default variant's (0 = report only)",
    )
    parser.add_argument(
        "--json-out",
        help="write the results as JSON (the CI benchmark artifact)",
    )
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    corpus, queries = build_workload(
        args.trajectories, args.queries, args.seed
    )
    print(
        f"corpus: {len(corpus)} trajectories; {len(queries)} exact kNN "
        f"queries, k={args.limit}, overfetch={args.overfetch} "
        f"(seed {args.seed})"
    )

    # Ingest cost: single-variant baseline vs two-variant registry.
    # A throwaway warm-up ingest first, so one-time numpy/normalizer
    # costs don't land on whichever build runs first.
    build_index((DENSE,)).add_many(corpus[: min(64, len(corpus))])

    baseline = build_index(())
    start = time.perf_counter()
    baseline.add_many(corpus)
    baseline_ingest_s = time.perf_counter() - start

    registry = build_index((DENSE,))
    start = time.perf_counter()
    registry.add_many(corpus)
    registry_ingest_s = time.perf_counter() - start
    ingest_ratio = (
        registry_ingest_s / baseline_ingest_s
        if baseline_ingest_s > 0
        else float("inf")
    )

    # The exact oracle (backend- and variant-independent).
    oracle_spec = QuerySpec(
        mode="exact_knn", metric="dtw", limit=args.limit,
        overfetch=args.overfetch,
    )
    oracle_ids = [
        [r.trajectory_id for r in exact_search(query, corpus, oracle_spec)]
        for query in queries
    ]

    tier1_limit = args.limit * args.overfetch
    rows = []
    report = {}
    for variant in ("default", "dense"):
        recall = tier1_recall(
            registry, queries, oracle_ids, variant, tier1_limit
        )
        spec = QuerySpec(
            mode="exact_knn", metric="dtw", limit=args.limit,
            overfetch=args.overfetch, variant=variant,
        )
        latency_s = timed_exact_queries(registry, queries, spec)
        rows.append(
            [variant, recall, len(queries) / latency_s,
             latency_s / len(queries) * 1e3]
        )
        report[variant] = {
            "tier1_recall": recall,
            "exact_qps": len(queries) / latency_s,
            "exact_ms_per_query": latency_s / len(queries) * 1e3,
        }
    print_table(
        f"Registry: tier-1 recall of the exact top-{args.limit} and "
        f"exact-kNN latency per variant ({len(corpus)} trajectories)",
        ["variant", "tier-1 recall", "exact q/s", "ms/query"],
        rows,
    )
    recall_ratio = (
        report["dense"]["tier1_recall"] / report["default"]["tier1_recall"]
        if report["default"]["tier1_recall"] > 0
        else float("inf")
    )
    print(
        f"ingest: baseline {baseline_ingest_s:.3f}s, two-variant registry "
        f"{registry_ingest_s:.3f}s ({ingest_ratio:.2f}x; one extra "
        f"columnar sweep per variant)"
    )
    print(
        f"recall ratio dense/default: {recall_ratio:.3f} "
        f"(latency is report-only)"
    )

    if args.json_out:
        payload = {
            "benchmark": "registry",
            "trajectories": len(corpus),
            "queries": len(queries),
            "limit": args.limit,
            "overfetch": args.overfetch,
            "seed": args.seed,
            "variants": {
                "default": dataclasses.asdict(GeodabConfig()),
                "dense": DENSE.to_json(),
            },
            "ingest": {
                "baseline_s": baseline_ingest_s,
                "registry_s": registry_ingest_s,
                "ratio": ingest_ratio,
            },
            "results": report,
            "recall_ratio": recall_ratio,
            "min_recall_ratio_bar": args.min_recall_ratio,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")

    if args.min_recall_ratio > 0 and recall_ratio < args.min_recall_ratio:
        print(
            f"FAIL: dense/default recall ratio {recall_ratio:.3f} below "
            f"the {args.min_recall_ratio:.2f} bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
