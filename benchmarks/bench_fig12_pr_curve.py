"""Figure 12 — PR curves: geodab index vs geohash index.

The defining effectiveness result: on a dataset where every route has a
return path, the geohash index cannot tell directions apart, so its
precision decays towards 0.5 as recall grows; the geodab index keeps
precision near 1 for most of the recall range.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.bench.runner import build_geodab_index, build_geohash_index
from repro.ir.metrics import average_pr_curve, precision_recall_curve

RECALL_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@pytest.fixture(scope="module")
def built_indexes(retrieval_workload):
    return (
        build_geodab_index(retrieval_workload),
        build_geohash_index(retrieval_workload),
    )


def _average_curve(index, dataset):
    curves = []
    for query in dataset.queries:
        ranked = [r.trajectory_id for r in index.query(query.points)]
        if ranked:
            curves.append(precision_recall_curve(ranked, query.relevant_ids))
    return average_pr_curve(curves, RECALL_LEVELS)


def bench_fig12_pr_curve(benchmark, built_indexes, retrieval_workload, capsys):
    """Regenerate the two PR curves and assert their relative shape."""
    geodab_index, geohash_index = built_indexes
    geodab_curve = _average_curve(geodab_index, retrieval_workload)
    geohash_curve = _average_curve(geohash_index, retrieval_workload)

    with capsys.disabled():
        print_table(
            "Figure 12: interpolated precision at recall levels",
            ["index"] + [f"R={level:.1f}" for level in RECALL_LEVELS],
            [
                ["geodabs"] + [p.precision for p in geodab_curve],
                ["geohash"] + [p.precision for p in geohash_curve],
            ],
        )

    # Paper shape: geodabs dominate; early geodab precision ~1; geohash
    # sinks towards the 0.5 direction-blindness plateau.
    assert geodab_curve[0].precision > 0.9
    for g, h in zip(geodab_curve, geohash_curve):
        assert g.precision >= h.precision - 0.05
    assert geohash_curve[-1].precision < 0.75

    queries = retrieval_workload.queries

    def run_query_batch():
        for query in queries:
            geodab_index.query(query.points)

    benchmark.pedantic(run_query_batch, rounds=3, iterations=1)
