"""Cluster serving: worker-process fan-out vs the in-process thread pool.

The serving tier can now scatter shard work through a pluggable
transport (PR 7).  This benchmark pits the two local implementations
against each other on a CPU-bound query burst:

* **thread** — ``InProcessTransport``: shard partials run on the
  coordinator's thread pool, so concurrent queries contend for the GIL
  in every scalar stretch between numpy sweeps;
* **process** — ``WorkerProcessTransport``: shard partials run in
  worker processes that ``np.memmap`` the published snapshot, so the
  per-shard postings intersections parallelize across cores and the
  coordinator only merges and ranks.

A sharded corpus is built once and published as a snapshot; the same
prepared-query burst is then served through both transports by a small
pool of concurrent client threads, and the rankings are cross-checked
for bit-identical results every run.  The acceptance bar for this PR
is process >= 2x thread at 8 shards on a multi-core machine locally;
CI gates a conservative 1.3x via ``--min-speedup``.  On a single-core
machine the comparison is meaningless (worker processes time-slice the
same core and add serialization overhead), so the gate automatically
relaxes to report-only and records why in the JSON artifact.

Run with:  python benchmarks/bench_cluster.py
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time

from bench_query_throughput import (
    NUM_SHARDS,
    build_sharded,
    noisy_queries,
    synthetic_corpus,
)

from repro.bench.report import print_table
from repro.core.persistence import publish_snapshot
from repro.service.executor import QueryExecutor
from repro.service.transport import InProcessTransport, WorkerProcessTransport


def available_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def serve_burst(
    executor: QueryExecutor,
    prepared_queries: list,
    limit: int,
    clients: int,
) -> tuple[float, list]:
    """Serve the burst from ``clients`` concurrent threads; wall time."""
    results: list = [None] * len(prepared_queries)
    errors: list[BaseException] = []

    def client(offset: int) -> None:
        try:
            for position in range(offset, len(prepared_queries), clients):
                ranked, _ = executor.execute_prepared(
                    prepared_queries[position], limit
                )
                results[position] = ranked
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(offset,), daemon=True)
        for offset in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectories",
        type=int,
        default=2000,
        help="corpus size (the acceptance bar is measured at >= 2000)",
    )
    parser.add_argument(
        "--queries", type=int, default=200, help="size of the query burst"
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent client threads driving the burst",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes behind the process transport",
    )
    parser.add_argument("--limit", type=int, default=10)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero unless process/thread speedup reaches this "
        "factor (0 = report only; automatically relaxed to report-only "
        "on single-core machines)",
    )
    parser.add_argument(
        "--json-out",
        help="write the results as JSON (the CI benchmark artifact)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    cores = available_cores()
    corpus = synthetic_corpus(args.trajectories, seed=args.seed)
    queries = noisy_queries(corpus, args.queries, seed=args.seed + 1)
    points_total = sum(len(points) for _, points in corpus)
    print(
        f"corpus: {len(corpus)} trajectories, {points_total:,} points over "
        f"{NUM_SHARDS} shards; burst of {len(queries)} queries from "
        f"{args.clients} clients; {cores} usable core(s)"
    )

    index = build_sharded()
    index.add_many(corpus)
    prepared_queries = index.prepare_query_many(queries)

    rows = []
    report = []
    timings: dict[str, float] = {}
    baselines: dict[str, list] = {}
    with tempfile.TemporaryDirectory(prefix="geodab-bench-") as tmp:
        snapshot_path = publish_snapshot(index, tmp, tag="bench")
        transports = (
            ("thread", lambda: InProcessTransport(index)),
            (
                "process",
                lambda: WorkerProcessTransport(
                    snapshot_path, num_workers=args.workers
                ),
            ),
        )
        for name, make_transport in transports:
            executor = QueryExecutor(
                index,
                pool_size=NUM_SHARDS,
                transport=make_transport(),
            )
            try:
                # Warm-up: fold append buffers / fault the mmap pages in.
                serve_burst(
                    executor, prepared_queries[: args.clients], args.limit,
                    args.clients,
                )
                elapsed, results = serve_burst(
                    executor, prepared_queries, args.limit, args.clients
                )
            finally:
                executor.close()
            timings[name] = elapsed
            baselines[name] = results
            rows.append([name, len(queries) / elapsed, elapsed])
            report.append(
                {
                    "transport": name,
                    "qps": len(queries) / elapsed,
                    "elapsed_s": elapsed,
                }
            )
    if baselines["thread"] != baselines["process"]:
        raise AssertionError(
            "process transport returned different rankings than the "
            "thread transport"
        )
    speedup = (
        timings["thread"] / timings["process"]
        if timings["process"] > 0
        else float("inf")
    )
    print_table(
        f"Shard fan-out: thread vs worker-process transport "
        f"({len(queries)} queries, {args.clients} clients, "
        f"{args.workers} workers, {NUM_SHARDS} shards)",
        ["transport", "q/s", "elapsed s"],
        rows,
    )
    print(f"process/thread speedup: {speedup:.2f}x")

    gate = "report-only"
    gate_passed = True
    if args.min_speedup > 0:
        if cores < 2:
            gate = (
                f"skipped: {cores} usable core(s); worker processes "
                "cannot outrun the thread pool without parallelism"
            )
            print(f"gate relaxed to report-only ({gate})")
        else:
            gate = f">= {args.min_speedup:.2f}x"
            gate_passed = speedup >= args.min_speedup

    if args.json_out:
        payload = {
            "benchmark": "cluster_transport",
            "trajectories": len(corpus),
            "queries": len(queries),
            "clients": args.clients,
            "workers": args.workers,
            "shards": NUM_SHARDS,
            "limit": args.limit,
            "seed": args.seed,
            "cores": cores,
            "results": report,
            "speedup": speedup,
            "min_speedup_bar": args.min_speedup,
            "gate": gate,
            "gate_passed": gate_passed,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if not gate_passed:
        print(
            f"FAIL: speedup {speedup:.2f}x below the "
            f"{args.min_speedup:.2f}x bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
