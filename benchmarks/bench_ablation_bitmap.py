"""Ablation — fingerprint-set backend: roaring bitmaps vs frozensets.

The paper stores fingerprint sets as roaring bitmaps (Section IV-A,
citing Lemire et al.).  This ablation measures Jaccard-scoring throughput
and memory footprint of the roaring backend against plain Python
frozensets on synthetic fingerprint sets of increasing size.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.bench.report import print_table
from repro.bench.runner import time_callable
from repro.bitmap.roaring import RoaringBitmap

SET_SIZES = (100, 1_000, 10_000, 100_000)
PAIRS = 50


def _random_pairs(size: int, seed: int):
    rng = Random(seed)
    universe = size * 4
    out = []
    for _ in range(PAIRS):
        a = frozenset(rng.randrange(universe) for _ in range(size))
        # ~50% overlap between the pair.
        b = frozenset(
            list(a)[: size // 2]
            + [rng.randrange(universe) for _ in range(size // 2)]
        )
        out.append((a, b))
    return out


def bench_ablation_bitmap(benchmark, capsys):
    """Jaccard throughput: roaring bitmaps vs frozensets."""
    rows = []
    for size in SET_SIZES:
        pairs = _random_pairs(size, seed=size)
        roaring_pairs = [
            (RoaringBitmap.from_iterable(a), RoaringBitmap.from_iterable(b))
            for a, b in pairs
        ]

        def jaccard_frozenset():
            for a, b in pairs:
                inter = len(a & b)
                _ = 1.0 - inter / (len(a) + len(b) - inter)

        def jaccard_roaring():
            for a, b in roaring_pairs:
                a.jaccard_distance(b)

        roaring_bytes = sum(a.byte_size() + b.byte_size() for a, b in roaring_pairs)
        # Rough frozenset footprint: 8-byte pointers in a sparse table plus
        # a 32-byte int object per element.
        frozenset_bytes = sum((len(a) + len(b)) * 40 for a, b in pairs)
        rows.append(
            [
                size,
                time_callable(jaccard_frozenset, repeats=2),
                time_callable(jaccard_roaring, repeats=2),
                frozenset_bytes // 1024,
                roaring_bytes // 1024,
            ]
        )

    with capsys.disabled():
        print_table(
            f"Ablation: Jaccard over {PAIRS} set pairs (ms / KiB)",
            ["set size", "frozenset ms", "roaring ms", "frozenset KiB", "roaring KiB"],
            rows,
        )

    # Roaring's memory advantage must show at scale.
    assert rows[-1][4] < rows[-1][3]

    pairs = _random_pairs(10_000, seed=10_000)
    roaring_pairs = [
        (RoaringBitmap.from_iterable(a), RoaringBitmap.from_iterable(b))
        for a, b in pairs
    ]

    def score_roaring():
        for a, b in roaring_pairs:
            a.jaccard_distance(b)

    benchmark(score_roaring)
