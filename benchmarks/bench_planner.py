"""Query planner: WAND-style bounded collection vs exhaustive scatter.

The planner (PR 10) orders a query's terms rarest-first, turns the
running k-th-best Jaccard distance into a minimum-overlap threshold,
and stops opening postings lists once no unseen candidate can still
reach the top-k — the remaining (frequent) terms only update the
counts of already-materialized candidates.  On a skewed term
distribution — which real geodab corpora have: trunk-road and city-core
cells appear in a large fraction of trajectories — that skips exactly
the postings that dominate exhaustive collection.

This benchmark indexes a Zipf-skewed synthetic corpus (terms drawn
from a power-law universe, so a handful of "trunk" terms appear in
most documents) on both backends and serves the same top-k burst twice:

* **exhaustive** — ``plan="off"``: every term's postings are merged;
* **planned** — ``plan="auto"``: bounded collection with completion.

Rankings are cross-checked for bit-identity on every run (the planner
is answer-preserving by construction; this benchmark re-proves it at
scale before timing anything).  The acceptance bar is planned >= 2x
exhaustive on the single-node path at >= 2k documents locally; CI
gates a conservative 1.3x via ``--min-speedup --gate single`` (the
sharded path's per-shard fan-out overhead makes its ratio too noisy
to gate at this corpus size; it is still cross-checked and reported).

Run with:  python benchmarks/bench_planner.py
"""

from __future__ import annotations

import argparse
import json
import random
import time

from repro.bench.report import print_table
from repro.cluster import ShardedGeodabIndex, ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.fingerprint import FingerprintSet
from repro.core.index import GeodabIndex
from repro.core.query import QuerySpec
from repro.core.winnowing import Selection

NUM_SHARDS = 8
NUM_NODES = 2
#: Trunk-term universe and skew: rank-r term has weight 1/r**ZIPF_S, so
#: a handful of "trunk road" terms land in most documents — the heavy
#: postings lists the planner's cut avoids opening.
TRUNK_UNIVERSE = 300
ZIPF_S = 1.05
#: Recordings per route: each route is re-recorded this many times, so
#: every query has a cluster of close matches and the running k-th-best
#: distance locks in a tight threshold early.
RECORDINGS_PER_ROUTE = 20
ROUTE_TERMS = 40
TRUNK_TERMS_PER_DOC = 40
#: Route-identifying terms live above the trunk universe.
ROUTE_TERM_BASE = 1_000_000


def fingerprint(terms) -> FingerprintSet:
    """A FingerprintSet over explicit term values."""
    distinct = sorted(set(terms))
    return FingerprintSet.from_selections(
        [Selection(term, i) for i, term in enumerate(distinct)], wide=False
    )


class _ZipfSampler:
    """Inverse-CDF sampling over truncated Zipf weights: cheap,
    dependency-free, and deterministic under the seed."""

    def __init__(self, universe: int, s: float) -> None:
        self.cumulative = []
        total = 0.0
        for rank in range(1, universe + 1):
            total += 1.0 / (rank**s)
            self.cumulative.append(total)
        self.total = total

    def draw(self, rng: random.Random) -> int:
        target = rng.uniform(0.0, self.total)
        lo, hi = 0, len(self.cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.cumulative[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo


def _recording(rng: random.Random, route_terms, trunk: _ZipfSampler):
    """One noisy re-recording of a route: most of the route's rare
    terms plus a Zipf draw of trunk terms."""
    kept = [t for t in route_terms if rng.random() > 0.1]
    trunk_terms = {trunk.draw(rng) for _ in range(TRUNK_TERMS_PER_DOC)}
    return sorted(set(kept) | trunk_terms)


def route_corpus(
    num_documents: int, seed: int = 0
) -> tuple[list[tuple[str, list[int]]], list[list[int]]]:
    """A fleet-shaped corpus: routes re-recorded many times.

    Each route has :data:`ROUTE_TERMS` identifying rare terms; each of
    its :data:`RECORDINGS_PER_ROUTE` recordings keeps ~90% of them and
    adds a Zipf draw of trunk terms.  Queries are fresh recordings of
    the first routes — so the top-k fills with that route's cluster at
    a small distance, which is exactly the regime where the planner's
    threshold cuts off the trunk terms' heavy postings lists.
    """
    rng = random.Random(seed)
    trunk = _ZipfSampler(TRUNK_UNIVERSE, ZIPF_S)
    routes = []
    corpus = []
    doc = 0
    while doc < num_documents:
        route_id = len(routes)
        route_terms = [
            ROUTE_TERM_BASE + route_id * ROUTE_TERMS + i
            for i in range(ROUTE_TERMS)
        ]
        routes.append(route_terms)
        for _ in range(min(RECORDINGS_PER_ROUTE, num_documents - doc)):
            corpus.append((f"t{doc:05d}", _recording(rng, route_terms, trunk)))
            doc += 1
    return corpus, routes


def noisy_queries(
    routes: list[list[int]], num_queries: int, seed: int = 1
) -> list[list[int]]:
    """Fresh recordings of the corpus routes (queries with real hits)."""
    rng = random.Random(seed)
    trunk = _ZipfSampler(TRUNK_UNIVERSE, ZIPF_S)
    return [
        _recording(rng, routes[index % len(routes)], trunk)
        for index in range(num_queries)
    ]


def build_single(corpus) -> GeodabIndex:
    index = GeodabIndex(GeodabConfig())
    name = index.variant_names[0]
    index.add_fingerprints_many(
        [(tid, {name: fingerprint(terms)}, None) for tid, terms in corpus]
    )
    # Fold every append buffer up front — the serving tier's compaction
    # policy keeps stores in this state, and neither timed path should
    # carry one-time compaction the other skips.
    index.compact()
    return index


def build_sharded(corpus) -> ShardedGeodabIndex:
    index = ShardedGeodabIndex(
        GeodabConfig(),
        ShardingConfig(
            num_shards=NUM_SHARDS, num_nodes=NUM_NODES, placement="hash"
        ),
    )
    name = index.variant_names[0]
    index.add_fingerprints_many(
        [(tid, {name: fingerprint(terms)}, None) for tid, terms in corpus]
    )
    index.compact()
    return index


def serve_single(index, fingerprints, limit, max_distance, plan):
    # Process CPU time, not wall clock: the burst is pure single-thread
    # compute, so on an idle host the two agree, and under co-tenant
    # load CPU time keeps measuring the code instead of the scheduler.
    start = time.process_time()
    results = []
    skipped = 0
    for fset in fingerprints:
        ranked, stats = index.query_terms(
            fset.values, fset.bitmap, limit, max_distance, plan=plan
        )
        results.append([(r.trajectory_id, r.distance) for r in ranked])
        skipped += stats.postings_skipped
    return time.process_time() - start, results, skipped


def serve_sharded(index, prepared_list, limit, max_distance, plan):
    spec = QuerySpec(limit=limit, max_distance=max_distance, plan=plan)
    start = time.process_time()
    results = []
    skipped = 0
    for prepared in prepared_list:
        ranked, stats = index.query_prepared(prepared, spec=spec)
        results.append([(r.trajectory_id, r.distance) for r in ranked])
        skipped += stats.postings_skipped
    return time.process_time() - start, results, skipped


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectories",
        type=int,
        default=2000,
        help="corpus size (the acceptance bar is measured at >= 2000)",
    )
    parser.add_argument(
        "--queries", type=int, default=200, help="size of the query burst"
    )
    parser.add_argument("--limit", type=int, default=10)
    parser.add_argument(
        "--max-distance",
        type=float,
        default=0.4,
        help="Jaccard distance cap: the query asks for close matches "
        "only, which hands the planner its threshold up front",
    )
    parser.add_argument(
        "--passes",
        type=int,
        default=3,
        help="timed passes per path; the best one is reported "
        "(single-pass wall times are too noisy to gate on)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero unless every gated planned/exhaustive "
        "speedup reaches this factor (0 = report only)",
    )
    parser.add_argument(
        "--gate",
        default="single,sharded",
        help="comma-separated index names --min-speedup applies to; "
        "the rest are report-only (the sharded path's per-shard "
        "fan-out overhead makes its ratio noisy at small corpora)",
    )
    parser.add_argument(
        "--json-out",
        help="write the results as JSON (the CI benchmark artifact)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    corpus, routes = route_corpus(args.trajectories, seed=args.seed)
    queries = noisy_queries(routes, args.queries, seed=args.seed + 1)
    postings_total = sum(len(terms) for _, terms in corpus)
    print(
        f"corpus: {len(corpus)} documents ({len(routes)} routes x "
        f"{RECORDINGS_PER_ROUTE} recordings), {postings_total:,} postings; "
        f"trunk terms Zipf(s={ZIPF_S}) over {TRUNK_UNIVERSE:,}; "
        f"burst of {len(queries)} top-{args.limit} queries (seed {args.seed})"
    )

    gated_names = {name.strip() for name in args.gate.split(",") if name}
    rows = []
    report = []
    speedups = {}

    single = build_single(corpus)
    fingerprints = [fingerprint(terms) for terms in queries]
    sharded = build_sharded(corpus)
    prepared_list = [
        sharded._plan_query(fset, sharded.variant_names[0])
        for fset in fingerprints
    ]

    benches = (
        ("single", lambda plan: serve_single(
            single, fingerprints, args.limit, args.max_distance, plan)),
        ("sharded", lambda plan: serve_sharded(
            sharded, prepared_list, args.limit, args.max_distance, plan)),
    )
    for name, serve in benches:
        # One warm-up pass per path, then best-of-N timed passes,
        # interleaved so OS scheduling drift hits both paths alike
        # (single-pass wall times on a busy host vary far more than the
        # effect being measured).  Rankings are cross-checked on every
        # timed pass.
        serve("off")
        serve("auto")
        off_s = auto_s = float("inf")
        skipped = 0
        for _ in range(args.passes):
            pass_off_s, off_results, _ = serve("off")
            pass_auto_s, auto_results, skipped = serve("auto")
            if off_results != auto_results:
                raise AssertionError(
                    f"{name}: planned collection returned different "
                    "rankings than the exhaustive path"
                )
            off_s = min(off_s, pass_off_s)
            auto_s = min(auto_s, pass_auto_s)
        speedup = off_s / auto_s if auto_s > 0 else float("inf")
        speedups[name] = speedup
        rows.append(
            [
                name,
                len(queries) / off_s,
                len(queries) / auto_s,
                skipped / len(queries),
                speedup,
            ]
        )
        report.append(
            {
                "index": name,
                "exhaustive_qps": len(queries) / off_s,
                "planned_qps": len(queries) / auto_s,
                "exhaustive_s": off_s,
                "planned_s": auto_s,
                "postings_skipped_per_query": skipped / len(queries),
                "speedup": speedup,
            }
        )
    print_table(
        f"Top-{args.limit} burst: exhaustive collection (plan=off) vs the "
        f"query planner (plan=auto) ({len(queries)} queries, "
        f"{len(corpus)}-document corpus)",
        ["index", "exhaustive q/s", "planned q/s", "skipped/query",
         "speedup"],
        rows,
    )
    if args.json_out:
        payload = {
            "benchmark": "planner",
            "trajectories": len(corpus),
            "queries": len(queries),
            "limit": args.limit,
            "passes": args.passes,
            "max_distance": args.max_distance,
            "trunk_universe": TRUNK_UNIVERSE,
            "zipf_s": ZIPF_S,
            "recordings_per_route": RECORDINGS_PER_ROUTE,
            "seed": args.seed,
            "results": report,
            "min_speedup_bar": args.min_speedup,
            "gated": sorted(gated_names),
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    gated = [s for name, s in speedups.items() if name in gated_names]
    if args.min_speedup > 0 and gated and min(gated) < args.min_speedup:
        print(
            f"FAIL: minimum gated speedup {min(gated):.2f}x below the "
            f"{args.min_speedup:.2f}x bar (gated: {args.gate})"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
