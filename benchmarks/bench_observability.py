"""Observability overhead: instrumented hot path vs instrumentation off.

This PR threads stage accounting (prepare/fanout/merge/rank timings),
per-request latency histograms, and an optional span-tree tracer
through the query hot path.  The acceptance bar is that the always-on
portion — one fused histogram/stage record per request plus dict-based
stage aggregation — costs under 5% of query throughput at a >= 2000
trajectory corpus; detailed span trees are opt-in per request and are
*not* part of the bar.

Two identical services are built over the same corpus:

* **off** — ``ServiceMetrics(enabled=False)``: every record call
  early-returns and the service skips opening a trace entirely, so the
  executor runs with the ``NO_TRACE`` null sink;
* **on**  — default metrics: every query feeds the latency histogram,
  the QPS window, and the per-stage histograms (no span objects are
  allocated below detail).

Both services run *without* the pooled executor: thread-pool
scheduling jitter is an order of magnitude larger than the
microsecond-level effect being measured, and the sequential path
exercises the same instrumented call sites (prepare, fanout, merge,
rank, fused record).  The estimator is calibrated for noisy
shared-CPU machines, where cgroup throttling freezes and clock-speed
drift move wall time by far more than the effect under test:

* every off measurement is immediately followed by its on twin (same
  query or same burst), so drift hits both sides of a pair equally;
* the overhead is the **median of per-pair deltas** over every pair in
  every pass — a scheduler freeze corrupts a handful of pairs instead
  of a whole pass, and the median discards them.  (Comparing the two
  sides' totals, or min-of-each-side, fabricates double-digit swings
  on a busy container.)

The ``per-query`` path pairs individual ``query()`` calls; the
``batched`` path pairs ``query_many()`` bursts of ``--burst`` queries.
The result cache is invalidated before every pass (cache hits would
hide the execution path this PR instruments); the fingerprint cache
stays warm on both sides.  CI gates with a conservative
``--max-overhead-pct`` to absorb runner noise, and ``--json-out``
records the run for the benchmark-artifact trail.

Run with:  python benchmarks/bench_observability.py
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

from bench_query_throughput import build_sharded, noisy_queries, synthetic_corpus

from repro.bench.report import print_table
from repro.service import IndexService, ServiceMetrics


def build_service(corpus, *, enabled: bool) -> IndexService:
    service = IndexService(
        build_sharded(), metrics=ServiceMetrics(enabled=enabled)
    )
    service.ingest(corpus)
    return service


def paired_queries(off, on, queries, limit):
    """Per-query pairs: (off_s, on_s) for each individual query."""
    off.result_cache.invalidate_all()
    on.result_cache.invalidate_all()
    pairs = []
    for points in queries:
        t0 = time.perf_counter()
        off.query(points, limit=limit)
        t1 = time.perf_counter()
        on.query(points, limit=limit)
        t2 = time.perf_counter()
        pairs.append((t1 - t0, t2 - t1))
    return pairs


def paired_bursts(off, on, queries, limit, burst):
    """Per-burst pairs: (off_s, on_s) per ``burst``-query chunk,
    normalized to seconds per query."""
    off.result_cache.invalidate_all()
    on.result_cache.invalidate_all()
    pairs = []
    for begin in range(0, len(queries) - burst + 1, burst):
        chunk = queries[begin : begin + burst]
        t0 = time.perf_counter()
        off.query_many(chunk, limit=limit)
        t1 = time.perf_counter()
        on.query_many(chunk, limit=limit)
        t2 = time.perf_counter()
        pairs.append(((t1 - t0) / burst, (t2 - t1) / burst))
    return pairs


def measure(run_pass, passes):
    """Median per-query baseline and per-pair delta across all passes.

    Returns ``(off_s, on_s, overhead_pct)`` — all per query, with the
    on side reconstructed as baseline + median delta so one throttled
    pair cannot push the reported overhead around.
    """
    run_pass()  # warm-up pass (not measured)
    pairs = []
    for _ in range(passes):
        pairs.extend(run_pass())
    base = statistics.median(off_s for off_s, _ in pairs)
    delta = statistics.median(on_s - off_s for off_s, on_s in pairs)
    return base, base + delta, delta / base * 100.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectories",
        type=int,
        default=2000,
        help="corpus size (the acceptance bar is measured at >= 2000)",
    )
    parser.add_argument(
        "--queries", type=int, default=200, help="size of the query set"
    )
    parser.add_argument("--limit", type=int, default=10, help="top-k cut")
    parser.add_argument(
        "--passes",
        type=int,
        default=5,
        help="measured passes over the query set per path",
    )
    parser.add_argument(
        "--burst",
        type=int,
        default=25,
        help="queries per query_many burst on the batched path",
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=0.0,
        help="exit non-zero if any path's median instrumentation "
        "overhead exceeds this percentage (0 = report only; the local "
        "bar is 5)",
    )
    parser.add_argument(
        "--json-out",
        help="write the results as JSON (the CI benchmark artifact)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    corpus = synthetic_corpus(args.trajectories, seed=args.seed)
    queries = noisy_queries(corpus, args.queries, seed=args.seed + 1)
    print(
        f"corpus: {len(corpus)} trajectories; {len(queries)} queries, "
        f"limit={args.limit}, median pair delta over {args.passes} passes "
        f"(seed {args.seed})"
    )

    service_off = build_service(corpus, enabled=False)
    service_on = build_service(corpus, enabled=True)
    try:
        paths = (
            (
                "per-query",
                lambda: paired_queries(
                    service_off, service_on, queries, args.limit
                ),
            ),
            (
                "batched",
                lambda: paired_bursts(
                    service_off, service_on, queries, args.limit, args.burst
                ),
            ),
        )
        rows = []
        report = []
        overheads = []
        for name, run_pass in paths:
            off_s, on_s, pct = measure(run_pass, args.passes)
            overheads.append(pct)
            rows.append(
                [name, 1.0 / off_s, 1.0 / on_s, off_s * 1e6, on_s * 1e6, pct]
            )
            report.append(
                {
                    "path": name,
                    "off_qps": 1.0 / off_s,
                    "on_qps": 1.0 / on_s,
                    "off_us_per_query": off_s * 1e6,
                    "on_us_per_query": on_s * 1e6,
                    "overhead_pct": pct,
                }
            )
        snapshot = service_on.metrics.snapshot()
        print_table(
            f"Query hot path: metrics+stage accounting on vs off "
            f"({len(queries)} queries, {len(corpus)}-trajectory corpus, "
            f"limit={args.limit})",
            ["path", "off q/s", "on q/s", "off us/q", "on us/q",
             "overhead %"],
            rows,
        )
        print(
            f"instrumented side recorded {snapshot.queries} queries across "
            f"{len(snapshot.stages)} stage histograms"
        )
    finally:
        service_off.close()
        service_on.close()

    if args.json_out:
        payload = {
            "benchmark": "observability",
            "trajectories": len(corpus),
            "queries": len(queries),
            "limit": args.limit,
            "passes": args.passes,
            "burst": args.burst,
            "seed": args.seed,
            "results": report,
            "max_overhead_pct_bar": args.max_overhead_pct,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if args.max_overhead_pct > 0 and max(overheads) > args.max_overhead_pct:
        print(
            f"FAIL: instrumentation overhead {max(overheads):.2f}% above "
            f"the {args.max_overhead_pct:.2f}% bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
