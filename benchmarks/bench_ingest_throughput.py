"""Bulk-ingest throughput: per-trajectory adds vs the batch pipeline.

The paper benchmarks index construction at scale (Figures 9-10); this
benchmark measures what PR 2 made of it.  A synthetic corpus of random
walks is ingested twice per backend:

* **sequential** — one ``add()`` per trajectory, i.e. one scalar
  normalize → geohash → k-gram hash → winnow pass each (the pre-PR-2
  code path);
* **batch** — one ``add_many()`` call, which fingerprints the whole
  corpus through the numpy-vectorized
  :class:`~repro.pipeline.BatchFingerprinter` and inserts postings in
  one grouped pass (per shard, for the sharded index).

Both paths produce identical indexes (the property tests assert
bit-identical fingerprints; this script cross-checks the index shapes).
The acceptance bar for PR 2 is batch >= 3x sequential on a >= 2k
trajectory corpus; ``--min-speedup`` turns the bar into an exit code so
CI can enforce it.

Run with:  python benchmarks/bench_ingest_throughput.py
"""

from __future__ import annotations

import argparse
import json
import random
import time

from repro.bench.report import print_table
from repro.cluster import ShardedGeodabIndex, ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.geo.point import Point

NUM_SHARDS = 8
NUM_NODES = 2


def synthetic_corpus(
    num_trajectories: int, seed: int = 0
) -> list[tuple[str, list[Point]]]:
    """Random-walk trajectories over a London-sized area.

    Walks use ~100 m steps so consecutive points usually change
    normalization cell — the same regime as the paper's GPS recordings.
    """
    rng = random.Random(seed)
    corpus = []
    for index in range(num_trajectories):
        length = rng.randint(40, 120)
        lat = 51.5 + rng.uniform(-0.1, 0.1)
        lon = -0.12 + rng.uniform(-0.15, 0.15)
        points = []
        for _ in range(length):
            lat += rng.uniform(-1e-3, 1e-3)
            lon += rng.uniform(-1.6e-3, 1.6e-3)
            points.append(Point(lat, lon))
        corpus.append((f"t{index:05d}", points))
    return corpus


def build_single() -> GeodabIndex:
    return GeodabIndex(GeodabConfig())


def build_sharded() -> ShardedGeodabIndex:
    # Hash placement for the same reason as the serving benchmark: a
    # single-city corpus occupies one sliver of the z-order curve.
    return ShardedGeodabIndex(
        GeodabConfig(),
        ShardingConfig(
            num_shards=NUM_SHARDS, num_nodes=NUM_NODES, placement="hash"
        ),
    )


def ingest_sequential(index, corpus) -> float:
    start = time.perf_counter()
    for trajectory_id, points in corpus:
        index.add(trajectory_id, points)
    return time.perf_counter() - start


def ingest_batch(index, corpus) -> float:
    start = time.perf_counter()
    index.add_many(corpus)
    return time.perf_counter() - start


def shape_of(index) -> tuple:
    if isinstance(index, ShardedGeodabIndex):
        return (len(index), tuple(index.shard_postings_counts()))
    stats = index.stats()
    return (stats.trajectories, stats.terms, stats.postings)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectories",
        type=int,
        default=2000,
        help="corpus size (the acceptance bar is measured at >= 2000)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero unless every batch/sequential speedup "
        "reaches this factor (0 = report only)",
    )
    parser.add_argument(
        "--json-out",
        help="write the results as JSON (the CI benchmark artifact)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    corpus = synthetic_corpus(args.trajectories, seed=args.seed)
    points_total = sum(len(points) for _, points in corpus)
    print(
        f"corpus: {len(corpus)} trajectories, {points_total:,} points "
        f"(seed {args.seed})"
    )

    rows = []
    report = []
    speedups = []
    for name, builder in (("single", build_single), ("sharded", build_sharded)):
        sequential_index = builder()
        sequential_s = ingest_sequential(sequential_index, corpus)
        batch_index = builder()
        batch_s = ingest_batch(batch_index, corpus)
        if shape_of(sequential_index) != shape_of(batch_index):
            raise AssertionError(
                f"{name}: batch ingest built a different index than "
                "sequential ingest"
            )
        speedup = sequential_s / batch_s if batch_s > 0 else float("inf")
        speedups.append(speedup)
        rows.append(
            [
                name,
                len(corpus) / sequential_s,
                len(corpus) / batch_s,
                sequential_s,
                batch_s,
                speedup,
            ]
        )
        report.append(
            {
                "index": name,
                "sequential_tps": len(corpus) / sequential_s,
                "batch_tps": len(corpus) / batch_s,
                "sequential_s": sequential_s,
                "batch_s": batch_s,
                "speedup": speedup,
            }
        )
    print_table(
        f"Bulk ingest: per-trajectory add() vs batch add_many() "
        f"({len(corpus)} trajectories)",
        [
            "index",
            "seq traj/s",
            "batch traj/s",
            "seq s",
            "batch s",
            "speedup",
        ],
        rows,
    )
    if args.json_out:
        payload = {
            "benchmark": "ingest_throughput",
            "trajectories": len(corpus),
            "seed": args.seed,
            "results": report,
            "min_speedup_bar": args.min_speedup,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if args.min_speedup > 0 and min(speedups) < args.min_speedup:
        print(
            f"FAIL: minimum speedup {min(speedups):.2f}x below the "
            f"{args.min_speedup:.2f}x bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
