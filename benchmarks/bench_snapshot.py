"""Snapshot durability: cold rebuild-from-raw vs v2 warm start.

The point of the v2 snapshot format is that restart cost stops scaling
with ingest cost: the columnar postings blobs load as memory-mapped
arrays and the term bitmaps deserialize directly, so nothing is
re-parsed, re-normalized, re-hashed, or re-winnowed.  This benchmark
measures, for both backends on the same synthetic corpus:

* **cold start** — what ``geodabs serve --dataset`` pays on every boot:
  parsing the raw JSONL dataset and building the index from it
  (``add_many``: the vectorized normalize + fingerprint + insert sweep);
* **save** — writing a v2 snapshot (buffers folded first);
* **warm start** — what ``geodabs serve --snapshot-dir`` pays instead:
  ``load_index(..., mmap_mode="r")`` from that snapshot.

Warm-started indexes are cross-checked to answer a query burst
identically to the live index every run.  The acceptance bar for this
PR is warm start >= 5x faster than cold rebuild on a >= 2k-trajectory
corpus locally; CI runs a smaller corpus with a conservative bar via
``--min-speedup``, and ``--json-out`` records the run for the
benchmark-artifact trail.

Run with:  python benchmarks/bench_snapshot.py
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

from bench_query_throughput import (
    DEPTH,
    build_sharded,
    build_single,
    noisy_queries,
    synthetic_corpus,
)

from repro.bench.report import print_table
from repro.core.persistence import load_index, save_index
from repro.normalize import standard_normalizer
from repro.workload.dataset import TrajectoryDataset, TrajectoryRecord


def _dir_bytes(path: Path) -> int:
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


def _rankings(index, queries, limit):
    out = []
    for points in queries:
        prepared = index.prepare_query(points)
        ranked, _ = index.query_prepared(prepared, limit)
        out.append([(r.trajectory_id, r.distance) for r in ranked])
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectories",
        type=int,
        default=2000,
        help="corpus size (the acceptance bar is measured at >= 2000)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=50,
        help="size of the cross-check query burst",
    )
    parser.add_argument("--limit", type=int, default=10)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero unless every warm-start speedup over cold "
        "rebuild reaches this factor (0 = report only)",
    )
    parser.add_argument(
        "--json-out",
        help="write the results as JSON (the CI benchmark artifact)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    corpus = synthetic_corpus(args.trajectories, seed=args.seed)
    queries = noisy_queries(corpus, args.queries, seed=args.seed + 1)
    points_total = sum(len(points) for _, points in corpus)
    print(
        f"corpus: {len(corpus)} trajectories, {points_total:,} points; "
        f"{len(queries)}-query cross-check burst (seed {args.seed})"
    )

    workdir = Path(tempfile.mkdtemp(prefix="bench_snapshot_"))
    rows = []
    report = []
    speedups = []
    try:
        # The raw-ingest source a cold boot parses: the corpus as a
        # JSONL dataset, exactly what ``geodabs serve --dataset`` reads.
        dataset_path = workdir / "corpus.jsonl"
        TrajectoryDataset(
            records=[
                TrajectoryRecord(tid, 0, "fwd", tuple(points))
                for tid, points in corpus
            ]
        ).save(dataset_path)
        for name, builder in (("single", build_single), ("sharded", build_sharded)):
            # Cold start: the full rebuild-from-raw-ingest path a
            # restart without snapshots has to pay — parse the dataset,
            # then normalize/fingerprint/insert everything.
            start = time.perf_counter()
            dataset = TrajectoryDataset.load(dataset_path)
            index = builder()
            index.add_many(
                [(r.trajectory_id, list(r.points)) for r in dataset.records]
            )
            cold_s = time.perf_counter() - start
            expected = _rankings(index, queries, args.limit)

            target = workdir / f"snap-{name}"
            start = time.perf_counter()
            save_index(index, target)
            save_s = time.perf_counter() - start
            size = _dir_bytes(target)

            # Normalizers are not persisted (arbitrary callables); the
            # warm start re-attaches the same standard pipeline, exactly
            # like ``geodabs serve --snapshot-dir`` does.
            start = time.perf_counter()
            loaded = load_index(
                target, standard_normalizer(DEPTH), mmap_mode="r"
            )
            load_s = time.perf_counter() - start
            if _rankings(loaded, queries, args.limit) != expected:
                raise AssertionError(
                    f"{name}: warm-started index returned different "
                    "rankings than the live index"
                )
            speedup = cold_s / load_s if load_s > 0 else float("inf")
            speedups.append(speedup)
            rows.append([name, cold_s, save_s, load_s, size / 1e6, speedup])
            report.append(
                {
                    "index": name,
                    "cold_build_s": cold_s,
                    "save_s": save_s,
                    "warm_load_s": load_s,
                    "snapshot_bytes": size,
                    "speedup": speedup,
                }
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    print_table(
        f"Restart cost: cold rebuild vs mmap warm start "
        f"({len(corpus)}-trajectory corpus)",
        ["index", "cold s", "save s", "warm s", "snap MB", "speedup"],
        rows,
    )
    if args.json_out:
        payload = {
            "benchmark": "snapshot",
            "trajectories": len(corpus),
            "queries": len(queries),
            "limit": args.limit,
            "seed": args.seed,
            "results": report,
            "min_speedup_bar": args.min_speedup,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if args.min_speedup > 0 and min(speedups) < args.min_speedup:
        print(
            f"FAIL: minimum warm-start speedup {min(speedups):.2f}x below "
            f"the {args.min_speedup:.2f}x bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
