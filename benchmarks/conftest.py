"""Shared fixtures for the figure-reproduction benchmark suite.

Workloads are cached at session scope (and memoized inside
:mod:`repro.bench.runner`), so the expensive dataset constructions happen
once per pytest session regardless of how many figures consume them.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import bench_workload
from repro.core.config import GeodabConfig
from repro.normalize import standard_normalizer


@pytest.fixture(scope="session")
def paper_config() -> GeodabConfig:
    """The paper's default pipeline configuration (Section VI-A2)."""
    return GeodabConfig()


@pytest.fixture(scope="session")
def normalizer():
    """The evaluation's default normalization (smooth + 36-bit grid)."""
    return standard_normalizer()


@pytest.fixture(scope="session")
def retrieval_workload():
    """Dense workload for effectiveness figures: 30 routes x 20, 20 queries."""
    return bench_workload(num_routes=30, per_direction=10, num_queries=20, seed=0)


@pytest.fixture(scope="session")
def throughput_workload():
    """Larger workload for the Figure 14 throughput sweep."""
    return bench_workload(num_routes=50, per_direction=10, num_queries=20, seed=1)
