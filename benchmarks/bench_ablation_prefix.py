"""Ablation — the geodab bit layout (Figure 3's prefix/suffix split).

Two sweeps probe the layout from both ends:

* *suffix width* (city scale) — fewer suffix bits mean more hash
  collisions between different k-grams, inflating candidate sets and
  hurting ranking; this quantifies how much discrimination each suffix
  bit buys.
* *prefix width* (world scale) — wider prefixes spread the dictionary
  over more of the z-order curve, increasing the number of shards that
  hold data (finer routing) while single-city queries still touch few
  shards; this quantifies the locality/granularity trade-off of
  Section VI-E.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.cluster.sharding import ShardingConfig, ShardRouter
from repro.core.config import GeodabConfig
from repro.core.geodab import GeodabScheme
from repro.core.index import GeodabIndex
from repro.geo.geohash import Geohash
from repro.ir.metrics import average_precision
from repro.normalize import standard_normalizer
from repro.roadnet.world import WorldActivityModel

SUFFIX_BITS = (4, 8, 12, 16)
PREFIX_BITS = (8, 12, 16)


def bench_ablation_layout_suffix(benchmark, retrieval_workload, capsys):
    """Suffix-width sweep: discrimination vs collisions (city scale)."""
    normalizer = standard_normalizer()
    rows = []
    map_by_suffix = {}
    for suffix_bits in SUFFIX_BITS:
        config = GeodabConfig(prefix_bits=16, suffix_bits=suffix_bits)
        index = GeodabIndex(config, normalizer=normalizer)
        for record in retrieval_workload.records:
            index.add(record.trajectory_id, record.points)
        candidates = 0
        aps = []
        for query in retrieval_workload.queries:
            results, stats = index.query_with_stats(query.points)
            candidates += stats.candidates
            aps.append(
                average_precision(
                    [r.trajectory_id for r in results], query.relevant_ids
                )
            )
        mean_ap = sum(aps) / len(aps)
        map_by_suffix[suffix_bits] = mean_ap
        rows.append(
            [
                suffix_bits,
                index.stats().terms,
                candidates / len(retrieval_workload.queries),
                mean_ap,
            ]
        )

    with capsys.disabled():
        print_table(
            "Ablation: geodab suffix width (prefix fixed at 16 bits)",
            ["suffix bits", "distinct terms", "candidates/query", "MAP"],
            rows,
        )

    # Shrinking the suffix must not *improve* ranking; 16 bits should be
    # at least as good as 4.
    assert map_by_suffix[16] >= map_by_suffix[4] - 0.05

    config = GeodabConfig()
    index = GeodabIndex(config, normalizer=normalizer)
    for record in retrieval_workload.records:
        index.add(record.trajectory_id, record.points)

    def query_batch():
        for query in retrieval_workload.queries:
            index.query(query.points)

    benchmark.pedantic(query_batch, rounds=3, iterations=1)


@pytest.fixture(scope="module")
def world_cells():
    return WorldActivityModel(seed=7).trajectories_per_cell(500_000)


def bench_ablation_layout_prefix(benchmark, world_cells, capsys):
    """Prefix-width sweep: shard coverage of a world-scale dictionary."""
    sharding = ShardingConfig(num_shards=4_096, num_nodes=10)
    rows = []
    coverage = {}
    for prefix_bits in PREFIX_BITS:
        router = ShardRouter(sharding, prefix_bits, suffix_bits=0)
        shards_with_data = set()
        for cell_bits in world_cells:
            cell = Geohash(cell_bits, 16)
            shards_with_data.add(router.shard_of_cell(cell))
        coverage[prefix_bits] = len(shards_with_data)
        rows.append(
            [
                prefix_bits,
                len(shards_with_data),
                len(shards_with_data) / sharding.num_shards,
            ]
        )

    with capsys.disabled():
        print_table(
            "Ablation: prefix width vs shard coverage (4096 shards, world "
            "dictionary)",
            ["prefix bits", "shards holding data", "fraction of cluster"],
            rows,
        )

    # Wider prefixes route at finer granularity: coverage grows.
    assert coverage[16] >= coverage[8]

    router = ShardRouter(sharding, 16, suffix_bits=0)
    cells = [Geohash(bits, 16) for bits in world_cells]

    def route_world():
        for cell in cells:
            router.shard_of_cell(cell)

    benchmark.pedantic(route_world, rounds=3, iterations=1)
