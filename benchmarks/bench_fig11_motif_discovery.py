"""Figure 11 — motif discovery cost: BTM (exact DFD) vs geodabs.

The paper compares its fingerprint-window motif discovery against the
bounding-based trajectory motif (BTM) algorithm as the number of
candidate trajectories grows: BTM's cost explodes (every pair costs many
DFD evaluations), geodab motif discovery stays cheap.
"""

from __future__ import annotations

import pytest

from repro.baselines.btm import btm_motif
from repro.bench.report import print_table
from repro.bench.runner import time_callable
from repro.core.config import GeodabConfig
from repro.core.fingerprint import Fingerprinter
from repro.core.motif import discover_motif
from repro.normalize import standard_normalizer

from .bench_fig09_length_scaling import _make_trajectory

DENSITIES = (2, 4, 6, 8, 10)
LENGTH = 120
MOTIF_POINTS = 40
MOTIF_METERS = 400.0


@pytest.fixture(scope="module")
def motif_pool():
    return [_make_trajectory(LENGTH, seed) for seed in range(max(DENSITIES) + 1)]


def bench_fig11_motif_discovery(benchmark, motif_pool, capsys):
    """Motif discovery against an increasing candidate set."""
    fingerprinter = Fingerprinter(GeodabConfig(k=3, t=6))
    normalizer = standard_normalizer()
    query, *pool = motif_pool
    fp_query = fingerprinter.fingerprint(normalizer(query))
    fp_pool = [fingerprinter.fingerprint(normalizer(c)) for c in pool]
    # Translate the motif length into fingerprints (f = l * a).
    density_per_m = max(len(fp_query.selections) / (LENGTH * 10.0), 1e-6)
    window = max(1, round(MOTIF_METERS * density_per_m))

    rows = []
    for density in DENSITIES:
        candidates = pool[:density]
        fp_candidates = fp_pool[:density]

        def run_btm():
            for candidate in candidates:
                btm_motif(query, candidate, MOTIF_POINTS)

        def run_geodabs():
            for fp in fp_candidates:
                discover_motif(fp_query, fp, window, fingerprinter.config.k)

        rows.append(
            [
                density,
                time_callable(run_btm, repeats=1),
                time_callable(run_geodabs, repeats=1),
            ]
        )

    with capsys.disabled():
        print_table(
            f"Figure 11: motif discovery vs candidate count "
            f"(motif {MOTIF_POINTS} pts / ~{MOTIF_METERS:.0f} m, ms)",
            ["candidates", "BTM", "Geodabs"],
            rows,
        )

    # Shape: BTM cost grows with density and dwarfs the geodab method.
    assert rows[-1][1] > rows[0][1] * 2.5
    assert all(row[2] < row[1] for row in rows)

    fp_all = fp_pool[: DENSITIES[-1]]

    def geodab_motifs_max_density():
        for fp in fp_all:
            discover_motif(fp_query, fp, window, fingerprinter.config.k)

    benchmark(geodab_motifs_max_density)
