"""Ablation — the dropped winnowing optimisation (paper Section IV-A).

The paper sketches an optimised winnower built on "circular buffers and
rolling hash functions" and drops it: "As we did not notice a significant
performance gain, we dropped this optimization."  We implemented it
(:mod:`repro.core.fastpath`) and this bench re-examines the claim:
fingerprinting throughput of the quadratic-window reference vs the O(n)
streaming pipeline, across trajectory lengths.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.bench.runner import time_callable
from repro.core.config import GeodabConfig
from repro.core.fastpath import FastTrajectoryWinnower
from repro.core.winnowing import TrajectoryWinnower

from .bench_fig09_length_scaling import _make_trajectory

LENGTHS = (100, 400, 1_600, 6_400)
CONFIG = GeodabConfig(suffix_hash="polynomial")


@pytest.fixture(scope="module")
def trajectories():
    return {length: _make_trajectory(length, seed=length) for length in LENGTHS}


def bench_ablation_rolling(benchmark, trajectories, capsys):
    """Reference vs streaming winnower throughput."""
    reference = TrajectoryWinnower(CONFIG)
    streaming = FastTrajectoryWinnower(CONFIG)
    rows = []
    for length, points in trajectories.items():
        assert reference.select(points) == streaming.select(points)
        rows.append(
            [
                length,
                time_callable(lambda: reference.select(points), repeats=2),
                time_callable(lambda: streaming.select(points), repeats=2),
            ]
        )

    with capsys.disabled():
        print_table(
            "Ablation: winnowing implementations (ms per trajectory)",
            ["raw points", "reference (Alg. 1)", "streaming (rolling)"],
            rows,
        )
        ratio = rows[0][1] / max(rows[0][2], 1e-9)
        print(
            f"At paper-scale trajectories ({LENGTHS[0]} points) the gap is "
            f"{ratio:.1f}x — consistent with the authors dropping the "
            "optimisation for short normalized trajectories."
        )

    points = trajectories[LENGTHS[-1]]
    benchmark(lambda: streaming.select(points))
