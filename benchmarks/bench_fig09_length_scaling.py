"""Figure 9 — distance-computation cost vs trajectory length.

The paper fixes the candidate-set size (10) and grows the trajectory
length, showing DTW/DFD time rising polynomially while Jaccard over
geodab fingerprint sets stays flat.  (Note: the captions of Figures 9 and
10 are swapped relative to the prose in Section VI-B4; we follow the
prose — Figure 9 sweeps length.)

Default lengths are scaled to 100..500 points so the pure-Python dynamic
programs finish promptly; the quadratic-vs-flat shape is unaffected.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.bench.runner import time_callable
from repro.core.config import GeodabConfig
from repro.core.fingerprint import Fingerprinter
from repro.distance.dtw import dtw
from repro.distance.frechet import discrete_frechet
from repro.geo.point import Point, destination
from repro.normalize import standard_normalizer
from repro.workload.noise import GaussianGpsNoise
from random import Random

LENGTHS = (100, 200, 300, 400, 500)
CANDIDATES = 10


def _make_trajectory(length: int, seed: int) -> list[Point]:
    rng = Random(seed)
    noise = GaussianGpsNoise(20.0, rng)
    start = Point(51.5074, -0.1278)
    bearing = 80.0
    points = [start]
    for _ in range(length - 1):
        bearing += rng.uniform(-4.0, 4.0)
        points.append(destination(points[-1], bearing, 10.0))
    return noise.apply_all(points)


@pytest.fixture(scope="module")
def trajectory_sets():
    return {
        length: [_make_trajectory(length, seed) for seed in range(CANDIDATES + 1)]
        for length in LENGTHS
    }


def bench_fig09_length_scaling(benchmark, trajectory_sets, capsys):
    """DTW/DFD vs geodab-Jaccard as trajectory length grows."""
    fingerprinter = Fingerprinter(GeodabConfig())
    normalizer = standard_normalizer()
    rows = []
    for length in LENGTHS:
        query, *candidates = trajectory_sets[length]

        def score_dtw():
            for c in candidates:
                dtw(query, c)

        def score_dfd():
            for c in candidates:
                discrete_frechet(query, c)

        def score_geodabs():
            fp_query = fingerprinter.fingerprint(normalizer(query))
            for c in candidates:
                fp_query.jaccard_distance(
                    fingerprinter.fingerprint(normalizer(c))
                )

        rows.append(
            [
                length,
                time_callable(score_dfd, repeats=1),
                time_callable(score_dtw, repeats=1),
                time_callable(score_geodabs, repeats=1),
            ]
        )

    with capsys.disabled():
        print_table(
            f"Figure 9: scoring {CANDIDATES} candidates vs trajectory length (ms)",
            ["length", "DFD", "DTW", "Geodabs"],
            rows,
        )

    # Shape assertions: the DP distances grow superlinearly; geodabs stay
    # within a small constant factor across the sweep.
    assert rows[-1][1] > rows[0][1] * 4  # DFD
    assert rows[-1][2] > rows[0][2] * 4  # DTW
    assert rows[-1][3] < rows[0][1] + rows[0][3] + 50.0

    # Benchmark the geodab scoring path at the longest length.
    query, *candidates = trajectory_sets[LENGTHS[-1]]
    fp_query = fingerprinter.fingerprint(normalizer(query))
    fp_candidates = [
        fingerprinter.fingerprint(normalizer(c)) for c in candidates
    ]

    def score_prefingerprinted():
        for fp in fp_candidates:
            fp_query.jaccard_distance(fp)

    benchmark(score_prefingerprinted)
