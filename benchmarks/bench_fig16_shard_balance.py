"""Figure 16 — balancing a 10-node cluster: 100 vs 10'000 shards.

The paper distributes the world-scale index over 10 nodes via the
two-step placement (curve-preserving shard, locality-breaking modulo
node).  With 100 shards whole busy regions land on single nodes and the
cluster is imbalanced; with 10'000 shards the load spreads evenly.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.cluster.sharding import ShardingConfig
from repro.cluster.stats import balance_report, distribute_cell_counts
from repro.roadnet.world import WorldActivityModel

TOTAL_TRAJECTORIES = 1_000_000
NUM_NODES = 10
SHARD_COUNTS = (100, 1_000, 10_000)


@pytest.fixture(scope="module")
def world_counts():
    return WorldActivityModel(seed=7).trajectories_per_cell(TOTAL_TRAJECTORIES)


def bench_fig16_shard_balance(benchmark, world_counts, capsys):
    """Per-node load under increasing shard counts."""
    reports = {}
    rows = []
    for num_shards in SHARD_COUNTS:
        sharding = ShardingConfig(num_shards=num_shards, num_nodes=NUM_NODES)
        _, per_node = distribute_cell_counts(world_counts, 16, sharding)
        report = balance_report(per_node)
        reports[num_shards] = report
        rows.append(
            [num_shards]
            + list(report.counts)
            + [report.coefficient_of_variation, report.max_over_mean]
        )

    with capsys.disabled():
        print_table(
            f"Figure 16: trajectories per node ({NUM_NODES} nodes)",
            ["shards"]
            + [chr(ord('A') + i) for i in range(NUM_NODES)]
            + ["cv", "max/mean"],
            rows,
        )

    # Shape: more shards -> better balance (lower cv), as in the paper.
    assert (
        reports[10_000].coefficient_of_variation
        < reports[100].coefficient_of_variation
    )
    assert reports[10_000].max_over_mean < reports[100].max_over_mean

    def distribute_at_10k():
        sharding = ShardingConfig(num_shards=10_000, num_nodes=NUM_NODES)
        distribute_cell_counts(world_counts, 16, sharding)

    benchmark.pedantic(distribute_at_10k, rounds=3, iterations=1)
