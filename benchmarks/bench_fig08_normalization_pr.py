"""Figure 8 — verifying configuration parameters with a PR curve.

The paper sweeps the grid-normalization depth (32/34/36/38/40 bits) and
plots interpolated precision/recall of the geodab index under each; 36
bits dominates its neighbours on the London dataset (Section VI-A2).
This bench regenerates the five curves and benchmarks the query batch at
the winning depth.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.ir.metrics import average_pr_curve, precision_recall_curve
from repro.normalize import GridNormalizer, MovingAverageSmoother, compose

DEPTHS = (32, 34, 36, 38, 40)
RECALL_LEVELS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def _build_index(dataset, depth: int) -> GeodabIndex:
    config = GeodabConfig(normalization_depth=depth)
    normalizer = compose(MovingAverageSmoother(9), GridNormalizer(depth))
    index = GeodabIndex(config, normalizer=normalizer)
    for record in dataset.records:
        index.add(record.trajectory_id, record.points)
    return index


def _pr_curve(index: GeodabIndex, dataset):
    curves = []
    for query in dataset.queries:
        ranked = [r.trajectory_id for r in index.query(query.points)]
        if ranked:
            curves.append(precision_recall_curve(ranked, query.relevant_ids))
    return average_pr_curve(curves, RECALL_LEVELS)


@pytest.fixture(scope="module")
def indexes_by_depth(retrieval_workload):
    return {depth: _build_index(retrieval_workload, depth) for depth in DEPTHS}


def bench_fig08_normalization_pr(
    benchmark, indexes_by_depth, retrieval_workload, capsys
):
    """Regenerate the five PR curves; benchmark queries at 36 bits."""
    rows = []
    curves = {}
    for depth, index in indexes_by_depth.items():
        curve = _pr_curve(index, retrieval_workload)
        curves[depth] = curve
        rows.append([f"{depth} bits"] + [p.precision for p in curve])

    with capsys.disabled():
        print_table(
            "Figure 8: interpolated precision at recall levels, by "
            "normalization depth",
            ["normalization"] + [f"P@R={level}" for level in RECALL_LEVELS],
            rows,
        )

    # The paper's claim: 36 bits beats its up/downstream neighbours on
    # aggregate precision.
    def mean_precision(depth):
        return sum(p.precision for p in curves[depth]) / len(curves[depth])

    assert mean_precision(36) >= mean_precision(32) - 0.05
    assert mean_precision(36) >= mean_precision(40) - 0.05

    index = indexes_by_depth[36]
    queries = retrieval_workload.queries

    def run_queries():
        for query in queries:
            index.query(query.points)

    benchmark.pedantic(run_queries, rounds=3, iterations=1)
