"""Figure 14 — query batch time vs dataset density.

The paper times 100 queries against inverted indexes holding growing
samples of the dense dataset: the geohash index degrades (it cannot
discriminate, so every query drags a growing candidate set through
scoring), while the geodab index stays nearly flat.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.bench.runner import (
    build_geodab_index,
    build_geohash_index,
    time_callable,
)

#: Fractions of the workload indexed at each density step.
STEPS = (0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.fixture(scope="module")
def density_indexes(throughput_workload):
    total = len(throughput_workload.records)
    out = []
    for fraction in STEPS:
        limit = int(total * fraction)
        out.append(
            (
                limit,
                build_geodab_index(throughput_workload, limit=limit),
                build_geohash_index(throughput_workload, limit=limit),
            )
        )
    return out


def bench_fig14_query_throughput(
    benchmark, density_indexes, throughput_workload, capsys
):
    """Query batch wall time and candidate volume as the index densifies."""
    queries = throughput_workload.queries
    rows = []
    for size, geodab_index, geohash_index in density_indexes:

        def run_geodab():
            for query in queries:
                geodab_index.query(query.points)

        def run_geohash():
            for query in queries:
                geohash_index.query(query.points)

        geodab_candidates = sum(
            geodab_index.query_with_stats(q.points)[1].candidates for q in queries
        )
        geohash_candidates = sum(
            geohash_index.query_with_stats(q.points)[1].candidates for q in queries
        )
        rows.append(
            [
                size,
                time_callable(run_geohash, repeats=2),
                time_callable(run_geodab, repeats=2),
                geohash_candidates,
                geodab_candidates,
            ]
        )

    with capsys.disabled():
        print_table(
            f"Figure 14: {len(queries)} queries vs indexed trajectories (ms / candidates)",
            [
                "trajectories",
                "geohash ms",
                "geodabs ms",
                "geohash cands",
                "geodabs cands",
            ],
            rows,
        )

    # Shape: geodabs see far fewer candidates at every density, and the
    # density-driven growth hits the geohash index hardest.
    for row in rows:
        assert row[4] <= row[3]
    assert rows[-1][3] > rows[0][3]

    _, geodab_index, _ = density_indexes[-1]

    def full_density_batch():
        for query in queries:
            geodab_index.query(query.points)

    benchmark.pedantic(full_density_batch, rounds=3, iterations=1)
