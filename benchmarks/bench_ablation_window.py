"""Ablation — the winnowing guarantee threshold t (window size w = t-k+1).

The paper notes that "as the dataset densifies, the upper threshold can
be used to reduce the number of fingerprints extracted from queries in
order to set the efficiency/effectiveness tradeoff" (Section IV-A).  This
ablation sweeps t and reports fingerprint density, index size, retrieval
quality, and query time.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.bench.runner import time_callable
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.ir.metrics import average_precision
from repro.normalize import standard_normalizer

T_VALUES = (6, 9, 12, 18, 24)


def bench_ablation_window(benchmark, retrieval_workload, capsys):
    """Sweep the guarantee threshold t at fixed k = 6."""
    normalizer = standard_normalizer()
    rows = []
    quality_by_t = {}
    for t in T_VALUES:
        config = GeodabConfig(k=6, t=t)
        index = GeodabIndex(config, normalizer=normalizer)
        for record in retrieval_workload.records:
            index.add(record.trajectory_id, record.points)
        stats = index.stats()
        aps = []
        for query in retrieval_workload.queries:
            ranked = [r.trajectory_id for r in index.query(query.points)]
            aps.append(average_precision(ranked, query.relevant_ids))
        mean_ap = sum(aps) / len(aps)
        quality_by_t[t] = mean_ap

        def run_queries():
            for query in retrieval_workload.queries:
                index.query(query.points)

        rows.append(
            [
                t,
                config.window,
                stats.terms,
                stats.postings,
                mean_ap,
                time_callable(run_queries, repeats=2),
            ]
        )

    with capsys.disabled():
        print_table(
            "Ablation: winnowing upper bound t (k=6)",
            ["t", "window", "terms", "postings", "MAP", "query ms"],
            rows,
        )

    # Larger windows must shrink the index (fewer fingerprints kept).
    postings = [row[3] for row in rows]
    assert postings[-1] < postings[0]
    # The paper's default (t=12) should not be far off the best quality.
    assert quality_by_t[12] >= max(quality_by_t.values()) - 0.25

    config = GeodabConfig(k=6, t=12)
    index = GeodabIndex(config, normalizer=normalizer)
    for record in retrieval_workload.records:
        index.add(record.trajectory_id, record.points)

    def default_queries():
        for query in retrieval_workload.queries:
            index.query(query.points)

    benchmark.pedantic(default_queries, rounds=3, iterations=1)
