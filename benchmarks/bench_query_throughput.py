"""Query throughput: per-query scalar preparation vs the columnar batch.

The paper's core claim is that fingerprint indexing stays fast at scale
on *both* sides of the index; PR 2 made ingest columnar, and this
benchmark measures what the columnar read path (this PR) makes of the
query side.  A synthetic corpus is indexed once per backend, then a
burst of noisy re-recordings is served twice:

* **scalar** — one ``prepare_query()`` per query (scalar normalize →
  geohash → k-gram hash → winnow) followed by ``query_prepared()``;
* **batched** — one ``prepare_query_many()`` call (the whole burst is
  normalized and fingerprinted as numpy sweeps over one concatenated
  point array) followed by the same columnar ``query_prepared()``
  merges.

Both paths return identical rankings (cross-checked every run).  The
acceptance bar for this PR is batched >= 2x scalar on a >= 2k-trajectory
corpus locally; CI runs a smaller corpus with a conservative 1.3x bar
via ``--min-speedup``, and ``--json-out`` records the run for the
benchmark-artifact trail.

Run with:  python benchmarks/bench_query_throughput.py
"""

from __future__ import annotations

import argparse
import json
import random
import time

from repro.bench.report import print_table
from repro.cluster import ShardedGeodabIndex, ShardingConfig
from repro.core.config import GeodabConfig
from repro.core.index import GeodabIndex
from repro.geo.point import Point
from repro.normalize import standard_normalizer

NUM_SHARDS = 8
NUM_NODES = 2
DEPTH = 36


def synthetic_corpus(
    num_trajectories: int, seed: int = 0
) -> list[tuple[str, list[Point]]]:
    """Random-walk trajectories over a London-sized area (PR 2's corpus)."""
    rng = random.Random(seed)
    corpus = []
    for index in range(num_trajectories):
        length = rng.randint(40, 120)
        lat = 51.5 + rng.uniform(-0.1, 0.1)
        lon = -0.12 + rng.uniform(-0.15, 0.15)
        points = []
        for _ in range(length):
            lat += rng.uniform(-1e-3, 1e-3)
            lon += rng.uniform(-1.6e-3, 1.6e-3)
            points.append(Point(lat, lon))
        corpus.append((f"t{index:05d}", points))
    return corpus


def noisy_queries(
    corpus: list[tuple[str, list[Point]]], num_queries: int, seed: int = 1
) -> list[list[Point]]:
    """Noisy re-recordings of corpus trajectories (queries with real hits)."""
    rng = random.Random(seed)
    queries = []
    for index in range(num_queries):
        _, points = corpus[index % len(corpus)]
        sigma = 1.5e-4  # ~17 m of per-point GPS noise
        queries.append(
            [
                Point(
                    max(-90.0, min(90.0, p.lat + rng.gauss(0.0, sigma))),
                    max(-180.0, min(180.0, p.lon + rng.gauss(0.0, sigma))),
                )
                for p in points
            ]
        )
    return queries


def build_single() -> GeodabIndex:
    return GeodabIndex(GeodabConfig(), normalizer=standard_normalizer(DEPTH))


def build_sharded() -> ShardedGeodabIndex:
    return ShardedGeodabIndex(
        GeodabConfig(),
        ShardingConfig(
            num_shards=NUM_SHARDS, num_nodes=NUM_NODES, placement="hash"
        ),
        normalizer=standard_normalizer(DEPTH),
    )


def serve_scalar(index, queries, limit) -> tuple[float, list]:
    start = time.perf_counter()
    results = []
    for points in queries:
        prepared = index.prepare_query(points)
        ranked, _ = index.query_prepared(prepared, limit)
        results.append(ranked)
    return time.perf_counter() - start, results


def serve_batched(index, queries, limit) -> tuple[float, list]:
    start = time.perf_counter()
    prepared_list = index.prepare_query_many(queries)
    results = []
    for prepared in prepared_list:
        ranked, _ = index.query_prepared(prepared, limit)
        results.append(ranked)
    return time.perf_counter() - start, results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectories",
        type=int,
        default=2000,
        help="corpus size (the acceptance bar is measured at >= 2000)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=500,
        help="size of the query burst",
    )
    parser.add_argument("--limit", type=int, default=10)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero unless every batched/scalar speedup reaches "
        "this factor (0 = report only)",
    )
    parser.add_argument(
        "--json-out",
        help="write the results as JSON (the CI benchmark artifact)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    corpus = synthetic_corpus(args.trajectories, seed=args.seed)
    queries = noisy_queries(corpus, args.queries, seed=args.seed + 1)
    points_total = sum(len(points) for _, points in corpus)
    print(
        f"corpus: {len(corpus)} trajectories, {points_total:,} points; "
        f"burst of {len(queries)} queries (seed {args.seed})"
    )

    rows = []
    report = []
    speedups = []
    for name, builder in (("single", build_single), ("sharded", build_sharded)):
        index = builder()
        index.add_many(corpus)
        # Warm-up: one full untimed pass per path.  The batched pass
        # folds every queried term's append buffer into its sorted
        # postings array (lazy compaction after add_many), so neither
        # timed pass carries one-time compaction or lazy pipeline
        # construction the other skips.
        serve_scalar(index, queries[:1], args.limit)
        serve_batched(index, queries, args.limit)
        scalar_s, scalar_results = serve_scalar(index, queries, args.limit)
        batched_s, batched_results = serve_batched(index, queries, args.limit)
        if scalar_results != batched_results:
            raise AssertionError(
                f"{name}: batched preparation returned different rankings "
                "than the per-query path"
            )
        speedup = scalar_s / batched_s if batched_s > 0 else float("inf")
        speedups.append(speedup)
        rows.append(
            [
                name,
                len(queries) / scalar_s,
                len(queries) / batched_s,
                scalar_s,
                batched_s,
                speedup,
            ]
        )
        report.append(
            {
                "index": name,
                "scalar_qps": len(queries) / scalar_s,
                "batched_qps": len(queries) / batched_s,
                "scalar_s": scalar_s,
                "batched_s": batched_s,
                "speedup": speedup,
            }
        )
    print_table(
        f"Query burst: per-query prepare_query() vs batched "
        f"prepare_query_many() ({len(queries)} queries, "
        f"{len(corpus)}-trajectory corpus)",
        ["index", "scalar q/s", "batched q/s", "scalar s", "batched s",
         "speedup"],
        rows,
    )
    if args.json_out:
        payload = {
            "benchmark": "query_throughput",
            "trajectories": len(corpus),
            "queries": len(queries),
            "limit": args.limit,
            "seed": args.seed,
            "results": report,
            "min_speedup_bar": args.min_speedup,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if args.min_speedup > 0 and min(speedups) < args.min_speedup:
        print(
            f"FAIL: minimum speedup {min(speedups):.2f}x below the "
            f"{args.min_speedup:.2f}x bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
