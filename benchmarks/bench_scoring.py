"""Top-k scoring: vectorized count-based Jaccard vs the bitmap loop.

PR 5 replaced the per-candidate ``jaccard_distance`` loop in
``score_matches`` (one Python-level bitmap intersection per candidate)
with the shared vectorized engine of :mod:`repro.core.scoring`: the
shared-term counts ``merge_hits`` already produces, combined with the
arena's per-slot cardinality column, give the exact Jaccard distance
``1 - inter / (|Q| + card - inter)`` as a handful of numpy ops — zero
bitmap intersections — followed by an ``np.partition`` top-k cut.

This benchmark isolates exactly that stage.  The corpus is *clustered*
— noisy re-recordings of a pool of base routes, the regime Figure 14
measures, where every query pulls a meaningful candidate set instead of
the 2-3 strays independent random walks share — indexed once per
backend; the query burst is prepared and merged *outside* the timed
region, and the timed region ranks the merged candidates of every
query:

* **scalar** — ``score_matches_scalar``: the retired per-candidate
  bitmap loop (kept on both backends as the test/bench oracle);
* **vectorized** — ``score_matches``: the engine.

Both paths return bit-identical rankings (cross-checked every run).
The acceptance bar for this PR is vectorized >= 3x scalar at a >= 2k
trajectory corpus with ``limit=10`` locally; CI runs a smaller corpus
with a conservative 2x bar via ``--min-speedup``, and ``--json-out``
records the run for the benchmark-artifact trail.

Run with:  python benchmarks/bench_scoring.py
"""

from __future__ import annotations

import argparse
import json
import random
import time

from bench_query_throughput import build_sharded, build_single, noisy_queries

from repro.bench.report import print_table
from repro.core.postings import merge_hits
from repro.geo.point import Point


def clustered_corpus(
    num_trajectories: int, seed: int = 0, copies_per_route: int = 20
) -> list[tuple[str, list[Point]]]:
    """Noisy re-recordings of a pool of base routes.

    ``copies_per_route`` recordings of each base walk with ~17 m GPS
    noise: after grid normalization they share winnowed terms, so a
    query against the corpus collects a realistic candidate set (tens
    of trajectories) rather than the 2-3 accidental overlaps of fully
    independent random walks.
    """
    rng = random.Random(seed)
    num_routes = max(1, num_trajectories // copies_per_route)
    routes = []
    for _ in range(num_routes):
        length = rng.randint(40, 120)
        lat = 51.5 + rng.uniform(-0.05, 0.05)
        lon = -0.12 + rng.uniform(-0.08, 0.08)
        points = []
        for _ in range(length):
            lat += rng.uniform(-1e-3, 1e-3)
            lon += rng.uniform(-1.6e-3, 1.6e-3)
            points.append(Point(lat, lon))
        routes.append(points)
    sigma = 1.5e-4
    corpus = []
    for index in range(num_trajectories):
        base = routes[index % num_routes]
        corpus.append(
            (
                f"t{index:05d}",
                [
                    Point(
                        max(-90.0, min(90.0, p.lat + rng.gauss(0.0, sigma))),
                        max(-180.0, min(180.0, p.lon + rng.gauss(0.0, sigma))),
                    )
                    for p in base
                ],
            )
        )
    return corpus


def prepare_burst(index, queries):
    """Prepare + merge every query outside the timed scoring region."""
    prepared_list = index.prepare_query_many(queries)
    burst = []
    for prepared in prepared_list:
        matches = merge_hits(
            index.shard_partial(shard_id, shard_terms)
            for shard_id, shard_terms in prepared.plan.items()
        )
        burst.append((prepared, matches))
    return burst


def time_path(score, burst, limit) -> tuple[float, list]:
    start = time.perf_counter()
    results = [
        score(prepared, matches, limit) for prepared, matches in burst
    ]
    return time.perf_counter() - start, results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trajectories",
        type=int,
        default=2000,
        help="corpus size (the acceptance bar is measured at >= 2000)",
    )
    parser.add_argument(
        "--queries", type=int, default=200, help="size of the query burst"
    )
    parser.add_argument(
        "--limit", type=int, default=10, help="top-k cut (the bar uses 10)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="exit non-zero unless every vectorized/scalar speedup "
        "reaches this factor (0 = report only)",
    )
    parser.add_argument(
        "--json-out",
        help="write the results as JSON (the CI benchmark artifact)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    corpus = clustered_corpus(args.trajectories, seed=args.seed)
    queries = noisy_queries(corpus, args.queries, seed=args.seed + 1)
    print(
        f"corpus: {len(corpus)} trajectories; burst of {len(queries)} "
        f"queries, limit={args.limit} (seed {args.seed})"
    )

    rows = []
    report = []
    speedups = []
    for name, builder in (("single", build_single), ("sharded", build_sharded)):
        index = builder()
        index.add_many(corpus)
        burst = prepare_burst(index, queries)
        candidates = sum(len(matches[0]) for _, matches in burst)
        # Warm-up: one untimed pass per path.
        time_path(index.score_matches_scalar, burst[:5], args.limit)
        time_path(index.score_matches, burst[:5], args.limit)
        scalar_s, scalar_results = time_path(
            index.score_matches_scalar, burst, args.limit
        )
        vector_s, vector_results = time_path(
            index.score_matches, burst, args.limit
        )
        if scalar_results != vector_results:
            raise AssertionError(
                f"{name}: vectorized engine returned different rankings "
                "than the per-candidate bitmap loop"
            )
        speedup = scalar_s / vector_s if vector_s > 0 else float("inf")
        speedups.append(speedup)
        rows.append(
            [
                name,
                candidates / len(queries),
                len(queries) / scalar_s,
                len(queries) / vector_s,
                scalar_s,
                vector_s,
                speedup,
            ]
        )
        report.append(
            {
                "index": name,
                "mean_candidates": candidates / len(queries),
                "scalar_qps": len(queries) / scalar_s,
                "vectorized_qps": len(queries) / vector_s,
                "scalar_s": scalar_s,
                "vectorized_s": vector_s,
                "speedup": speedup,
            }
        )
    print_table(
        f"Candidate ranking: per-candidate bitmap loop vs vectorized "
        f"engine ({len(queries)} queries, {len(corpus)}-trajectory "
        f"corpus, limit={args.limit})",
        ["index", "cand/query", "scalar q/s", "vector q/s", "scalar s",
         "vector s", "speedup"],
        rows,
    )
    if args.json_out:
        payload = {
            "benchmark": "scoring",
            "trajectories": len(corpus),
            "queries": len(queries),
            "limit": args.limit,
            "seed": args.seed,
            "results": report,
            "min_speedup_bar": args.min_speedup,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if args.min_speedup > 0 and min(speedups) < args.min_speedup:
        print(
            f"FAIL: minimum speedup {min(speedups):.2f}x below the "
            f"{args.min_speedup:.2f}x bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
