"""Figure 13 — ROC curves and AUC: geodab index vs geohash index.

Both indexes achieve near-perfect AUC (the paper reports 0.999889 for
geodabs and 0.9999521 for geohashes — geohash recall is marginally more
complete, geodabs climb steeper because their first results are precise).
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table
from repro.bench.runner import build_geodab_index, build_geohash_index
from repro.ir.metrics import auc, roc_curve


@pytest.fixture(scope="module")
def built_indexes(retrieval_workload):
    return (
        build_geodab_index(retrieval_workload),
        build_geohash_index(retrieval_workload),
    )


def _mean_auc_and_early_tpr(index, dataset):
    corpus = len(dataset)
    aucs = []
    early_tprs = []
    for query in dataset.queries:
        ranked = [r.trajectory_id for r in index.query(query.points)]
        if not ranked:
            continue
        fpr, tpr = roc_curve(ranked, query.relevant_ids, corpus)
        aucs.append(auc(fpr, tpr))
        # Sensitivity after the first |relevant| results: how steeply the
        # curve climbs at the start of the retrieval spectrum.
        early_tprs.append(tpr[min(len(query.relevant_ids), len(tpr) - 1)])
    return sum(aucs) / len(aucs), sum(early_tprs) / len(early_tprs)


def bench_fig13_roc_curve(benchmark, built_indexes, retrieval_workload, capsys):
    """Regenerate the AUC comparison and the early-climb contrast."""
    geodab_index, geohash_index = built_indexes
    geodab_auc, geodab_early = _mean_auc_and_early_tpr(
        geodab_index, retrieval_workload
    )
    geohash_auc, geohash_early = _mean_auc_and_early_tpr(
        geohash_index, retrieval_workload
    )

    with capsys.disabled():
        print_table(
            "Figure 13: ROC area under curve and early sensitivity",
            ["index", "AUC", "TPR@|relevant|"],
            [
                ["geodabs", geodab_auc, geodab_early],
                ["geohash", geohash_auc, geohash_early],
            ],
        )

    # Paper shape: both AUCs are very high; the geodab curve climbs more
    # steeply (its first results are the relevant ones).
    assert geodab_auc > 0.95
    assert geohash_auc > 0.95
    assert geodab_early >= geohash_early - 0.02

    queries = retrieval_workload.queries
    corpus = len(retrieval_workload)

    def evaluate_roc():
        for query in queries:
            ranked = [r.trajectory_id for r in geodab_index.query(query.points)]
            if ranked:
                fpr, tpr = roc_curve(ranked, query.relevant_ids, corpus)
                auc(fpr, tpr)

    benchmark.pedantic(evaluate_roc, rounds=3, iterations=1)
