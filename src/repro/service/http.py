"""Stdlib JSON-over-HTTP front end for the :class:`IndexService`.

Endpoints (all JSON):

* ``POST /trajectories`` — bulk ingest: ``{"trajectories": [{"id": ...,
  "points": [[lat, lon], ...]}, ...]}`` (a single ``{"id", "points"}``
  object also works).  409 on duplicate identifiers.
* ``DELETE /trajectories/{id}`` — remove one trajectory; 404 if absent.
* ``POST /query`` — ``{"points": [[lat, lon], ...], "spec": {"mode":
  "exact_knn", "metric": "dtw", "limit": 10, ...}}`` → ranked results
  with serving metadata.  ``spec`` is the structured
  :class:`~repro.core.query.QuerySpec` surface (mode / metric / limit /
  max_distance / overfetch / band / variant / plan); the legacy flat
  ``{"limit", "max_distance"}`` body still parses as an approx query but
  the response carries a ``Deprecation: true`` header.  Responses embed
  a ``"planner"`` object reporting work the query planner avoided
  (``plan: "off"`` forces exhaustive collection).
* ``POST /query/batch`` — ``{"queries": [[[lat, lon], ...], ...],
  "spec": {...}}`` (entries may also be ``{"points": [...]}`` objects;
  legacy flat ``limit``/``max_distance`` as above) → ``{"results":
  [...], "count": n}``; the whole burst is fingerprinted in one
  columnar pass and fanned out as one shared shard fetch.
* ``POST /admin/snapshot`` — write a durable v2 snapshot of the index
  under the server's ``--snapshot-dir`` (fixed at start; not
  client-controllable); returns the snapshot metadata.  The next
  ``geodabs serve --snapshot-dir`` warm-starts from it.  With
  ``--snapshot-keep N`` superseded ``snapshot-*`` directories beyond
  the ``N`` newest are garbage-collected after each publish.
* ``GET /stats`` — index shape, cache counters, qps/latency quantiles,
  executor fan-out balance, last-snapshot and compaction metadata.
* ``GET /metrics`` — Prometheus text exposition: request counters,
  per-endpoint and per-stage latency histograms, gauges.
* ``GET /admin/slowlog`` — the slow-query ring buffer
  (``--slow-query-ms``).
* ``GET /healthz`` — liveness plus the current write generation.
* ``GET /readyz`` — readiness: 200 once warm-start/initial ingest is
  complete (``mark_ready()``), 503 before.

``POST /query`` and ``POST /query/batch`` accept ``?trace=1`` to get
the request's span tree back under a ``"trace"`` key.

Every error response is the structured shape ``{"error": {"code":
"<machine-readable>", "message": "<human-readable>"}}`` — 400
``bad_request``/``invalid_spec``/``exact_unsupported``/
``unknown_variant`` (the spec named a fingerprint variant the index
never registered; the message lists the known names), 404
``not_found``, 409 ``conflict``, 413 ``payload_too_large``, 429
``at_capacity``, 500 ``internal``, 503 ``not_ready``.

Every request is timed into the per-endpoint latency histograms (with
status-class counters); ``--access-log`` additionally emits one JSON
line per request through the ``repro.service.access`` logger.

``ThreadingHTTPServer`` gives one thread per in-flight request; actual
index concurrency control lives in the service's reader/writer lock, so
the HTTP layer stays a thin translation.

With ``max_inflight`` set (``--max-inflight``) the server sheds excess
concurrent requests with ``429`` + ``Retry-After: 1`` instead of letting
them queue into timeout territory; probes and ``/metrics`` are exempt.
:func:`shutdown_gracefully` is the ordered teardown the serve command
runs on SIGTERM/SIGINT: stop accepting, drain in-flight requests, close
the service (maintenance daemon, executor, worker processes), release
the socket.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.parse import parse_qs, unquote, urlparse

from ..core.query import QuerySpec
from ..core.registry import UnknownVariant
from ..core.rerank import ExactSearchUnsupported
from ..geo.point import Point
from .service import IndexService

__all__ = [
    "MAX_BATCH_QUERIES",
    "MAX_BODY_BYTES",
    "ServiceHTTPServer",
    "access_logger",
    "shutdown_gracefully",
    "start_server",
]

#: Structured access-log lines (one JSON object per request) go through
#: this logger when the server runs with ``access_log=True``
#: (``--access-log``); handlers/levels are the embedder's choice.
access_logger = logging.getLogger("repro.service.access")

#: Paths the per-endpoint histograms track individually; anything else
#: (scanners, typos) collapses into ``"other"`` so label cardinality
#: stays bounded no matter what clients send.
_KNOWN_PATHS = frozenset(
    {
        "/trajectories",
        "/trajectories/{id}",
        "/query",
        "/query/batch",
        "/admin/snapshot",
        "/admin/slowlog",
        "/stats",
        "/metrics",
        "/healthz",
        "/readyz",
    }
)

#: Largest request body the server will buffer (the biggest legitimate
#: payload is a bulk ingest; 64 MiB of JSON points is far beyond it).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Most queries accepted by one ``POST /query/batch`` request.
MAX_BATCH_QUERIES = 1024

#: Paths exempt from admission control: liveness/readiness probes and
#: the metrics scrape must keep answering precisely when the service is
#: saturated — a health check that 429s under load reads as an outage.
_UNLIMITED_PATHS = frozenset({"/healthz", "/readyz", "/metrics"})


class _BadRequest(ValueError):
    """Client payload failed validation (becomes a 400).

    ``code`` is the machine-readable half of the structured error
    payload — ``bad_request`` for generic validation failures,
    ``invalid_spec`` when the ``spec`` object itself was rejected.
    """

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


class _Conflict(Exception):
    """Write conflicts with existing state (becomes a 409)."""


class _PayloadTooLarge(Exception):
    """Declared body exceeds MAX_BODY_BYTES (becomes a 413)."""


def _error(code: str, message: str) -> dict:
    """The structured error payload every endpoint returns."""
    return {"error": {"code": code, "message": message}}


def _is_number(value: object) -> bool:
    """True for JSON numbers only (bool is an int subclass — reject it)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _parse_points(raw: object) -> list[Point]:
    if not isinstance(raw, list) or not raw:
        raise _BadRequest("'points' must be a non-empty list of [lat, lon]")
    points = []
    for entry in raw:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise _BadRequest(f"malformed point {entry!r}")
        lat, lon = entry
        if not _is_number(lat) or not _is_number(lon):
            raise _BadRequest(f"non-numeric point {entry!r}")
        try:
            points.append(Point(float(lat), float(lon)))
        except ValueError as exc:
            raise _BadRequest(str(exc)) from exc
    return points


def _parse_trajectories(payload: object) -> list[tuple[str, list[Point]]]:
    if isinstance(payload, dict) and "trajectories" in payload:
        entries = payload["trajectories"]
        if not isinstance(entries, list):
            raise _BadRequest("'trajectories' must be a list")
    elif isinstance(payload, dict):
        entries = [payload]
    else:
        raise _BadRequest("body must be a JSON object")
    out = []
    for entry in entries:
        if not isinstance(entry, dict) or "id" not in entry or "points" not in entry:
            raise _BadRequest("each trajectory needs 'id' and 'points'")
        trajectory_id = entry["id"]
        if not isinstance(trajectory_id, str) or not trajectory_id:
            raise _BadRequest("trajectory 'id' must be a non-empty string")
        out.append((trajectory_id, _parse_points(entry["points"])))
    return out


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the service; every response is JSON."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client that stalls mid-body (or mid-request)
    #: releases its server thread instead of pinning it forever.
    timeout = 30.0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch(self._route_post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch(self._route_delete)

    def _dispatch(self, route) -> None:
        """Run a route, translating every failure into a JSON response.

        Without the catch-all, an unexpected exception would drop the
        connection with no response and never reach the error metric.
        Every request — success or failure — lands in the per-endpoint
        latency histogram and (opt-in) the structured access log.
        """
        start = perf_counter()
        parsed = urlparse(self.path)
        self._params = parse_qs(parsed.query)
        self._status = 0
        self._trace_id: str | None = None
        # Admission control: cap concurrently served requests and shed
        # the excess with 429 + Retry-After instead of queueing them
        # into timeout territory.  Probes and the metrics scrape bypass
        # the cap (see _UNLIMITED_PATHS).  Shed requests still land in
        # the endpoint histograms and access log below.
        admitted = self.server.begin_request(
            limited=parsed.path not in _UNLIMITED_PATHS
        )
        try:
            if not admitted:
                self.server.service.metrics.record_shed()
                self._send(
                    429,
                    _error("at_capacity", "server at capacity, retry shortly"),
                    extra_headers={"Retry-After": "1"},
                )
                return
            route(parsed.path)
        except _BadRequest as exc:
            self.server.service.metrics.record_error()
            self._send(400, _error(exc.code, str(exc)))
        except ExactSearchUnsupported as exc:
            self.server.service.metrics.record_error()
            self._send(400, _error("exact_unsupported", str(exc)))
        except UnknownVariant as exc:
            self.server.service.metrics.record_error()
            self._send(400, _error("unknown_variant", str(exc)))
        except _Conflict as exc:
            self.server.service.metrics.record_error()
            self._send(409, _error("conflict", str(exc)))
        except _PayloadTooLarge as exc:
            self.server.service.metrics.record_error()
            self.close_connection = True  # body was not drained
            self._send(413, _error("payload_too_large", str(exc)))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.server.service.metrics.record_error()
            # After an unexpected failure (e.g. a timeout mid-body) the
            # request stream state is unknown; don't reuse the connection.
            self.close_connection = True
            self._send(500, _error("internal", f"internal error: {exc}"))
        finally:
            if admitted:
                self.server.end_request()
            latency = perf_counter() - start
            status = self._status or 500
            self.server.service.metrics.record_http(
                self._endpoint_label(parsed.path), status, latency
            )
            if self.server.access_log:
                access_logger.info(
                    json.dumps(
                        {
                            "method": self.command,
                            "path": self.path,
                            "status": status,
                            "latency_ms": round(latency * 1000.0, 3),
                            "trace_id": self._trace_id,
                        },
                        sort_keys=True,
                    )
                )

    def _endpoint_label(self, path: str) -> str:
        """Bounded-cardinality endpoint label for the metrics registry."""
        if path.startswith("/trajectories/") and path != "/trajectories/":
            path = "/trajectories/{id}"
        if path not in _KNOWN_PATHS:
            return "other"
        return f"{self.command} {path}"

    def _flag(self, name: str) -> bool:
        """Truthiness of a ``?name=1`` query-string parameter."""
        values = self._params.get(name, [])
        return bool(values) and values[-1].lower() in ("1", "true", "yes")

    def _route_get(self, path: str) -> None:
        service = self.server.service
        if path == "/healthz":
            self._send(
                200,
                {
                    "status": "ok",
                    "generation": service.generation,
                    "trajectories": len(service),
                },
            )
        elif path == "/readyz":
            if self.server.is_ready():
                self._send(
                    200,
                    {
                        "status": "ready",
                        "generation": service.generation,
                        "trajectories": len(service),
                    },
                )
            else:
                # "status" rides along for probe scripts that only look
                # at the readiness phase; the structured error is the
                # uniform contract.
                self._send(
                    503,
                    {
                        "status": "starting",
                        **_error("not_ready", "service is starting"),
                    },
                )
        elif path == "/stats":
            self._send(200, service.stats())
        elif path == "/metrics":
            self._send_bytes(
                200,
                service.metrics_text().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/admin/slowlog":
            if service.slow_log is None:
                self._send(200, {"enabled": False, "entries": []})
            else:
                self._send(200, {"enabled": True, **service.slow_log.as_dict()})
        else:
            self._send(404, _error("not_found", f"unknown path {path!r}"))

    def _route_post(self, path: str) -> None:
        if path == "/trajectories":
            self._handle_ingest()
        elif path == "/query":
            self._handle_query()
        elif path == "/query/batch":
            self._handle_query_batch()
        elif path == "/admin/snapshot":
            self._handle_snapshot()
        else:
            self._send(404, _error("not_found", f"unknown path {path!r}"))

    def _route_delete(self, path: str) -> None:
        prefix = "/trajectories/"
        if not path.startswith(prefix) or path == prefix:
            self._send(404, _error("not_found", f"unknown path {path!r}"))
            return
        trajectory_id = unquote(path[len(prefix):])
        try:
            generation = self.server.service.delete(trajectory_id)
        except KeyError:
            self.server.service.metrics.record_error()
            self._send(
                404,
                _error(
                    "not_found", f"trajectory {trajectory_id!r} not indexed"
                ),
            )
            return
        self._send(200, {"deleted": trajectory_id, "generation": generation})

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _handle_ingest(self) -> None:
        items = _parse_trajectories(self._read_json())
        try:
            count, generation = self.server.service.ingest(items)
        except KeyError as exc:
            # Duplicate trajectory id — the only KeyError ingest raises.
            raise _Conflict(str(exc.args[0]) if exc.args else "conflict") from exc
        self._send(200, {"ingested": count, "generation": generation})

    @staticmethod
    def _query_params(payload: dict) -> tuple[int | None, float]:
        """Validate the legacy flat ``limit``/``max_distance`` pair."""
        limit = payload.get("limit")
        if limit is not None and (
            isinstance(limit, bool) or not isinstance(limit, int) or limit < 1
        ):
            raise _BadRequest("'limit' must be a positive integer")
        max_distance = payload.get("max_distance", 1.0)
        if not _is_number(max_distance) or not 0 <= max_distance <= 1:
            raise _BadRequest("'max_distance' must be in [0, 1]")
        return limit, float(max_distance)

    @classmethod
    def _parse_spec(cls, payload: dict) -> tuple[QuerySpec, bool]:
        """The request's :class:`QuerySpec`, plus whether it was legacy.

        ``{"spec": {...}}`` is the structured surface (validated by
        :meth:`QuerySpec.from_json`; mixing it with the flat top-level
        ``limit``/``max_distance`` keys is rejected — two sources of
        truth would silently disagree).  A body without ``spec`` parses
        the legacy flat shape into an approx spec; the second return
        value tells the handler to stamp the response with a
        ``Deprecation: true`` header when the flat keys were actually
        used.
        """
        if "spec" in payload:
            if "limit" in payload or "max_distance" in payload:
                raise _BadRequest(
                    "'spec' cannot be combined with the legacy top-level "
                    "'limit'/'max_distance' keys",
                    code="invalid_spec",
                )
            try:
                return QuerySpec.from_json(payload["spec"]), False
            except ValueError as exc:
                raise _BadRequest(str(exc), code="invalid_spec") from exc
        limit, max_distance = cls._query_params(payload)
        deprecated = "limit" in payload or "max_distance" in payload
        return QuerySpec(limit=limit, max_distance=max_distance), deprecated

    def _handle_query(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict):
            raise _BadRequest("body must be a JSON object")
        points = _parse_points(payload.get("points"))
        spec, deprecated = self._parse_spec(payload)
        response = self.server.service.query(
            points, trace=self._flag("trace"), spec=spec
        )
        if response.trace is not None:
            self._trace_id = response.trace.get("trace_id")
        self._send(
            200,
            response.as_dict(),
            extra_headers={"Deprecation": "true"} if deprecated else None,
        )

    def _handle_query_batch(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict):
            raise _BadRequest("body must be a JSON object")
        entries = payload.get("queries")
        if not isinstance(entries, list) or not entries:
            raise _BadRequest("'queries' must be a non-empty list of point lists")
        if len(entries) > MAX_BATCH_QUERIES:
            raise _BadRequest(
                f"batch of {len(entries)} queries exceeds the "
                f"{MAX_BATCH_QUERIES}-query limit"
            )
        queries = []
        for entry in entries:
            if isinstance(entry, dict):
                queries.append(_parse_points(entry.get("points")))
            else:
                queries.append(_parse_points(entry))
        spec, deprecated = self._parse_spec(payload)
        responses = self.server.service.query_many(
            queries, trace=self._flag("trace"), spec=spec
        )
        # One trace covers the whole burst; the service attaches it to
        # the first response — lift it to a top-level key here.
        dicts = [response.as_dict() for response in responses]
        body = {"results": dicts, "count": len(dicts)}
        trace_payload = dicts[0].pop("trace", None) if dicts else None
        if trace_payload is not None:
            self._trace_id = trace_payload.get("trace_id")
            body["trace"] = trace_payload
        self._send(
            200,
            body,
            extra_headers={"Deprecation": "true"} if deprecated else None,
        )

    def _handle_snapshot(self) -> None:
        # The target directory is fixed at server start (--snapshot-dir)
        # and deliberately NOT overridable from the request body: an
        # unauthenticated client choosing the path would be an arbitrary
        # filesystem-write primitive.  The (optional) body is drained
        # and must at most be an empty JSON object.
        payload: object = {}
        if self._content_length() != 0:
            payload = self._read_json()
        if payload not in ({}, None) and not isinstance(payload, dict):
            raise _BadRequest("body must be empty or an empty JSON object")
        if isinstance(payload, dict) and payload:
            raise _BadRequest(
                "POST /admin/snapshot takes no parameters; the target "
                "directory is fixed by --snapshot-dir at server start"
            )
        directory = self.server.snapshot_dir
        if not directory:
            raise _BadRequest(
                "no snapshot directory configured: start the server "
                "with --snapshot-dir"
            )
        try:
            info = self.server.service.snapshot(
                directory, keep=self.server.snapshot_keep
            )
        except ValueError as exc:
            raise _BadRequest(str(exc)) from exc
        self._send(200, info)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _content_length(self) -> int:
        """Declared body length; -1 if the header is malformed."""
        try:
            return int(self.headers.get("Content-Length") or 0)
        except ValueError:
            return -1

    def _read_json(self) -> object:
        if "chunked" in (self.headers.get("Transfer-Encoding") or "").lower():
            # The stdlib handler does not de-chunk; without a length we
            # cannot drain the frames, so refuse and drop the connection
            # rather than desync the keep-alive stream.
            self.close_connection = True
            raise _BadRequest(
                "chunked transfer encoding unsupported; send Content-Length"
            )
        length = self._content_length()
        self._body_consumed = True
        if length < 0:
            raise _BadRequest("malformed Content-Length header")
        if length == 0:
            raise _BadRequest("request body required")
        if length > MAX_BODY_BYTES:
            raise _PayloadTooLarge(
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"invalid JSON: {exc}") from exc

    def _send(
        self,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self._send_bytes(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            extra_headers,
        )

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        # Keep-alive hygiene: a request rejected before its body was
        # read (e.g. 404 on an unrouted POST) must still drain it, or
        # the leftover bytes desync the next request on the connection.
        length = self._content_length()
        if 0 < length <= MAX_BODY_BYTES and not getattr(self, "_body_consumed", False):
            # Discard in small chunks — no point buffering megabytes of
            # a rejected request just to throw them away.
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
        elif length < 0 or length > MAX_BODY_BYTES:
            # Undeclarable or unreasonably large body: give up on
            # connection reuse rather than buffer or desync the stream.
            self.close_connection = True
        self._body_consumed = False
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # The stdlib line log stays opt-in (--verbose); the structured
        # JSON access log (--access-log) is the production-facing one.
        if self.server.verbose:
            super().log_message(format, *args)


class ServiceHTTPServer(ThreadingHTTPServer):
    """One thread per request; daemonized so Ctrl-C exits promptly."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: IndexService,
        verbose: bool = False,
        snapshot_dir: str | None = None,
        snapshot_keep: int | None = None,
        access_log: bool = False,
        ready: bool = True,
        max_inflight: int | None = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        #: Default target of ``POST /admin/snapshot`` (``--snapshot-dir``).
        self.snapshot_dir = snapshot_dir
        #: Snapshot GC policy (``--snapshot-keep``): after each publish,
        #: keep this many recent snapshots (``None`` = keep everything).
        self.snapshot_keep = snapshot_keep
        #: Structured JSON access logging (``--access-log``).
        self.access_log = access_log
        #: Admission cap (``--max-inflight``): concurrently *served*
        #: requests beyond this are shed with 429 (``None`` = unlimited).
        self.max_inflight = max_inflight
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        #: Readiness gate for ``GET /readyz``: start with ``ready=False``
        #: while warm-starting, then :meth:`mark_ready` — /healthz says
        #: the process is alive, /readyz says it can serve real traffic.
        self._ready = threading.Event()
        if ready:
            self._ready.set()

    def mark_ready(self) -> None:
        """Flip ``GET /readyz`` to 200 (warm start / initial load done)."""
        self._ready.set()

    def is_ready(self) -> bool:
        """Whether the server has been marked ready to serve traffic."""
        return self._ready.is_set()

    def begin_request(self, limited: bool = True) -> bool:
        """Admit (count) one request; False = shed it (cap reached).

        Unlimited paths pass ``limited=False``: they are still counted
        as in-flight (the drain must wait for them) but never shed.
        """
        with self._inflight_lock:
            if (
                limited
                and self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                return False
            self._inflight += 1
            return True

    def end_request(self) -> None:
        """Balance one successful :meth:`begin_request`."""
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Requests currently being served (admitted, not yet finished)."""
        with self._inflight_lock:
            return self._inflight

    def drain(
        self,
        timeout_s: float = 10.0,
        clock=None,
        sleep=None,
        poll_s: float = 0.05,
    ) -> bool:
        """Wait for in-flight requests to finish; True when fully drained.

        Polling (rather than a condition variable) keeps the accounting
        a plain counter on the hot path; the drain only runs once, at
        shutdown.  ``clock``/``sleep`` are injectable so the shutdown
        ordering test drives this with a fake clock.
        """
        clock = clock or time.monotonic
        sleep = sleep or time.sleep
        deadline = clock() + timeout_s
        while self.inflight > 0:
            if clock() >= deadline:
                return False
            sleep(poll_s)
        return True

    @property
    def url(self) -> str:
        """Base URL of the bound socket (useful with port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def shutdown_gracefully(
    server: ServiceHTTPServer,
    service: IndexService,
    drain_timeout_s: float = 10.0,
    clock=None,
    sleep=None,
) -> dict:
    """Ordered teardown: stop accepting, drain, close service, close socket.

    The ordering is the point (the shutdown regression test pins it):

    1. ``server.shutdown()`` — stop the accept loop, so no new request
       can start (must be called from outside the serve_forever thread);
    2. :meth:`ServiceHTTPServer.drain` — wait (bounded) for requests
       already admitted to finish, so clients get their responses;
    3. ``service.close()`` — stop the maintenance daemon, then the
       executor: its worker pool finishes, and the transport reaps every
       worker process (no orphans) — safe only *after* the drain, since
       in-flight queries still fan out through that transport;
    4. ``server.server_close()`` — release the listening socket.

    Returns what happened, for the serve loop's exit log.
    """
    server.shutdown()
    drained = server.drain(drain_timeout_s, clock=clock, sleep=sleep)
    leftover = server.inflight
    service.close()
    server.server_close()
    return {
        "drained": drained,
        "inflight_abandoned": 0 if drained else leftover,
    }


def start_server(
    service: IndexService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    snapshot_dir: str | None = None,
    snapshot_keep: int | None = None,
    access_log: bool = False,
    ready: bool = True,
    max_inflight: int | None = None,
) -> ServiceHTTPServer:
    """Bind and serve in a daemon thread; returns the running server.

    Pass ``port=0`` to bind an ephemeral port (tests);
    ``server.shutdown()`` stops the serving loop.  Pass ``ready=False``
    when warm-starting and call ``server.mark_ready()`` once serving
    state is loaded.
    """
    server = ServiceHTTPServer(
        (host, port),
        service,
        verbose=verbose,
        snapshot_dir=snapshot_dir,
        snapshot_keep=snapshot_keep,
        access_log=access_log,
        ready=ready,
        max_inflight=max_inflight,
    )
    thread = threading.Thread(
        target=server.serve_forever, name="geodab-http", daemon=True
    )
    thread.start()
    return server
