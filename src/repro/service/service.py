"""The thread-safe serving facade over a geodab index.

:class:`IndexService` is what the HTTP layer (and any embedding
application) talks to.  It owns:

* a :class:`~repro.service.locks.ReadWriteLock` so concurrent queries
  share the index while writes get exclusive access — a query always
  sees a fully-applied generation, never a half-ingested batch;
* a monotonically increasing *generation counter*, bumped by every
  write, which tags (and therefore invalidates) cached query results;
* an :class:`~repro.service.cache.LRUCache` of query results keyed by
  the terms digest plus every :class:`~repro.core.query.QuerySpec`
  field that changes the answer (and, for exact modes, the raw-points
  digest), plus a second cache of query fingerprints keyed by the raw
  points, so repeated queries skip both winnowing and shard fan-out;
* an optional :class:`~repro.service.executor.QueryExecutor` that fans
  shard lookups out over a worker pool;
* a :class:`~repro.service.metrics.ServiceMetrics` registry surfaced by
  ``GET /stats``;
* a :class:`CompactionPolicy` that folds hot append buffers off the
  write path — proactively after writes, and (when
  ``maintenance_interval_s`` is set) from a background maintenance
  daemon that keeps the age trigger honest even when writes go idle;
* :meth:`IndexService.snapshot` — a durable columnar snapshot (taken
  under the read lock) that ``geodabs serve --snapshot-dir`` warm-starts
  from without re-deriving any postings, with optional GC of superseded
  ``snapshot-*`` directories (``keep=N``).

The same facade serves a single-node :class:`~repro.core.index.GeodabIndex`
and a :class:`~repro.cluster.cluster.ShardedGeodabIndex` through one
code path: both expose the ``prepare_query`` / ``query_prepared``
decomposition (a single-node index plans onto one logical shard), both
ingest batches via ``fingerprint_many`` + ``add_fingerprints_many``, and
results are identical between the two (and between sequential and
pooled fan-out), which the integration tests assert.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Callable, Hashable, Iterable, Sequence

from ..cluster.cluster import ShardedGeodabIndex
from ..cluster.stats import request_balance
from ..core.index import GeodabIndex, SearchResult
from ..core.persistence import prune_snapshots, publish_snapshot
from ..core.query import NO_TRACE, QuerySpec, TraceSink
from ..core.rerank import ExactSearchUnsupported
from ..geo.point import Point, Trajectory
from .cache import LRUCache, MISS, digest_points, digest_terms
from .executor import QueryExecutor
from .locks import ReadWriteLock
from .metrics import ServiceMetrics, SlowQueryLog, prometheus_text
from .tracing import Trace, trace_logger

__all__ = ["CompactionPolicy", "QueryResponse", "IndexService"]


@dataclass(frozen=True, slots=True)
class CompactionPolicy:
    """When to fold hot append buffers into the sorted postings arrays.

    Freshly ingested postings sit in per-term append buffers until the
    first read of each term folds them (a sort).  Under a write-heavy
    workload that tax lands on query latency; this policy instead folds
    proactively after a write once *either* trigger fires:

    * **size** — buffered postings reach ``max_buffered_postings``;
    * **age** — the oldest unfolded buffer is ``max_age_s`` old.

    The fold runs under the service's *read* lock (folding is
    reader-safe), so it never extends a write critical section — the
    append-only write path stays O(appends).
    """

    max_buffered_postings: int = 50_000
    max_age_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_buffered_postings < 1:
            raise ValueError("max_buffered_postings must be positive")
        if self.max_age_s < 0:
            raise ValueError("max_age_s must be non-negative")

    def due(self, buffered: int, age_s: float) -> bool:
        """Whether a proactive fold is warranted right now."""
        if buffered <= 0:
            return False
        return buffered >= self.max_buffered_postings or age_s >= self.max_age_s


#: Default policy applied by :class:`IndexService` (frozen, shareable).
_DEFAULT_COMPACTION = CompactionPolicy()


@dataclass(frozen=True, slots=True)
class QueryResponse:
    """What the serving tier returns for one query.

    ``pruned`` is the scoring engine's count of candidates eliminated by
    the count-based minimum-overlap threshold before any distance was
    computed (0 unless the query set ``max_distance`` below 1).
    ``trace`` carries the request's span tree when the caller asked for
    one (``POST /query?trace=1``); ``None`` otherwise.  ``degraded``
    means at least one planned shard contributed nothing (its backend
    failed or timed out on every attempt): the results rank what the
    surviving shards returned — correct but possibly incomplete — and
    the response says so instead of failing the request.

    The planner quartet (``terms_skipped``, ``postings_skipped``,
    ``postings_bytes_avoided``, ``collection_cut``) reports how much
    work the WAND-style query planner avoided; all zeros when the
    query ran exhaustively (``plan="off"``, unplannable spec, cache
    hit, or degraded fallback).
    """

    results: tuple[SearchResult, ...]
    generation: int
    cached: bool
    candidates: int
    shards_contacted: int
    latency_s: float
    pruned: int = 0
    trace: dict | None = None
    degraded: bool = False
    terms_skipped: int = 0
    postings_skipped: int = 0
    postings_bytes_avoided: int = 0
    collection_cut: bool = False

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``POST /query`` payload)."""
        payload = {
            "results": [
                {
                    "id": r.trajectory_id,
                    "distance": r.distance,
                    "shared_terms": r.shared_terms,
                }
                for r in self.results
            ],
            "generation": self.generation,
            "cached": self.cached,
            "candidates": self.candidates,
            "pruned": self.pruned,
            "shards_contacted": self.shards_contacted,
            "latency_ms": round(self.latency_s * 1000.0, 3),
            "degraded": self.degraded,
            "planner": {
                "terms_skipped": self.terms_skipped,
                "postings_skipped": self.postings_skipped,
                "postings_bytes_avoided": self.postings_bytes_avoided,
                "collection_cut": self.collection_cut,
            },
        }
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload


class IndexService:
    """Concurrent query serving over a geodab index."""

    def __init__(
        self,
        index: GeodabIndex | ShardedGeodabIndex,
        executor: QueryExecutor | None = None,
        result_cache_size: int = 4096,
        fingerprint_cache_size: int = 4096,
        metrics: ServiceMetrics | None = None,
        compaction: CompactionPolicy | None = _DEFAULT_COMPACTION,
        maintenance_interval_s: float | None = None,
        clock: Callable[[], float] = perf_counter,
        slow_query_ms: float | None = None,
        trace_sample: float = 0.0,
    ) -> None:
        if executor is not None and executor.index is not index:
            raise ValueError("executor must wrap the served index")
        if maintenance_interval_s is not None and maintenance_interval_s <= 0:
            raise ValueError("maintenance_interval_s must be positive")
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError("trace_sample must be within [0, 1]")
        self.index = index
        self.executor = executor
        self.metrics = metrics or ServiceMetrics()
        #: Slow-query ring buffer (``GET /admin/slowlog``); ``None``
        #: unless a threshold is configured (``--slow-query-ms``).
        self.slow_log = (
            SlowQueryLog(slow_query_ms) if slow_query_ms is not None else None
        )
        self._trace_sample = trace_sample
        self.result_cache = LRUCache(result_cache_size)
        self.fingerprint_cache = LRUCache(fingerprint_cache_size)
        # Queries served per *resolved* fingerprint variant (``GET
        # /stats`` and the ``/metrics`` labeled counter).  Guarded by
        # its own lock: it is touched outside the index read lock.
        self._variant_queries: dict[str, int] = {}
        self._variant_queries_lock = threading.Lock()
        self._lock = ReadWriteLock()
        self._generation = 0
        self._compaction = compaction
        self._compactions = 0
        #: Monotonic clock for buffer-age accounting; injectable so the
        #: maintenance tests can drive the age trigger with a fake clock.
        self._clock = clock
        self._buffers_dirty_since: float | None = None
        self._last_snapshot: dict | None = None
        # Serializes snapshot publish + prune so concurrent admin calls
        # cannot GC each other's snapshots mid-publish.
        self._snapshot_mutex = threading.Lock()
        # Background maintenance: the write-path compaction triggers only
        # fire *on* writes, so an idle service could sit on aged append
        # buffers forever.  The daemon re-evaluates the policy every
        # ``maintenance_interval_s`` seconds; ``close()`` stops it.
        self._maintenance_interval_s = maintenance_interval_s
        self._maintenance_ticks = 0
        self._maintenance_stop = threading.Event()
        self._maintenance_thread: threading.Thread | None = None
        if maintenance_interval_s is not None:
            self._maintenance_thread = threading.Thread(
                target=self._maintenance_loop,
                name="geodab-maintenance",
                daemon=True,
            )
            self._maintenance_thread.start()

    # ------------------------------------------------------------------
    # Writes (exclusive; every write bumps the generation)
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Current write generation (reads are cheap and racy-safe)."""
        return self._generation

    def ingest(self, items: Iterable[tuple[Hashable, Trajectory]]) -> tuple[int, int]:
        """Bulk-index ``(trajectory_id, points)`` pairs atomically.

        The whole batch is validated against the live index before any
        mutation, applied under one write lock, and costs one generation
        bump — so queries see either none or all of it.

        Returns ``(count, generation_after)``.
        """
        # Fingerprinting is the expensive part of an add and depends
        # only on the pipeline configuration — the whole batch runs
        # through the vectorized pipeline (one columnar sweep per
        # registered variant, normalization shared) before taking the
        # write lock, so concurrent queries are stalled only for the
        # grouped postings insertion (and malformed input fails before
        # anything is mutated).
        items = list(items)
        names = self.index.variant_names
        per_variant = self.index.fingerprint_variants_many(
            points for _, points in items
        )
        batch = [
            (
                trajectory_id,
                {name: per_variant[name][doc] for name in names},
                points,
            )
            for doc, (trajectory_id, points) in enumerate(items)
        ]
        with self._lock.write_locked():
            # add_fingerprints_many validates the whole batch (against
            # the live index and within the batch) before mutating, so
            # a rejected batch leaves no partial state.
            self.index.add_fingerprints_many(batch)
            if batch:
                self._generation += 1
                self.result_cache.invalidate_all()
            generation = self._generation
        self.metrics.record_ingest(len(batch))
        if batch and self._buffers_dirty_since is None:
            self._buffers_dirty_since = self._clock()
        self._maybe_compact()
        return len(batch), generation

    def add(self, trajectory_id: Hashable, points: Trajectory) -> int:
        """Index one trajectory; returns the new generation."""
        _, generation = self.ingest([(trajectory_id, points)])
        return generation

    def delete(self, trajectory_id: Hashable) -> int:
        """Remove one trajectory; returns the new generation."""
        with self._lock.write_locked():
            self.index.remove(trajectory_id)
            self._generation += 1
            self.result_cache.invalidate_all()
            generation = self._generation
        self.metrics.record_delete()
        return generation

    # ------------------------------------------------------------------
    # Queries (shared; cached; optionally pooled)
    # ------------------------------------------------------------------

    def query(
        self,
        points: Sequence[Point],
        limit: int | None = None,
        max_distance: float = 1.0,
        trace: bool = False,
        *,
        spec: QuerySpec | None = None,
    ) -> QueryResponse:
        """Serve one similarity query.

        ``spec`` is the structured surface: an ``approx`` spec is the
        fingerprint Jaccard ranking, an exact-mode spec routes through
        the tiered pipeline (Jaccard retrieve, exact DTW/Fréchet
        re-rank).  The flat ``limit``/``max_distance`` pair remains as
        the legacy approx shorthand and is ignored when ``spec`` is
        given.

        ``trace=True`` (the ``POST /query?trace=1`` contract) returns
        the request's span tree in ``QueryResponse.trace``; otherwise a
        trace may still be recorded for stage histograms (always, while
        metrics are enabled) or sampled into the trace log
        (``trace_sample``), but the response carries none.
        """
        start = perf_counter()
        if spec is None:
            spec = QuerySpec(limit=limit, max_distance=max_distance)
        variant = self._check_spec(spec)
        self._count_variant_query(variant)
        tracer = self._open_trace(trace)
        sink: TraceSink = tracer if tracer is not None else NO_TRACE
        # Fingerprints depend only on the pipeline configuration, never
        # on index contents, so this cache needs no generation tag and
        # no lock over the index — but it *is* keyed by the resolved
        # variant: each variant fingerprints the same points
        # differently.  Skip digesting entirely when a cache is disabled
        # (capacity 0) — hashing every point would be pure overhead.
        prepare_start = sink.now()
        if self.fingerprint_cache.capacity > 0:
            points_key = (digest_points(points), variant)
            prepared = self.fingerprint_cache.get(points_key)
            if prepared is MISS:
                prepared = self.index.prepare_query(points, variant)
                self.fingerprint_cache.put(points_key, prepared)
        else:
            prepared = self.index.prepare_query(points, variant)
        sink.stage("prepare", prepare_start, sink.now())
        caching = self.result_cache.capacity > 0
        # The key carries every spec field that changes the answer
        # (mode/metric/overfetch/band included — an exact_knn answer
        # must never be served for an approx probe of the same terms)
        # and, for exact modes, the raw-points digest: two queries can
        # share a fingerprint yet have different exact distances.
        cache_key = (
            (
                digest_terms(prepared.terms),
                digest_points(points) if spec.is_exact else None,
                spec.cache_key(),
            )
            if caching
            else None
        )
        hit = MISS
        with self._lock.read_locked():
            generation = self._generation
            if caching:
                # The probe span is detail-only, so below detail the
                # two clock reads around the cache get are skipped too.
                if sink.detail:
                    probe_start = sink.now()
                    hit = self.result_cache.get(cache_key, generation)
                    sink.event(
                        "result_cache",
                        probe_start,
                        sink.now(),
                        hit=hit is not MISS,
                    )
                else:
                    hit = self.result_cache.get(cache_key, generation)
            if hit is MISS:
                (
                    results, candidates, shards, pruned, width, batch, degraded,
                    planner,
                ) = self._execute(prepared, spec, points, sink)
                # A degraded answer (a shard contributed nothing) must
                # not be cached: the next attempt may have the shard
                # back and would otherwise keep serving the hole until
                # the next write invalidates the cache.
                if caching and not degraded:
                    self.result_cache.put(
                        cache_key, (results, candidates, shards, pruned), generation
                    )
        # Metrics recording takes the registry's own lock; keep it (and
        # the latency arithmetic) off the index read lock so a slow
        # metrics consumer never extends reader critical sections.
        cached = hit is not MISS
        if cached:
            results, candidates, shards, pruned = hit
            degraded = False
            # A cache hit ran no collection: the planner quartet reports
            # zero avoided work, not the miss's numbers replayed.
            planner = (0, 0, 0, False)
        latency = perf_counter() - start
        stages = tracer.stage_seconds() if tracer is not None else None
        if cached:
            self.metrics.record_request(
                latency, cached=True, stage_seconds=stages
            )
        else:
            self.metrics.record_request(
                latency,
                cached=False,
                fanout_width=width,
                batch_size=batch,
                pruned=pruned,
                degraded=degraded,
                stage_seconds=stages,
                planner=planner,
            )
        trace_payload = self._finish_trace(
            tracer,
            attach=trace,
            latency_s=latency,
            entry={
                "kind": "query",
                "terms": len(prepared.terms),
                "cached": cached,
                "candidates": candidates,
                "shards_contacted": shards,
            },
        )
        return QueryResponse(
            results, generation, cached, candidates, shards, latency, pruned,
            trace_payload, degraded,
            terms_skipped=planner[0],
            postings_skipped=planner[1],
            postings_bytes_avoided=planner[2],
            collection_cut=planner[3],
        )

    def query_many(
        self,
        queries: Sequence[Sequence[Point]],
        limit: int | None = None,
        max_distance: float = 1.0,
        trace: bool = False,
        *,
        spec: QuerySpec | None = None,
    ) -> list[QueryResponse]:
        """Serve a burst of similarity queries as one columnar batch.

        The whole burst is fingerprinted in one vectorized pass
        (``prepare_query_many``), the index read lock is acquired
        *once*, result-cache hits are split out, and the misses execute
        as one shared shard fan-out (one postings fetch per shard over
        the union of the batch's terms when an executor is configured).

        Each response reports the amortized per-query latency — total
        batch wall time divided by the burst size — which is the
        quantity the throughput benchmark tracks.  One trace covers the
        whole burst (the shared fan-out is genuinely shared work); with
        ``trace=True`` its span tree is attached to the *first*
        response.
        """
        start = perf_counter()
        if spec is None:
            spec = QuerySpec(limit=limit, max_distance=max_distance)
        variant = self._check_spec(spec)
        queries = [list(points) for points in queries]
        total = len(queries)
        if total == 0:
            return []
        self._count_variant_query(variant, total)
        tracer = self._open_trace(trace)
        sink: TraceSink = tracer if tracer is not None else NO_TRACE
        prepare_start = sink.now()
        prepared_list: list = [None] * total
        if self.fingerprint_cache.capacity > 0:
            keys = [(digest_points(points), variant) for points in queries]
            missing: list[int] = []
            for position, key in enumerate(keys):
                cached = self.fingerprint_cache.get(key)
                if cached is MISS:
                    missing.append(position)
                else:
                    prepared_list[position] = cached
            if missing:
                fresh = self.index.prepare_query_many(
                    [queries[position] for position in missing], variant
                )
                for position, prepared in zip(missing, fresh):
                    prepared_list[position] = prepared
                    self.fingerprint_cache.put(keys[position], prepared)
        else:
            prepared_list = self.index.prepare_query_many(queries, variant)
        sink.stage("prepare", prepare_start, sink.now(), queries=total)
        caching = self.result_cache.capacity > 0
        # Same completeness rule as the single-query path: the key
        # carries the full spec, plus per-query points digests for
        # exact modes (reusing the fingerprint-cache digests when they
        # were already computed).
        if caching and spec.is_exact:
            point_digests = (
                keys
                if self.fingerprint_cache.capacity > 0
                else [digest_points(points) for points in queries]
            )
        else:
            point_digests = None
        cache_keys = [
            (
                digest_terms(prepared.terms),
                point_digests[position] if point_digests is not None else None,
                spec.cache_key(),
            )
            if caching
            else None
            for position, prepared in enumerate(prepared_list)
        ]
        payloads: list = [None] * total
        cached_flags = [False] * total
        with self._lock.read_locked():
            generation = self._generation
            to_run: list[int] = []
            for position in range(total):
                if caching:
                    hit = self.result_cache.get(cache_keys[position], generation)
                    if hit is not MISS:
                        results, candidates, shards, pruned = hit
                        payloads[position] = (
                            results, candidates, shards, pruned, 1, 1, False,
                            (0, 0, 0, False),
                        )
                        cached_flags[position] = True
                        continue
                to_run.append(position)
            if to_run:
                # Within-burst dedup: identical queries (same terms,
                # limit, max_distance) share one execution — the result
                # cache already provides exactly that across bursts.
                if caching:
                    first_at: dict = {}
                    unique_run = []
                    for position in to_run:
                        key = cache_keys[position]
                        if key not in first_at:
                            first_at[key] = position
                            unique_run.append(position)
                else:
                    first_at = {}
                    unique_run = to_run
                if self.executor is not None:
                    executed = self.executor.execute_prepared_many(
                        [
                            (
                                prepared_list[position],
                                limit,
                                max_distance,
                                spec,
                                queries[position],
                            )
                            for position in unique_run
                        ],
                        trace=sink,
                    )
                    fresh_payloads = [
                        (
                            tuple(results),
                            stats.candidates,
                            stats.shards_contacted,
                            stats.pruned,
                            stats.fanout_width,
                            stats.batch_size,
                            stats.degraded,
                            (
                                stats.terms_skipped,
                                stats.postings_skipped,
                                stats.postings_bytes_avoided,
                                stats.collection_cut,
                            ),
                        )
                        for results, stats in executed
                    ]
                else:
                    # No executor: each miss runs its own sequential
                    # shard loop, so no shared fetch occurred — record
                    # batch_size=1 exactly like the single-query path.
                    fresh_payloads = []
                    for position in unique_run:
                        results, fanout = self.index.query_prepared(
                            prepared_list[position], limit, max_distance,
                            trace=sink, spec=spec,
                            query_points=queries[position],
                        )
                        fresh_payloads.append(
                            (
                                tuple(results),
                                fanout.candidates,
                                fanout.shards_contacted,
                                fanout.pruned,
                                1,
                                1,
                                False,
                                (
                                    fanout.terms_skipped,
                                    fanout.postings_skipped,
                                    fanout.postings_bytes_avoided,
                                    fanout.collection_cut,
                                ),
                            )
                        )
                executed_at = dict(zip(unique_run, fresh_payloads))
                for position in unique_run:
                    # Same rule as the single-query path: degraded
                    # answers are served but never cached.
                    if caching and not executed_at[position][6]:
                        self.result_cache.put(
                            cache_keys[position],
                            executed_at[position][:4],
                            generation,
                        )
                for position in to_run:
                    payloads[position] = (
                        executed_at[position]
                        if position in executed_at
                        else executed_at[first_at[cache_keys[position]]]
                    )
        # Metrics and response assembly happen off the read lock, like
        # the single-query path.
        wall = perf_counter() - start
        latency = wall / total
        trace_payload = self._finish_trace(
            tracer,
            attach=trace,
            latency_s=wall,
            entry={"kind": "query_many", "queries": total},
        )
        responses: list[QueryResponse] = []
        outcomes: list[tuple] = []
        for position in range(total):
            (
                results, candidates, shards, pruned, width, batch_size, degraded,
                planner,
            ) = payloads[position]
            cached = cached_flags[position]
            if cached:
                outcomes.append((latency, True, 0, 1, 0, False))
            else:
                outcomes.append(
                    (latency, False, width, batch_size, pruned, degraded, planner)
                )
            responses.append(
                QueryResponse(
                    results, generation, cached, candidates, shards, latency,
                    pruned, trace_payload if position == 0 else None, degraded,
                    terms_skipped=planner[0],
                    postings_skipped=planner[1],
                    postings_bytes_avoided=planner[2],
                    collection_cut=planner[3],
                )
            )
        self.metrics.record_request_batch(
            outcomes,
            stage_seconds=(
                tracer.stage_seconds() if tracer is not None else None
            ),
        )
        return responses

    # ------------------------------------------------------------------
    # Maintenance: compaction and snapshots
    # ------------------------------------------------------------------

    def _maybe_compact(self) -> bool:
        """Fold append buffers when the compaction policy says so.

        Runs *after* the write lock is released, under a read lock:
        folding is reader-safe (guarded inside the postings store), so
        concurrent queries proceed and the write path never carries the
        sort.  Called from the write paths and the maintenance daemon;
        callers race benignly — a second concurrent fold finds empty
        buffers and is a no-op.  Returns whether a fold ran.
        """
        if self._compaction is None:
            return False
        dirty_since = self._buffers_dirty_since
        age_s = 0.0 if dirty_since is None else self._clock() - dirty_since
        if not self._compaction.due(self.index.buffered_postings, age_s):
            return False
        # Clear the dirty marker *before* folding: a writer landing new
        # buffers mid-fold finds it None and re-arms it, so aged buffers
        # can never end up dirty with no marker (clearing after the fold
        # would clobber that writer's fresh timestamp and an idle
        # service would never fold them).  The stale-timestamp case —
        # writer re-arms, then this fold absorbs its buffers too — only
        # makes the next age trigger conservative, never wrong.
        self._buffers_dirty_since = None
        with self._lock.read_locked():
            self.index.compact()
        self._compactions += 1
        return True

    def maintenance_tick(self) -> bool:
        """One maintenance pass: compaction policy + transport supervision.

        This is what the background daemon runs every
        ``maintenance_interval_s`` seconds; exposed so tests (and
        embedders with their own schedulers) can drive it directly.
        Besides re-evaluating the compaction policy it runs the
        executor's transport maintenance — with the worker-process
        transport that is the supervisor pass, so a worker that died
        mid-query is respawned within one tick.  Returns whether the
        pass folded anything.
        """
        self._maintenance_ticks += 1
        if self.executor is not None:
            self.executor.maintain()
        return self._maybe_compact()

    def _maintenance_loop(self) -> None:
        """Daemon body: tick until :meth:`close` sets the stop event."""
        assert self._maintenance_interval_s is not None
        while not self._maintenance_stop.wait(self._maintenance_interval_s):
            self.maintenance_tick()

    def compact(self) -> int:
        """Force a fold of all append buffers; returns postings folded."""
        buffered = self.index.buffered_postings
        # Same marker-before-fold ordering as _maybe_compact.
        self._buffers_dirty_since = None
        with self._lock.read_locked():
            self.index.compact()
        if buffered:
            self._compactions += 1
        return buffered

    def snapshot(self, directory: str | Path, keep: int | None = None) -> dict:
        """Write a durable columnar snapshot under ``directory``.

        Taken under the *read* lock: concurrent queries keep serving
        while writes wait, and the snapshot captures exactly one
        generation — never a half-applied batch.  Append buffers are
        folded first so the persisted postings blobs are fully sorted
        columnar state.  The snapshot is published atomically (the
        ``CURRENT`` pointer flips only once the manifest is on disk) and
        its metadata is surfaced by :meth:`stats` until superseded.

        With ``keep`` set, superseded ``snapshot-*`` directories beyond
        the ``keep`` newest are garbage-collected after the publish
        (:func:`repro.core.persistence.prune_snapshots`); the pruning
        runs *off* the read lock — the just-published snapshot is
        already durable and the pointer never references a pruned
        directory.  Concurrent calls serialize on a snapshot mutex:
        interleaving one call's publish with another's prune could
        otherwise delete a snapshot between its directory rename and
        its ``CURRENT`` flip, leaving a dangling pointer.
        """
        if keep is not None and keep < 1:
            # Validate before any durable work, matching the up-front
            # validation rule the persistence layer follows.
            raise ValueError("keep must be positive")
        start = perf_counter()
        with self._snapshot_mutex:
            self._buffers_dirty_since = None
            with self._lock.read_locked():
                generation = self._generation
                self.index.compact()
                # The tag carries a wall-clock suffix so every publish
                # lands in a fresh directory: generations restart at 0
                # after a warm start, and overwriting the directory
                # CURRENT points at would reopen the torn-snapshot
                # window the pointer flip exists to close.
                tag = f"g{generation:08d}-{time.time_ns():x}"
                target = publish_snapshot(self.index, directory, tag=tag)
                trajectories = len(self.index)
            pruned_snapshots: list[Path] = []
            if keep is not None:
                pruned_snapshots = prune_snapshots(directory, keep)
            # Re-point a snapshot-serving transport (worker processes)
            # at the fresh publish so process-served queries see this
            # generation's postings.  Runs inside the snapshot mutex but
            # off the read lock: workers attach mmap-lazily, so this is
            # a handful of small socket round-trips.
            if self.executor is not None:
                refresh = self.executor.refresh_snapshot(target)
                if refresh.get("refreshed"):
                    # Queries answered between the last publish and this
                    # one were computed from the workers' *previous*
                    # snapshot — correct for what the workers could see,
                    # but lagging writes the coordinator had already
                    # accepted.  Those answers were cached under the
                    # current generation, so the generation check alone
                    # would keep serving them; drop them so the next
                    # probe recomputes against the refreshed workers.
                    self.result_cache.invalidate_all()
        info = {
            "path": str(target),
            "generation": generation,
            "trajectories": trajectories,
            "at": time.time(),
            "duration_s": round(perf_counter() - start, 6),
            "pruned_snapshots": len(pruned_snapshots),
        }
        self._last_snapshot = info
        return info

    def _check_spec(self, spec: QuerySpec) -> str:
        """Validate a spec against the served index, up front.

        Rejects exact specs on a points-less index and unregistered
        variant names (:class:`~repro.core.registry.UnknownVariant`,
        mapped to a structured 400 by the HTTP layer) before any
        fingerprinting or fan-out happens.  Returns the *resolved*
        variant name (``auto`` becomes a concrete registered variant).
        """
        if spec.is_exact and not getattr(self.index, "store_points", False):
            raise ExactSearchUnsupported(
                "exact queries need stored trajectories; this index was "
                "built (or warm-started from a snapshot) with "
                "store_points=False"
            )
        return self.index.resolve_variant(spec.variant)

    def _count_variant_query(self, variant: str, count: int = 1) -> None:
        """Bump the per-variant served-query counter."""
        with self._variant_queries_lock:
            self._variant_queries[variant] = (
                self._variant_queries.get(variant, 0) + count
            )

    def _execute(self, prepared, spec, query_points, trace=NO_TRACE):
        """One backend-agnostic execution of a prepared query.

        The trailing element is the planner quartet ``(terms_skipped,
        postings_skipped, postings_bytes_avoided, collection_cut)`` —
        all zeros when the query ran exhaustively.
        """
        if self.executor is not None:
            results, stats = self.executor.execute_prepared(
                prepared, trace=trace, spec=spec, query_points=query_points
            )
            return (
                tuple(results),
                stats.candidates,
                stats.shards_contacted,
                stats.pruned,
                stats.fanout_width,
                stats.batch_size,
                stats.degraded,
                (
                    stats.terms_skipped,
                    stats.postings_skipped,
                    stats.postings_bytes_avoided,
                    stats.collection_cut,
                ),
            )
        results, fanout = self.index.query_prepared(
            prepared, trace=trace, spec=spec, query_points=query_points
        )
        return (
            tuple(results),
            fanout.candidates,
            fanout.shards_contacted,
            fanout.pruned,
            1,
            1,
            False,
            (
                fanout.terms_skipped,
                fanout.postings_skipped,
                fanout.postings_bytes_avoided,
                fanout.collection_cut,
            ),
        )

    # ------------------------------------------------------------------
    # Tracing plumbing
    # ------------------------------------------------------------------

    def _open_trace(self, detail: bool) -> Trace | None:
        """A trace for one request, or ``None`` when nothing wants one.

        Detail is kept when the caller asked (``?trace=1``) or the
        request won the ``trace_sample`` lottery; otherwise — while
        metrics are enabled — a stage-accounting-only trace feeds the
        per-stage histograms.  With metrics disabled and no detail
        wanted, instrumentation collapses to ``NO_TRACE``.
        """
        if detail:
            return Trace(detail=True)
        if self._trace_sample > 0.0 and random.random() < self._trace_sample:
            return Trace(detail=True)
        if self.metrics.enabled:
            return Trace(detail=False)
        return None

    def _finish_trace(
        self,
        tracer: Trace | None,
        attach: bool,
        latency_s: float,
        entry: dict,
    ) -> dict | None:
        """Close out one request's trace.

        Emits sampled detail traces through
        :data:`~repro.service.tracing.trace_logger` as JSON lines and
        records the slow-query log when the request is over threshold.
        Returns the span tree to attach to the response (explicitly
        requested detail only).  Stage histograms are fed by the
        caller's fused ``record_request``/``record_request_batch`` call,
        not here.
        """
        payload = None
        if tracer is not None:
            if tracer.detail:
                tree = tracer.as_dict()
                if attach:
                    payload = tree
                else:
                    trace_logger.info(json.dumps(tree, sort_keys=True))
        if self.slow_log is not None and self.slow_log.should_record(latency_s):
            if tracer is not None:
                entry["trace_id"] = tracer.trace_id
            entry["latency_ms"] = round(latency_s * 1000.0, 3)
            self.slow_log.record(entry)
        return payload

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, trajectory_id: Hashable) -> bool:
        with self._lock.read_locked():
            return trajectory_id in self.index

    def stats(self) -> dict:
        """The ``GET /stats`` payload: index shape + service vitals."""
        with self._lock.read_locked():
            generation = self._generation
            index_stats = self.index.describe()
        result_stats = self.result_cache.stats()
        fingerprint_stats = self.fingerprint_cache.stats()
        with self._variant_queries_lock:
            variant_queries = dict(self._variant_queries)
        return {
            "generation": generation,
            "index": index_stats,
            "variants": {
                "registered": self.index.registry.describe(),
                "queries": variant_queries,
            },
            "snapshot": self._last_snapshot,
            "compaction": {
                "enabled": self._compaction is not None,
                "runs": self._compactions,
                "buffered_postings": self.index.buffered_postings,
            },
            "maintenance": {
                "enabled": self._maintenance_thread is not None,
                "interval_s": self._maintenance_interval_s,
                "ticks": self._maintenance_ticks,
            },
            "metrics": self.metrics.snapshot().as_dict(),
            "executor": self._executor_stats(),
            "slowlog": (
                None if self.slow_log is None else self.slow_log.as_dict()
            ),
            "result_cache": {
                "size": result_stats.size,
                "capacity": result_stats.capacity,
                "hits": result_stats.hits,
                "misses": result_stats.misses,
                "evictions": result_stats.evictions,
                "invalidations": result_stats.invalidations,
                "hit_rate": round(result_stats.hit_rate, 4),
            },
            "fingerprint_cache": {
                "size": fingerprint_stats.size,
                "capacity": fingerprint_stats.capacity,
                "hit_rate": round(fingerprint_stats.hit_rate, 4),
            },
        }

    def _executor_stats(self) -> dict | None:
        """Executor vitals for ``/stats``: pool shape + fan-out balance."""
        if self.executor is None:
            return None
        contacts = self.executor.shard_contact_counts()
        payload: dict = {
            "pool_size": self.executor.pool_size,
            "batch_window_s": self.executor.batch_window_s,
            "shard_timeout_s": self.executor.shard_timeout_s,
            "hedge_after_s": self.executor.hedge_after_s,
            "shard_contacts": {
                str(shard): count for shard, count in sorted(contacts.items())
            },
            "faults": self.executor.fault_counts(),
            "transport": self.executor.transport_stats(),
        }
        if contacts:
            payload["contact_balance"] = request_balance(contacts).as_dict()
        return payload

    def metrics_text(self) -> str:
        """The ``GET /metrics`` payload: Prometheus text exposition.

        Counter and histogram families come from the metrics registry;
        the service contributes point-in-time gauges (index size,
        generation, buffered postings, cache occupancy).
        """
        with self._lock.read_locked():
            generation = self._generation
            trajectories = len(self.index)
            buffered = self.index.buffered_postings
            variant_shapes = self.index.variant_shapes()
        result_stats = self.result_cache.stats()
        with self._variant_queries_lock:
            variant_queries = dict(self._variant_queries)
        gauges = {
            "generation": generation,
            "trajectories": trajectories,
            "buffered_postings": buffered,
            "result_cache_entries": result_stats.size,
        }
        extra_counters: dict[str, tuple[str, int]] | None = None
        if self.executor is not None:
            contacts = self.executor.shard_contact_counts()
            faults = self.executor.fault_counts()
            transport = self.executor.transport_stats()
            extra_counters = {
                "geodabs_shard_transport_requests_total": (
                    f"Shard contacts through the "
                    f"{transport.get('kind', 'unknown')} transport.",
                    sum(contacts.values()),
                ),
                "geodabs_shard_transport_errors_total": (
                    "Shard contacts that failed at the transport layer "
                    "(failovers + final failures).",
                    faults["failovers"] + faults["failed_contacts"],
                ),
                "geodabs_hedged_shard_contacts_total": (
                    "Duplicate shard contacts sent because the primary "
                    "straggled past the hedge threshold.",
                    faults["hedges"],
                ),
                "geodabs_failed_shard_contacts_total": (
                    "Planned shards that contributed nothing "
                    "(all attempts failed or timed out).",
                    faults["failed_contacts"],
                ),
            }
            if "respawns" in transport:
                extra_counters["geodabs_worker_respawns_total"] = (
                    "Worker processes respawned by transport maintenance.",
                    transport["respawns"],
                )
        labeled = {
            "geodabs_variant_terms": (
                "Distinct terms per registered fingerprint variant.",
                "gauge",
                {
                    f'variant="{name}"': shape["terms"]
                    for name, shape in variant_shapes.items()
                },
            ),
            "geodabs_variant_postings": (
                "Postings entries per registered fingerprint variant.",
                "gauge",
                {
                    f'variant="{name}"': shape["postings"]
                    for name, shape in variant_shapes.items()
                },
            ),
            "geodabs_variant_queries_total": (
                "Queries served per resolved fingerprint variant.",
                "counter",
                {
                    f'variant="{name}"': count
                    for name, count in sorted(variant_queries.items())
                },
            ),
        }
        return prometheus_text(
            self.metrics.export(), gauges, extra_counters, labeled
        )

    def close(self) -> None:
        """Stop the maintenance daemon and release executor resources."""
        self._maintenance_stop.set()
        if self._maintenance_thread is not None:
            self._maintenance_thread.join(timeout=5.0)
            self._maintenance_thread = None
        if self.executor is not None:
            self.executor.close()
