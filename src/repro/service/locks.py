"""A writer-preferring reader/writer lock for the serving tier.

Queries are read-heavy and must never observe a half-applied write, so
the :class:`IndexService` wraps every index operation in this lock: any
number of queries share the index concurrently, writers get exclusive
access, and arriving writers block *new* readers so a steady query
stream cannot starve ingest.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Many concurrent readers, one exclusive writer, writer priority."""

    __slots__ = ("_cond", "_readers", "_writer_active", "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave the read side, waking writers once the last reader exits."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` — scoped shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until exclusive, announcing intent so readers queue up."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Leave the write side and wake everyone."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` — scoped exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
