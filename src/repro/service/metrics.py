"""Service-level observability: counters, latency histograms, exposition.

A single :class:`ServiceMetrics` registry is threaded through the
:class:`~repro.service.service.IndexService`, surfaced as JSON by
``GET /stats`` and as Prometheus text exposition by ``GET /metrics``.

Latencies are kept in :class:`LatencyHistogram` instances — fixed
log-scale bucket boundaries shared by every histogram in the registry,
so recording is O(1) (one bisect into ~40 boundaries, three scalar
adds), histograms merge by adding counts, and quantiles are exact
*bucket* quantiles: the reported pN is the upper boundary of the bucket
holding the nearest-rank observation, so its relative error is bounded
by one bucket's width (a factor of √2 with the default boundaries) and
reading it never sorts anything.  This replaces the earlier bounded
reservoir, whose ``snapshot()`` re-sorted up to 4096 observations under
the registry lock on every ``/stats`` call.

The registry keeps one whole-request histogram (the headline
p50/p95/p99), one histogram per HTTP endpoint, one per query pipeline
stage (``prepare`` / ``fanout`` / ``merge`` / ``rank`` / ``rerank``),
request
counters by endpoint and status class, and the qps sliding window.
Every recording method takes one lock for a handful of scalar updates;
``enabled=False`` turns each into an immediate return so benchmarks can
measure the instrumentation-off baseline.

:class:`SlowQueryLog` is the diagnosis side-channel: a bounded ring of
structured entries for queries over a latency threshold, surfaced by
``GET /admin/slowlog`` and mirrored as JSON lines through the
``repro.service.slowlog`` logger.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = [
    "DEFAULT_BOUNDARIES_S",
    "LatencyHistogram",
    "MetricsSnapshot",
    "ServiceMetrics",
    "SlowQueryLog",
    "percentile",
    "prometheus_text",
]

#: Default histogram bucket upper boundaries, in seconds: 50 µs doubling
#: every other bucket (factor √2) out to ~36 s, 40 finite buckets plus
#: the implicit overflow.  Wide enough for a stalled request, fine
#: enough that a bucket-boundary quantile is within √2 of the truth.
DEFAULT_BOUNDARIES_S: tuple[float, ...] = tuple(
    5e-5 * (2.0 ** (i / 2.0)) for i in range(40)
)


def percentile(values: list[float], q: float) -> float:
    """The ``q``-quantile (0 < q <= 1) of ``values`` by nearest-rank.

    Retained as the exact oracle the histogram tests compare against
    (and for ad-hoc use); the serving path no longer calls it.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class LatencyHistogram:
    """Fixed-boundary latency histogram: O(1) record, mergeable.

    ``boundaries`` are upper bucket bounds in seconds, strictly
    increasing; observations above the last boundary land in an
    overflow bucket.  Not thread-safe on its own — callers (the
    registry) serialize access.
    """

    __slots__ = ("boundaries", "counts", "total", "sum_s")

    def __init__(
        self, boundaries: tuple[float, ...] = DEFAULT_BOUNDARIES_S
    ) -> None:
        self.boundaries = boundaries
        self.counts = [0] * (len(boundaries) + 1)
        self.total = 0
        self.sum_s = 0.0

    def record(self, value_s: float) -> None:
        """Account one observation (one bisect, three adds).

        Boundaries are *inclusive* upper bounds (Prometheus ``le``
        semantics): an observation equal to a boundary counts in that
        boundary's bucket.
        """
        self.counts[bisect_left(self.boundaries, value_s)] += 1
        self.total += 1
        self.sum_s += value_s

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram with identical boundaries into this one."""
        if other.boundaries != self.boundaries:
            raise ValueError("cannot merge histograms with different boundaries")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum_s += other.sum_s

    def quantile(self, q: float) -> float:
        """Upper boundary of the bucket holding the nearest-rank value.

        Exact-bucket quantile: never below the true nearest-rank value,
        above it by at most one bucket width.  The overflow bucket
        reports the last finite boundary (the histogram's ceiling).
        """
        if self.total == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.total))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(self.boundaries):
                    return self.boundaries[index]
                return self.boundaries[-1]
        return self.boundaries[-1]

    @property
    def mean_s(self) -> float:
        """Mean observed value (exact — the sum is tracked exactly)."""
        if self.total == 0:
            return 0.0
        return self.sum_s / self.total

    def state(self) -> tuple[tuple[int, ...], int, float]:
        """Immutable ``(counts, total, sum_s)`` reading (for exposition)."""
        return tuple(self.counts), self.total, self.sum_s

    def summary_ms(self) -> dict[str, float | int]:
        """JSON-ready quantile summary in milliseconds."""
        return {
            "count": self.total,
            "mean_ms": round(self.mean_s * 1000.0, 3),
            "p50_ms": round(self.quantile(0.50) * 1000.0, 3),
            "p95_ms": round(self.quantile(0.95) * 1000.0, 3),
            "p99_ms": round(self.quantile(0.99) * 1000.0, 3),
        }


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """One consistent reading of the registry.

    The scalar fields keep their historical meanings (the ``/stats``
    payload is backward compatible); ``stages`` and ``endpoints`` carry
    the per-stage and per-endpoint histogram summaries, and
    ``status_counts`` the request counts by endpoint and status class.
    """

    queries: int
    ingested: int
    deleted: int
    errors: int
    qps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    mean_fanout_width: float
    mean_batch_size: float
    pruned_candidates: int = 0
    degraded_queries: int = 0
    requests_shed: int = 0
    planner: dict[str, int] = field(default_factory=dict)
    stages: dict[str, dict] = field(default_factory=dict)
    endpoints: dict[str, dict] = field(default_factory=dict)
    status_counts: dict[str, dict[str, int]] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``/stats`` payload)."""
        return {
            "queries": self.queries,
            "ingested": self.ingested,
            "deleted": self.deleted,
            "errors": self.errors,
            "qps": round(self.qps, 3),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "mean_fanout_width": round(self.mean_fanout_width, 3),
            "mean_batch_size": round(self.mean_batch_size, 3),
            "pruned_candidates": self.pruned_candidates,
            "degraded_queries": self.degraded_queries,
            "requests_shed": self.requests_shed,
            "planner": self.planner,
            "stages": self.stages,
            "endpoints": self.endpoints,
            "status_counts": self.status_counts,
        }


def _status_class(status: int) -> str:
    """``200 -> "2xx"`` — the label granularity of the error counters."""
    return f"{status // 100}xx"


class ServiceMetrics:
    """Thread-safe registry of the serving tier's vital signs.

    Latency state lives in :class:`LatencyHistogram` buckets — one for
    whole requests, one per endpoint, one per pipeline stage — so both
    recording *and* snapshotting are O(buckets) under the lock; nothing
    is ever sorted.  ``enabled=False`` short-circuits every recorder
    for an instrumentation-off baseline.
    """

    def __init__(
        self,
        qps_window_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        enabled: bool = True,
        boundaries: tuple[float, ...] = DEFAULT_BOUNDARIES_S,
    ) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._clock = clock
        self._started = clock()
        self._qps_window_s = qps_window_s
        self._boundaries = boundaries
        self._latency = LatencyHistogram(boundaries)
        self._stage_hists: dict[str, LatencyHistogram] = {}
        self._endpoint_hists: dict[str, LatencyHistogram] = {}
        self._status_counts: dict[tuple[str, str], int] = {}
        self._query_times: deque[float] = deque()
        self._fanout_width_sum = 0
        self._fanout_width_n = 0
        self._batch_size_sum = 0
        self._batch_size_n = 0
        self._queries = 0
        self._ingested = 0
        self._deleted = 0
        self._errors = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._pruned_candidates = 0
        self._degraded_queries = 0
        self._requests_shed = 0
        # Query-planner work accounting (bounded candidate collection).
        self._planner_terms_skipped = 0
        self._planner_postings_skipped = 0
        self._planner_postings_bytes_avoided = 0
        self._planner_collection_cuts = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_query(
        self,
        latency_s: float,
        cached: bool,
        fanout_width: int = 0,
        batch_size: int = 1,
        pruned: int = 0,
        degraded: bool = False,
        planner: tuple[int, int, int, bool] | None = None,
    ) -> None:
        """Account one served query.

        ``pruned`` is the scoring engine's candidate-prune count for the
        execution; cache hits pass 0 (no scoring work was performed).
        ``degraded`` flags answers a failed shard left incomplete.
        ``planner`` is the query planner's ``(terms_skipped,
        postings_skipped, postings_bytes_avoided, collection_cut)``
        accounting when bounded collection ran; cache hits pass none.
        """
        if not self.enabled:
            return
        now = self._clock()
        with self._lock:
            self._record_query_locked(
                now, latency_s, cached, fanout_width, batch_size, pruned,
                degraded, planner,
            )

    def record_stages(self, stage_seconds: dict[str, float]) -> None:
        """Fold one query's per-stage durations into the stage histograms."""
        if not self.enabled or not stage_seconds:
            return
        with self._lock:
            self._record_stages_locked(stage_seconds)

    def record_request(
        self,
        latency_s: float,
        cached: bool,
        fanout_width: int = 0,
        batch_size: int = 1,
        pruned: int = 0,
        degraded: bool = False,
        stage_seconds: dict[str, float] | None = None,
        planner: tuple[int, int, int, bool] | None = None,
    ) -> None:
        """One query *and* its stage split under a single lock round-trip.

        Semantically ``record_query`` followed by ``record_stages``;
        the serving hot path uses this fused form so instrumentation
        costs one clock read and one lock acquisition per request.
        """
        if not self.enabled:
            return
        now = self._clock()
        with self._lock:
            self._record_query_locked(
                now, latency_s, cached, fanout_width, batch_size, pruned,
                degraded, planner,
            )
            if stage_seconds:
                self._record_stages_locked(stage_seconds)

    def record_request_batch(
        self,
        outcomes: list[tuple],
        stage_seconds: dict[str, float] | None = None,
    ) -> None:
        """A burst's worth of queries under one lock round-trip.

        ``outcomes`` holds one ``(latency_s, cached, fanout_width,
        batch_size, pruned, degraded)`` tuple per query — optionally
        extended with a seventh ``planner`` quartet (see
        :meth:`record_query`); ``stage_seconds`` is the burst's shared
        stage split, recorded once.
        """
        if not self.enabled or not outcomes:
            return
        now = self._clock()
        with self._lock:
            for outcome in outcomes:
                latency_s, cached, fanout_width, batch_size, pruned, degraded = (
                    outcome[:6]
                )
                planner = outcome[6] if len(outcome) > 6 else None
                self._record_query_locked(
                    now, latency_s, cached, fanout_width, batch_size, pruned,
                    degraded, planner,
                )
            if stage_seconds:
                self._record_stages_locked(stage_seconds)

    def _record_query_locked(
        self,
        now: float,
        latency_s: float,
        cached: bool,
        fanout_width: int,
        batch_size: int,
        pruned: int,
        degraded: bool = False,
        planner: tuple[int, int, int, bool] | None = None,
    ) -> None:
        self._queries += 1
        # Inlined LatencyHistogram.record: this runs once per query on
        # the serving hot path, where the extra method call shows up.
        hist = self._latency
        hist.counts[bisect_left(hist.boundaries, latency_s)] += 1
        hist.total += 1
        hist.sum_s += latency_s
        times = self._query_times
        times.append(now)
        if times[0] < now - self._qps_window_s:
            self._prune(now)
        if cached:
            self._cache_hits += 1
        else:
            self._cache_misses += 1
            self._fanout_width_sum += fanout_width
            self._fanout_width_n += 1
            self._batch_size_sum += batch_size
            self._batch_size_n += 1
            self._pruned_candidates += pruned
            if degraded:
                self._degraded_queries += 1
            if planner is not None:
                self._planner_terms_skipped += planner[0]
                self._planner_postings_skipped += planner[1]
                self._planner_postings_bytes_avoided += planner[2]
                if planner[3]:
                    self._planner_collection_cuts += 1

    def _record_stages_locked(self, stage_seconds: dict[str, float]) -> None:
        hists = self._stage_hists
        for name, seconds in stage_seconds.items():
            hist = hists.get(name)
            if hist is None:
                hist = hists[name] = LatencyHistogram(self._boundaries)
            # Inlined LatencyHistogram.record (hot path, see above).
            hist.counts[bisect_left(hist.boundaries, seconds)] += 1
            hist.total += 1
            hist.sum_s += seconds

    def record_http(self, endpoint: str, status: int, latency_s: float) -> None:
        """Account one HTTP request against its endpoint histogram."""
        if not self.enabled:
            return
        key = (endpoint, _status_class(status))
        with self._lock:
            hist = self._endpoint_hists.get(endpoint)
            if hist is None:
                hist = self._endpoint_hists[endpoint] = LatencyHistogram(
                    self._boundaries
                )
            hist.record(latency_s)
            self._status_counts[key] = self._status_counts.get(key, 0) + 1

    def record_ingest(self, count: int) -> None:
        """Account an ingest of ``count`` trajectories."""
        if not self.enabled:
            return
        with self._lock:
            self._ingested += count

    def record_delete(self) -> None:
        """Account one deletion."""
        if not self.enabled:
            return
        with self._lock:
            self._deleted += 1

    def record_error(self) -> None:
        """Account one failed request."""
        if not self.enabled:
            return
        with self._lock:
            self._errors += 1

    def record_shed(self) -> None:
        """Account one request shed by admission control (HTTP 429)."""
        if not self.enabled:
            return
        with self._lock:
            self._requests_shed += 1

    def _prune(self, now: float) -> None:
        horizon = now - self._qps_window_s
        while self._query_times and self._query_times[0] < horizon:
            self._query_times.popleft()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """A consistent reading of every gauge, counter, and histogram.

        O(histograms x buckets) under the lock — no sorting, no copies
        of raw observations (there are none to copy).
        """
        now = self._clock()
        with self._lock:
            self._prune(now)
            # Early in the service's life the sliding window is mostly
            # empty; dividing by the elapsed time keeps qps honest.
            window = min(self._qps_window_s, max(now - self._started, 1e-9))
            lookups = self._cache_hits + self._cache_misses
            stages = {
                name: hist.summary_ms()
                for name, hist in sorted(self._stage_hists.items())
            }
            endpoints = {
                name: hist.summary_ms()
                for name, hist in sorted(self._endpoint_hists.items())
            }
            status_counts: dict[str, dict[str, int]] = {}
            for (endpoint, klass), count in sorted(self._status_counts.items()):
                status_counts.setdefault(endpoint, {})[klass] = count
            return MetricsSnapshot(
                queries=self._queries,
                ingested=self._ingested,
                deleted=self._deleted,
                errors=self._errors,
                qps=len(self._query_times) / window,
                latency_p50_ms=self._latency.quantile(0.50) * 1000.0,
                latency_p95_ms=self._latency.quantile(0.95) * 1000.0,
                latency_p99_ms=self._latency.quantile(0.99) * 1000.0,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                cache_hit_rate=self._cache_hits / lookups if lookups else 0.0,
                mean_fanout_width=(
                    self._fanout_width_sum / self._fanout_width_n
                    if self._fanout_width_n
                    else 0.0
                ),
                mean_batch_size=(
                    self._batch_size_sum / self._batch_size_n
                    if self._batch_size_n
                    else 0.0
                ),
                pruned_candidates=self._pruned_candidates,
                degraded_queries=self._degraded_queries,
                requests_shed=self._requests_shed,
                planner={
                    "terms_skipped": self._planner_terms_skipped,
                    "postings_skipped": self._planner_postings_skipped,
                    "postings_bytes_avoided": (
                        self._planner_postings_bytes_avoided
                    ),
                    "collection_cuts": self._planner_collection_cuts,
                },
                stages=stages,
                endpoints=endpoints,
                status_counts=status_counts,
            )

    def export(self) -> dict:
        """Raw state for exposition: counters plus histogram buckets.

        One consistent reading under the lock; the Prometheus renderer
        (:func:`prometheus_text`) is a pure function over this.
        """
        with self._lock:
            return {
                "boundaries": self._boundaries,
                "counters": {
                    "queries": self._queries,
                    "ingested": self._ingested,
                    "deleted": self._deleted,
                    "errors": self._errors,
                    "cache_hits": self._cache_hits,
                    "cache_misses": self._cache_misses,
                    "pruned_candidates": self._pruned_candidates,
                    "degraded_queries": self._degraded_queries,
                    "requests_shed": self._requests_shed,
                    "planner_terms_skipped": self._planner_terms_skipped,
                    "planner_postings_skipped": self._planner_postings_skipped,
                    "planner_postings_bytes_avoided": (
                        self._planner_postings_bytes_avoided
                    ),
                    "planner_collection_cuts": self._planner_collection_cuts,
                },
                "request_latency": self._latency.state(),
                "stages": {
                    name: hist.state()
                    for name, hist in sorted(self._stage_hists.items())
                },
                "endpoints": {
                    name: hist.state()
                    for name, hist in sorted(self._endpoint_hists.items())
                },
                "status_counts": dict(sorted(self._status_counts.items())),
            }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _histogram_lines(
    name: str,
    labels: str,
    boundaries: tuple[float, ...],
    state: tuple[tuple[int, ...], int, float],
) -> Iterable[str]:
    """``_bucket``/``_sum``/``_count`` series for one histogram."""
    counts, total, sum_s = state
    comma = "," if labels else ""
    cumulative = 0
    for boundary, count in zip(boundaries, counts):
        cumulative += count
        yield (
            f'{name}_bucket{{{labels}{comma}le="{boundary:.6g}"}} {cumulative}'
        )
    yield f'{name}_bucket{{{labels}{comma}le="+Inf"}} {total}'
    if labels:
        yield f"{name}_sum{{{labels}}} {sum_s:.9g}"
        yield f"{name}_count{{{labels}}} {total}"
    else:
        yield f"{name}_sum {sum_s:.9g}"
        yield f"{name}_count {total}"


def prometheus_text(
    export: dict,
    gauges: dict[str, float | int] | None = None,
    extra_counters: dict[str, tuple[str, int]] | None = None,
    labeled: (
        dict[str, tuple[str, str, dict[str, float | int]]] | None
    ) = None,
) -> str:
    """Render a registry export as Prometheus text exposition (v0.0.4).

    ``export`` is :meth:`ServiceMetrics.export`; ``gauges`` are extra
    point-in-time values (index size, generation, cache occupancy) the
    service contributes, and ``extra_counters`` maps full metric names
    to ``(help, value)`` for counters owned outside the registry (the
    executor's hedge/failover counts, the transport's request/respawn
    counts).  ``labeled`` maps full metric names to ``(help, type,
    {label_string: value})`` for families with one sample per label set
    (the per-variant term/postings/query series) — one ``HELP``/``TYPE``
    pair, then a sample per label string (e.g. ``variant="dense"``).
    Metric names follow Prometheus conventions: base units (seconds),
    ``_total`` on counters, one ``# HELP``/``# TYPE`` pair per family.
    """
    boundaries = export["boundaries"]
    counters = export["counters"]
    lines: list[str] = []

    counter_help = {
        "queries": "Queries served (cache hits included).",
        "ingested": "Trajectories ingested.",
        "deleted": "Trajectories deleted.",
        "errors": "Requests that failed.",
        "cache_hits": "Result-cache hits.",
        "cache_misses": "Result-cache misses.",
        "pruned_candidates": "Candidates pruned before scoring.",
        "degraded_queries": "Queries answered without a failed shard's partial.",
        "requests_shed": "Requests shed by admission control (HTTP 429).",
        "planner_terms_skipped": (
            "Query terms the planner never opened (absent or cut)."
        ),
        "planner_postings_skipped": (
            "Postings entries skipped by the planner's completion phase."
        ),
        "planner_postings_bytes_avoided": (
            "Bytes of postings the planner avoided reading."
        ),
        "planner_collection_cuts": (
            "Queries whose candidate collection stopped early."
        ),
    }
    for key, help_text in counter_help.items():
        name = f"geodabs_{key}_total"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {counters.get(key, 0)}")

    for name, (help_text, value) in (extra_counters or {}).items():
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")

    name = "geodabs_http_requests_total"
    lines.append(f"# HELP {name} HTTP requests by endpoint and status class.")
    lines.append(f"# TYPE {name} counter")
    for (endpoint, klass), count in export["status_counts"].items():
        lines.append(
            f'{name}{{endpoint="{endpoint}",status="{klass}"}} {count}'
        )

    name = "geodabs_request_latency_seconds"
    lines.append(f"# HELP {name} Whole-request latency by endpoint.")
    lines.append(f"# TYPE {name} histogram")
    lines.extend(
        _histogram_lines(name, "", boundaries, export["request_latency"])
    )
    for endpoint, state in export["endpoints"].items():
        lines.extend(
            _histogram_lines(
                name, f'endpoint="{endpoint}"', boundaries, state
            )
        )

    name = "geodabs_stage_latency_seconds"
    lines.append(
        f"# HELP {name} Query pipeline stage latency "
        "(prepare/fanout/merge/rank/rerank)."
    )
    lines.append(f"# TYPE {name} histogram")
    for stage, state in export["stages"].items():
        lines.extend(
            _histogram_lines(name, f'stage="{stage}"', boundaries, state)
        )

    for key, value in (gauges or {}).items():
        name = f"geodabs_{key}"
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value}")

    for name, (help_text, kind, samples) in (labeled or {}).items():
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for label_string, value in samples.items():
            lines.append(f"{name}{{{label_string}}} {value}")

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------

#: Structured slow-query lines go through this logger as single-line
#: JSON; attach a handler (or enable ``--access-log``-style stderr
#: logging) to ship them somewhere.
slowlog_logger = logging.getLogger("repro.service.slowlog")


class SlowQueryLog:
    """Bounded ring of structured entries for over-threshold queries.

    ``record`` stamps, stores, and mirrors the entry through
    :data:`slowlog_logger` as one JSON line; ``GET /admin/slowlog``
    serves :meth:`as_dict`.  Thread-safe; most recent entries win.
    """

    def __init__(
        self,
        threshold_ms: float,
        capacity: int = 128,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be non-negative")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._recorded = 0

    def should_record(self, latency_s: float) -> bool:
        """Whether a request of this latency belongs in the log."""
        return latency_s * 1000.0 >= self.threshold_ms

    def record(self, entry: dict) -> None:
        """Store one entry (stamped with wall time) and log it as JSON."""
        stamped = {"at": self._clock(), **entry}
        with self._lock:
            self._entries.append(stamped)
            self._recorded += 1
        slowlog_logger.warning(json.dumps(stamped, sort_keys=True))

    def entries(self) -> list[dict]:
        """Newest-last copy of the retained entries."""
        with self._lock:
            return list(self._entries)

    def as_dict(self) -> dict:
        """The ``GET /admin/slowlog`` payload."""
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "capacity": self.capacity,
                "recorded": self._recorded,
                "entries": list(self._entries),
            }
