"""Service-level observability: qps, latency quantiles, cache hit rate.

A single :class:`ServiceMetrics` registry is threaded through the
:class:`~repro.service.service.IndexService` and surfaced verbatim by the
HTTP ``GET /stats`` endpoint.  Latencies are kept in a bounded reservoir
(most recent observations win), qps over a sliding window, and fan-out
widths as a running mean — all under one lock, since every operation is a
handful of deque appends.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["MetricsSnapshot", "ServiceMetrics", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """The ``q``-quantile (0 < q <= 1) of ``values`` by nearest-rank."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """One consistent reading of the registry."""

    queries: int
    ingested: int
    deleted: int
    errors: int
    qps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    mean_fanout_width: float
    mean_batch_size: float
    pruned_candidates: int = 0

    def as_dict(self) -> dict[str, float | int]:
        """JSON-ready representation (the ``/stats`` payload)."""
        return {
            "queries": self.queries,
            "ingested": self.ingested,
            "deleted": self.deleted,
            "errors": self.errors,
            "qps": round(self.qps, 3),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "mean_fanout_width": round(self.mean_fanout_width, 3),
            "mean_batch_size": round(self.mean_batch_size, 3),
            "pruned_candidates": self.pruned_candidates,
        }


class ServiceMetrics:
    """Thread-safe registry of the serving tier's vital signs."""

    def __init__(
        self,
        reservoir_size: int = 4096,
        qps_window_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._started = clock()
        self._qps_window_s = qps_window_s
        self._latencies: deque[float] = deque(maxlen=reservoir_size)
        self._query_times: deque[float] = deque()
        self._fanout_widths: deque[int] = deque(maxlen=reservoir_size)
        self._batch_sizes: deque[int] = deque(maxlen=reservoir_size)
        self._queries = 0
        self._ingested = 0
        self._deleted = 0
        self._errors = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._pruned_candidates = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_query(
        self,
        latency_s: float,
        cached: bool,
        fanout_width: int = 0,
        batch_size: int = 1,
        pruned: int = 0,
    ) -> None:
        """Account one served query.

        ``pruned`` is the scoring engine's candidate-prune count for the
        execution; cache hits pass 0 (no scoring work was performed).
        """
        now = self._clock()
        with self._lock:
            self._queries += 1
            self._latencies.append(latency_s)
            self._query_times.append(now)
            self._prune(now)
            if cached:
                self._cache_hits += 1
            else:
                self._cache_misses += 1
                self._fanout_widths.append(fanout_width)
                self._batch_sizes.append(batch_size)
                self._pruned_candidates += pruned

    def record_ingest(self, count: int) -> None:
        """Account an ingest of ``count`` trajectories."""
        with self._lock:
            self._ingested += count

    def record_delete(self) -> None:
        """Account one deletion."""
        with self._lock:
            self._deleted += 1

    def record_error(self) -> None:
        """Account one failed request."""
        with self._lock:
            self._errors += 1

    def _prune(self, now: float) -> None:
        horizon = now - self._qps_window_s
        while self._query_times and self._query_times[0] < horizon:
            self._query_times.popleft()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """A consistent reading of every gauge and counter."""
        now = self._clock()
        with self._lock:
            self._prune(now)
            # Early in the service's life the sliding window is mostly
            # empty; dividing by the elapsed time keeps qps honest.
            window = min(self._qps_window_s, max(now - self._started, 1e-9))
            latencies = list(self._latencies)
            lookups = self._cache_hits + self._cache_misses
            widths = list(self._fanout_widths)
            batches = list(self._batch_sizes)
            return MetricsSnapshot(
                queries=self._queries,
                ingested=self._ingested,
                deleted=self._deleted,
                errors=self._errors,
                qps=len(self._query_times) / window,
                latency_p50_ms=percentile(latencies, 0.50) * 1000.0,
                latency_p95_ms=percentile(latencies, 0.95) * 1000.0,
                latency_p99_ms=percentile(latencies, 0.99) * 1000.0,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                cache_hit_rate=self._cache_hits / lookups if lookups else 0.0,
                mean_fanout_width=sum(widths) / len(widths) if widths else 0.0,
                mean_batch_size=sum(batches) / len(batches) if batches else 0.0,
                pruned_candidates=self._pruned_candidates,
            )
