"""Concurrent shard fan-out over any index with the prepared-query surface.

The sequential path in ``query_prepared`` contacts shards one at a
time; under a serving workload each shard contact is an RPC, so a
query's latency is the *sum* of its shard round-trips.  The
:class:`QueryExecutor` fans the per-shard lookups out over a
``ThreadPoolExecutor`` so a query costs roughly the *slowest* shard
instead, and optionally micro-batches concurrent queries: queries that
arrive within a small window share one postings fetch per shard over the
union of their terms, so popular terms are read once per batch rather
than once per query.

Where a shard lookup actually executes is the transport's business
(:mod:`repro.service.transport`): the default
:class:`~repro.service.transport.InProcessTransport` calls straight
into the served index, while the worker-process transport sends the
same operation to a pool of snapshot-mmap worker processes — CPU-bound
shard work then runs outside the coordinator's GIL.  The executor's
scatter-gather is transport-fault aware: per-shard timeouts, a single
*hedged* retry for stragglers (``hedge_after_s``), and failover when a
backend dies mid-query — a failed shard drops out of the merge and the
result is flagged degraded (``ExecutionStats.failed_shards``) instead
of failing the request.

Both backends speak the same protocol — ``prepare_query`` /
``shard_partial`` / ``shard_postings`` / ``score_matches`` /
``fanout_stats`` — so the executor drives a
:class:`~repro.cluster.cluster.ShardedGeodabIndex` and a single-node
:class:`~repro.core.index.GeodabIndex` (one logical shard, where the
pool degenerates to a direct call) identically.  Merging and ranking
reuse ``score_matches`` verbatim, so pooled, batched, and sequential
execution return identical results (asserted by the test suite).

The in-process shard lookups here stand in for network RPCs; the
``rpc_latency_s`` knob injects a per-contact delay so benchmarks can
reproduce the latency-bound regime the paper's Section VI-E cluster
actually operates in.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..cluster.cluster import ShardedGeodabIndex
from ..core import planner as query_planner
from ..core.index import GeodabIndex, SearchResult
from ..core.planner import PlannerStats
from ..core.postings import EMPTY_HITS, merge_hits
from ..core.query import (
    NO_TRACE,
    MatchCounts,
    PreparedQuery,
    QuerySpec,
    TraceSink,
)
from ..core.registry import DEFAULT_VARIANT
from ..core.rerank import ExactSearchUnsupported, rerank_candidates
from ..core.scoring import ScoringStats
from ..geo.point import Trajectory
from .transport import InProcessTransport, ShardTransport, TransportError

__all__ = ["ExecutionStats", "QueryExecutor"]

#: Primary contact plus at most one retry (failover or hedge) per shard.
_MAX_ATTEMPTS = 2


@dataclass(frozen=True, slots=True)
class ExecutionStats:
    """How one query was executed by the serving tier.

    ``pruned`` carries the scoring engine's count: candidates cut by the
    minimum-overlap threshold before any distance was computed — plus,
    for exact queries, candidates the re-rank stage's bound test
    eliminated before any dynamic program ran.  ``stage_ms`` is the
    execution's stage split — ``(("fanout", ms), ("merge", ms),
    ("rank", ms))``, with a trailing ``("rerank", ms)`` for exact
    queries — populated whenever a real trace sink timed the execution,
    empty under :data:`~repro.core.query.NO_TRACE`.
    ``hedged`` counts shard contacts duplicated because the primary
    straggled; ``failed_shards`` counts planned shards that contributed
    nothing (every attempt failed or timed out) — when non-zero the
    results are :attr:`degraded`, not wrong: they rank whatever the
    surviving shards returned.

    The planner quartet (``terms_skipped`` / ``postings_skipped`` /
    ``postings_bytes_avoided`` / ``collection_cut``) carries the query
    planner's work accounting when bounded collection ran
    (:mod:`repro.core.planner`); all zeros on the exhaustive path.  A
    planned execution replaces the ``fanout``/``merge`` stages with one
    ``collect`` stage in ``stage_ms``.
    """

    query_terms: int
    shards_contacted: int
    nodes_contacted: int
    candidates: int
    fanout_width: int
    batch_size: int
    pooled: bool
    pruned: int = 0
    stage_ms: tuple[tuple[str, float], ...] = ()
    hedged: int = 0
    failed_shards: int = 0
    terms_skipped: int = 0
    postings_skipped: int = 0
    postings_bytes_avoided: int = 0
    collection_cut: bool = False

    @property
    def degraded(self) -> bool:
        """Whether any planned shard failed to contribute its partial."""
        return self.failed_shards > 0


#: One completed shard attempt, for trace detail: ``(shard_id, n_terms,
#: start_s, end_s, submit_s, attempt, meta)``.
_Span = tuple[int, int, float, float, float, int, dict]


class _Pending:
    """One query waiting inside a micro-batch window."""

    __slots__ = (
        "prepared",
        "limit",
        "max_distance",
        "trace",
        "spec",
        "query_points",
        "event",
        "results",
        "stats",
        "error",
    )

    def __init__(
        self,
        prepared: PreparedQuery,
        limit: int | None,
        max_distance: float,
        trace: TraceSink = NO_TRACE,
        spec: QuerySpec | None = None,
        query_points: Trajectory | None = None,
    ) -> None:
        self.prepared = prepared
        # The Jaccard tier's parameters: a spec supersedes the flat pair.
        if spec is not None:
            limit = spec.tier1_limit
            max_distance = spec.tier1_max_distance
        self.limit = limit
        self.max_distance = max_distance
        self.trace = trace
        self.spec = spec
        self.query_points = query_points
        self.event = threading.Event()
        self.results: list[SearchResult] | None = None
        self.stats: ExecutionStats | None = None
        self.error: BaseException | None = None


class _TransportSource:
    """Planner source that scatters df/open/complete ops per shard.

    The query planner's control loop (threshold, open order, cut) runs
    at the coordinator; this source keeps the postings where they live
    by grouping each of the planner's round trips along the prepared
    query's term→shard routing and scattering the per-shard calls
    through the executor's fault-aware machinery — so the running
    threshold is shared across shards by construction, and dfs arrive
    in one cheap scatter before any postings move (two-phase scatter).

    A shard that fails *both* attempts raises
    :class:`~repro.service.transport.TransportError`: a planned
    collection cannot drop a shard and stay bit-identical, so the
    caller falls back to the exhaustive scatter, which tolerates failed
    shards by degrading the result instead.
    """

    __slots__ = ("executor", "prepared", "shard_of", "hedged")

    def __init__(
        self, executor: "QueryExecutor", prepared: PreparedQuery
    ) -> None:
        self.executor = executor
        self.prepared = prepared
        self.shard_of = {
            term: shard_id
            for shard_id, shard_terms in prepared.plan.items()
            for term in shard_terms
        }
        self.hedged = 0

    def _scattered(
        self, terms: Sequence[int], call: Callable
    ) -> tuple[list[tuple[int, list[int]]], dict]:
        grouped: dict[int, list[int]] = {}
        for term in terms:
            grouped.setdefault(self.shard_of[term], []).append(term)
        plan = list(grouped.items())
        results, _, hedged, failed = self.executor._scatter(
            plan, call, NO_TRACE
        )
        if failed:
            raise TransportError(
                f"planned collection lost shards {sorted(failed)}"
            )
        self.hedged += len(hedged)
        return plan, results

    def term_counts(self, terms: Sequence[int]) -> np.ndarray:
        executor = self.executor
        variant = self.prepared.variant

        def call(shard_id, shard_terms, attempt, meta):
            return executor._contact_dfs(
                shard_id, shard_terms, attempt, meta, variant
            )

        plan, results = self._scattered(terms, call)
        count_of: dict[int, int] = {}
        for shard_id, shard_terms in plan:
            for term, count in zip(shard_terms, results[shard_id]):
                count_of[term] = int(count)
        return np.array([count_of[t] for t in terms], dtype=np.int64)

    def open_terms(self, terms: Sequence[int]) -> np.ndarray:
        executor = self.executor
        variant = self.prepared.variant

        def call(shard_id, shard_terms, attempt, meta):
            return executor._fetch_shard(
                shard_id, shard_terms, attempt, meta, variant
            )

        plan, results = self._scattered(terms, call)
        chunks: list[np.ndarray] = []
        for shard_id, _ in plan:
            for posting in results[shard_id].values():
                if len(posting):
                    chunks.append(posting)
        if not chunks:
            return EMPTY_HITS
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)

    def complete(
        self,
        terms: Sequence[int],
        candidates: np.ndarray,
        hi: int | None = None,
    ) -> tuple[np.ndarray, int]:
        executor = self.executor
        variant = self.prepared.variant

        def call(shard_id, shard_terms, attempt, meta):
            return executor._contact_complete(
                shard_id, shard_terms, candidates, attempt, meta, variant
            )

        plan, results = self._scattered(terms, call)
        delta = np.zeros(len(candidates), dtype=np.int64)
        skipped = 0
        for shard_id, _ in plan:
            part, part_skipped = results[shard_id]
            delta += part
            skipped += part_skipped
        return delta, skipped


class QueryExecutor:
    """Drives an index's shards from a worker pool, through a transport.

    ``pool_size=0`` disables the pool (sequential shard loop, still one
    simulated RPC per shard) — the baseline the throughput benchmark
    compares against.  ``batch_window_s > 0`` enables micro-batching:
    the first query to arrive becomes the batch leader, waits out the
    window collecting followers, and executes one shared fan-out.

    ``transport`` defaults to the in-process one; the executor takes
    ownership either way (``close()`` closes it).  ``shard_timeout_s``
    bounds each shard's total wall time before it is written off as
    failed; ``hedge_after_s`` launches one duplicate contact when the
    primary hasn't answered by then.  Both apply on the pooled path
    (the sequential loop has nowhere to wait concurrently); sequential
    execution still does one failover retry on transport errors.
    """

    def __init__(
        self,
        index: ShardedGeodabIndex | GeodabIndex,
        pool_size: int = 8,
        rpc_latency_s: float = 0.0,
        batch_window_s: float = 0.0,
        transport: ShardTransport | None = None,
        shard_timeout_s: float | None = None,
        hedge_after_s: float | None = None,
    ) -> None:
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        if rpc_latency_s < 0:
            raise ValueError("rpc_latency_s must be non-negative")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if shard_timeout_s is not None and shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be positive")
        if hedge_after_s is not None and hedge_after_s < 0:
            raise ValueError("hedge_after_s must be non-negative")
        self.index = index
        self.pool_size = pool_size
        self.rpc_latency_s = rpc_latency_s
        self.batch_window_s = batch_window_s
        self.transport: ShardTransport = (
            transport if transport is not None else InProcessTransport(index)
        )
        self.shard_timeout_s = shard_timeout_s
        self.hedge_after_s = hedge_after_s
        self._pool = (
            ThreadPoolExecutor(
                max_workers=pool_size, thread_name_prefix="geodab-shard"
            )
            if pool_size
            else None
        )
        self._batch_lock = threading.Lock()
        self._batch: list[_Pending] = []
        self._leader_active = False
        # Lifetime shard-contact counts (observability: /stats surfaces
        # their balance).  Guarded by its own lock — contacts happen on
        # worker threads.  The fault counters share it: they are bumped
        # on the same code paths.
        self._contact_lock = threading.Lock()
        self._contact_counts: dict[int, int] = {}
        self._hedges = 0
        self._failovers = 0
        self._failed_contacts = 0

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def execute(
        self,
        points,
        limit: int | None = None,
        max_distance: float = 1.0,
        trace: TraceSink = NO_TRACE,
        *,
        spec: QuerySpec | None = None,
    ) -> tuple[list[SearchResult], ExecutionStats]:
        """Fingerprint, fan out, merge, rank (and re-rank when exact)."""
        prepare_start = trace.now()
        variant = spec.variant if spec is not None else DEFAULT_VARIANT
        prepared = self.index.prepare_query(points, variant)
        trace.stage("prepare", prepare_start, trace.now())
        return self.execute_prepared(
            prepared, limit, max_distance, trace, spec=spec, query_points=points
        )

    def execute_prepared(
        self,
        prepared: PreparedQuery,
        limit: int | None = None,
        max_distance: float = 1.0,
        trace: TraceSink = NO_TRACE,
        *,
        spec: QuerySpec | None = None,
        query_points: Trajectory | None = None,
    ) -> tuple[list[SearchResult], ExecutionStats]:
        """Execute an already-prepared query (cached fingerprints reuse).

        ``trace`` receives the stage timings (``fanout``/``merge``/
        ``rank``, plus per-shard detail spans when the sink keeps
        detail); the default null sink makes instrumentation free.

        When ``spec`` is given it supersedes ``limit``/``max_distance``;
        an exact-mode spec re-ranks the Jaccard tier's candidates with
        the exact metric over ``query_points`` (required) at the
        coordinator, spreading the dynamic programs over the worker
        pool and recording a ``rerank`` stage.
        """
        if spec is not None:
            self._check_exact(spec)
            limit = spec.tier1_limit
            max_distance = spec.tier1_max_distance
        if self.batch_window_s > 0:
            return self._execute_batched(
                prepared, limit, max_distance, trace, spec, query_points
            )
        if (
            spec is not None
            and spec.plan == "auto"
            and query_planner.plannable(limit, max_distance)
            and self._planner_capable()
        ):
            try:
                return self._execute_planned(
                    prepared, limit, max_distance, trace, spec, query_points
                )
            except TransportError:
                # A shard failed both attempts mid-plan: bit-identical
                # bounded collection is off the table, so fall through
                # to the exhaustive scatter, which degrades instead.
                pass
        matches, fanout_s, merge_s, hedged, failed = self._fanout_single(
            prepared, trace
        )
        rank_start = trace.now()
        results, scoring = self.index.rank_matches(
            prepared, matches, limit, max_distance
        )
        rank_end = trace.now()
        trace.stage("rank", rank_start, rank_end)
        rerank_s: float | None = None
        extra_pruned = 0
        if spec is not None and spec.is_exact:
            results, rerank_s, extra_pruned = self._rerank(
                results, spec, query_points, trace
            )
        return results, self._stats(
            prepared,
            matches,
            batch_size=1,
            scoring=scoring,
            stage_ms=self._stage_ms(
                trace, fanout_s, merge_s, rank_end - rank_start, rerank_s
            ),
            hedged=len(hedged),
            failed_shards=len(failed),
            extra_pruned=extra_pruned,
        )

    def execute_prepared_many(
        self,
        requests: Sequence[tuple],
        trace: TraceSink = NO_TRACE,
    ) -> list[tuple[list[SearchResult], ExecutionStats]]:
        """Execute a whole burst of prepared queries as one fan-out.

        The explicit-batch twin of the window-based micro-batching: the
        burst shares one postings fetch per shard over the union of its
        terms (fanned out over the worker pool when one is configured),
        and per-query partials are split back out at the coordinator.
        The batch query API calls this so ``n`` concurrent queries cost
        one shard contact each instead of ``n``.  The (single) ``trace``
        covers the whole burst: one ``fanout`` stage for the shared
        fetch, per-item ``merge``/``rank`` durations summing into the
        stage totals.

        Requests are ``(prepared, limit, max_distance)`` triples or
        ``(prepared, limit, max_distance, spec, query_points)`` — the
        extended form routes exact-mode specs through the per-item
        re-rank after ranking.
        """
        batch: list[_Pending] = []
        for request in requests:
            prepared, limit, max_distance = request[:3]
            spec = request[3] if len(request) > 3 else None
            query_points = request[4] if len(request) > 4 else None
            if spec is not None:
                self._check_exact(spec)
            batch.append(
                _Pending(prepared, limit, max_distance, trace, spec, query_points)
            )
        if not batch:
            return []
        self._run_batch(batch)
        out: list[tuple[list[SearchResult], ExecutionStats]] = []
        for item in batch:
            if item.error is not None:
                raise item.error
            assert item.results is not None and item.stats is not None
            out.append((item.results, item.stats))
        return out

    def maintain(self) -> dict:
        """One supervision pass over the transport (worker respawns).

        Called from :meth:`IndexService.maintenance_tick`, so a worker
        that died mid-query is replaced within one tick.
        """
        return self.transport.maintain()

    def refresh_snapshot(self, snapshot_path) -> dict:
        """Re-point a snapshot-serving transport at a new publish."""
        refresh = getattr(self.transport, "refresh", None)
        if refresh is None:
            return {}
        return refresh(snapshot_path)

    def close(self) -> None:
        """Shut the worker pool down and close the transport."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self.transport.close()

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Scatter-gather with failover, timeouts, and hedging
    # ------------------------------------------------------------------

    def _contact_shard(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> np.ndarray:
        with self._contact_lock:
            self._contact_counts[shard_id] = (
                self._contact_counts.get(shard_id, 0) + 1
            )
        if self.rpc_latency_s:
            time.sleep(self.rpc_latency_s)
        return self.transport.shard_partial(
            shard_id, terms, attempt, meta, variant
        )

    def _fetch_shard(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> dict[int, np.ndarray]:
        with self._contact_lock:
            self._contact_counts[shard_id] = (
                self._contact_counts.get(shard_id, 0) + 1
            )
        if self.rpc_latency_s:
            time.sleep(self.rpc_latency_s)
        return self.transport.shard_postings(
            shard_id, terms, attempt, meta, variant
        )

    def _contact_dfs(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> np.ndarray:
        with self._contact_lock:
            self._contact_counts[shard_id] = (
                self._contact_counts.get(shard_id, 0) + 1
            )
        if self.rpc_latency_s:
            time.sleep(self.rpc_latency_s)
        return self.transport.shard_term_counts(
            shard_id, terms, attempt, meta, variant
        )

    def _contact_complete(
        self,
        shard_id: int,
        terms: Sequence[int],
        candidates: np.ndarray,
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> tuple[np.ndarray, int]:
        with self._contact_lock:
            self._contact_counts[shard_id] = (
                self._contact_counts.get(shard_id, 0) + 1
            )
        if self.rpc_latency_s:
            time.sleep(self.rpc_latency_s)
        return self.transport.shard_counts(
            shard_id, terms, candidates, attempt, meta, variant
        )

    def _timed_call(
        self,
        call: Callable,
        shard_id: int,
        terms: Sequence[int],
        attempt: int,
        meta: dict,
        sink: TraceSink,
    ):
        """Worker-side contact with its own start/end clock readings.

        The worker only *reads* the clock; the coordinating thread
        records the spans, so trace mutation stays single-threaded per
        fan-out and the queue-wait split (submit to start) is visible.
        """
        start_s = sink.now()
        value = call(shard_id, terms, attempt, meta)
        return value, start_s, sink.now()

    def _scatter(
        self,
        plan: list[tuple],
        call: Callable,
        shard_sink: TraceSink,
    ) -> tuple[dict, list, list, list]:
        """Contact every planned shard; tolerate transport failures.

        Returns ``(results, spans, hedged_shards, failed_shards)`` where
        ``results`` maps shard id to the call's value for every shard
        that answered.  :class:`TransportError` triggers one failover
        retry (``attempt=1`` routes to a different backend); any other
        exception is a programming error and propagates.  On the pooled
        path, ``shard_timeout_s`` bounds each shard's total wall time
        and ``hedge_after_s`` fires one duplicate contact for
        stragglers; first answer wins, late duplicates are discarded.
        """
        if self._pool is None or len(plan) <= 1:
            return self._scatter_sequential(plan, call, shard_sink)
        return self._scatter_pooled(plan, call, shard_sink)

    def _scatter_sequential(
        self,
        plan: list[tuple],
        call: Callable,
        shard_sink: TraceSink,
    ) -> tuple[dict, list, list, list]:
        results: dict[int, object] = {}
        spans: list[_Span] = []
        failed: list[int] = []
        for shard_id, terms in plan:
            for attempt in range(_MAX_ATTEMPTS):
                meta: dict = {}
                submit_s = shard_sink.now()
                try:
                    value = call(shard_id, terms, attempt, meta)
                except TransportError:
                    with self._contact_lock:
                        if attempt + 1 < _MAX_ATTEMPTS:
                            self._failovers += 1
                        else:
                            self._failed_contacts += 1
                    continue
                results[shard_id] = value
                spans.append(
                    (
                        shard_id,
                        len(terms),
                        submit_s,
                        shard_sink.now(),
                        submit_s,
                        attempt,
                        meta,
                    )
                )
                break
            else:
                failed.append(shard_id)
        return results, spans, [], failed

    def _scatter_pooled(
        self,
        plan: list[tuple],
        call: Callable,
        shard_sink: TraceSink,
    ) -> tuple[dict, list, list, list]:
        assert self._pool is not None
        clock = time.monotonic
        results: dict[int, object] = {}
        spans: list[_Span] = []
        hedged: list[int] = []
        failed: list[int] = []
        timeout_s = self.shard_timeout_s
        hedge_s = self.hedge_after_s
        terms_of = dict(plan)
        # Per-shard bookkeeping: attempts started, attempts in flight,
        # dispatch time (timeout/hedge deadlines), resolution.
        state = {
            shard_id: {
                "in_flight": 0,
                "attempts": 0,
                "at": 0.0,
                "hedged": False,
                "done": False,
            }
            for shard_id, _ in plan
        }
        pending: dict[Future, tuple[int, int, float, float, dict]] = {}

        def submit(shard_id: int, attempt: int) -> None:
            # The satellite fix: each task gets its own submit stamp
            # (trace clock *and* monotonic), taken immediately before
            # its submission — a saturated pool then charges queue wait
            # to the task that actually waited, not to whichever shard
            # happened to be first, and hedging reads true straggler
            # latency instead of shared queue backlog.
            meta: dict = {}
            submit_trace = shard_sink.now()
            st = state[shard_id]
            st["attempts"] += 1
            st["in_flight"] += 1
            future = self._pool.submit(
                self._timed_call,
                call,
                shard_id,
                terms_of[shard_id],
                attempt,
                meta,
                shard_sink,
            )
            pending[future] = (shard_id, attempt, clock(), submit_trace, meta)

        for shard_id, _ in plan:
            state[shard_id]["at"] = clock()
            submit(shard_id, 0)

        while pending:
            timeout = None
            now = clock()
            for shard_id, st in state.items():
                if st["done"]:
                    continue
                if (
                    hedge_s is not None
                    and not st["hedged"]
                    and st["attempts"] < _MAX_ATTEMPTS
                ):
                    remaining = st["at"] + hedge_s - now
                    timeout = (
                        remaining if timeout is None else min(timeout, remaining)
                    )
                if timeout_s is not None:
                    remaining = st["at"] + timeout_s - now
                    timeout = (
                        remaining if timeout is None else min(timeout, remaining)
                    )
            if timeout is not None:
                timeout = max(timeout, 0.0)
            done, _ = wait(
                tuple(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                shard_id, attempt, _submit_mono, submit_trace, meta = (
                    pending.pop(future)
                )
                st = state[shard_id]
                st["in_flight"] -= 1
                exc = future.exception()
                if st["done"]:
                    continue  # late duplicate of a resolved shard
                if exc is None:
                    value, start_s, end_s = future.result()
                    st["done"] = True
                    results[shard_id] = value
                    spans.append(
                        (
                            shard_id,
                            len(terms_of[shard_id]),
                            start_s,
                            end_s,
                            submit_trace,
                            attempt,
                            meta,
                        )
                    )
                    continue
                if not isinstance(exc, TransportError):
                    raise exc
                if st["in_flight"] > 0:
                    continue  # the other attempt may still answer
                if st["attempts"] < _MAX_ATTEMPTS:
                    with self._contact_lock:
                        self._failovers += 1
                    submit(shard_id, st["attempts"])
                else:
                    st["done"] = True
                    failed.append(shard_id)
                    with self._contact_lock:
                        self._failed_contacts += 1
            now = clock()
            for shard_id, st in state.items():
                if st["done"]:
                    continue
                elapsed = now - st["at"]
                if timeout_s is not None and elapsed >= timeout_s:
                    st["done"] = True
                    failed.append(shard_id)
                    with self._contact_lock:
                        self._failed_contacts += 1
                    continue
                if (
                    hedge_s is not None
                    and not st["hedged"]
                    and st["attempts"] < _MAX_ATTEMPTS
                    and elapsed >= hedge_s
                ):
                    st["hedged"] = True
                    hedged.append(shard_id)
                    with self._contact_lock:
                        self._hedges += 1
                    submit(shard_id, st["attempts"])
            if all(st["done"] for st in state.values()):
                # Straggler futures keep running in the pool; their
                # results are discarded on completion.
                break
        return results, spans, hedged, failed

    # ------------------------------------------------------------------
    # Single-query fan-out
    # ------------------------------------------------------------------

    def _fanout_single(
        self, prepared: PreparedQuery, trace: TraceSink = NO_TRACE
    ) -> tuple[MatchCounts, float, float, list[int], list[int]]:
        """Contact every planned shard and merge the hit streams.

        Returns ``(matches, fanout_seconds, merge_seconds,
        hedged_shards, failed_shards)`` and records the ``fanout``/
        ``merge`` stages (plus per-shard detail spans with their
        queue-wait/execute split) into ``trace``.
        """
        fanout_start = trace.now()
        # Per-shard windows only surface in detail span trees; below
        # detail the workers skip their clock reads entirely.
        shard_sink = trace if trace.detail else NO_TRACE
        plan = list(prepared.plan.items())
        variant = prepared.variant

        def contact(shard_id, terms, attempt, meta):
            return self._contact_shard(shard_id, terms, attempt, meta, variant)

        partials, spans, hedged, failed = self._scatter(
            plan, contact, shard_sink
        )
        fanout_end = trace.now()
        matches = merge_hits(
            [partials[shard_id] for shard_id, _ in plan if shard_id in partials]
        )
        merge_end = trace.now()
        fanout_id = trace.stage("fanout", fanout_start, fanout_end)
        if trace.detail:
            self._record_shard_spans(trace, fanout_id, spans, failed)
        trace.stage("merge", fanout_end, merge_end)
        return (
            matches,
            fanout_end - fanout_start,
            merge_end - fanout_end,
            hedged,
            failed,
        )

    # ------------------------------------------------------------------
    # Planned (top-k-bounded) collection
    # ------------------------------------------------------------------

    def _planner_capable(self) -> bool:
        """Whether the transport speaks the planner's df/complete ops.

        The :class:`ShardTransport` protocol grew ``shard_term_counts``
        and ``shard_counts`` for bounded collection; a duck-typed
        transport predating them simply keeps the exhaustive path
        rather than crashing the query.
        """
        return hasattr(self.transport, "shard_term_counts") and hasattr(
            self.transport, "shard_counts"
        )

    def _execute_planned(
        self,
        prepared: PreparedQuery,
        limit: int | None,
        max_distance: float,
        trace: TraceSink = NO_TRACE,
        spec: QuerySpec | None = None,
        query_points: Trajectory | None = None,
        batch_size: int = 1,
    ) -> tuple[list[SearchResult], ExecutionStats]:
        """One query through the planner's bounded collection.

        Replaces the ``fanout``/``merge`` pair with a single ``collect``
        stage: the planner's control loop runs here at the coordinator
        and its df/open/complete round trips scatter per shard through
        the transport (:class:`_TransportSource`).  Results are
        bit-identical to the exhaustive path; raises
        :class:`TransportError` when a shard dies mid-plan so the caller
        can fall back.
        """
        collect_start = trace.now()
        source = _TransportSource(self, prepared)
        matches, planned = query_planner.collect_planned(
            source,
            prepared.terms,
            len(prepared.query_bitmap),
            self.index.variant_cardinalities(prepared.variant),
            limit,
            max_distance,
        )
        collect_end = trace.now()
        results, scoring = self.index.rank_matches(
            prepared, matches, limit, max_distance
        )
        rank_end = trace.now()
        trace.stage(
            "collect",
            collect_start,
            collect_end,
            terms_skipped=planned.terms_skipped,
            postings_skipped=planned.postings_skipped,
            cut=planned.collection_cut,
        )
        trace.stage("rank", collect_end, rank_end)
        rerank_s: float | None = None
        extra_pruned = 0
        if spec is not None and spec.is_exact:
            results, rerank_s, extra_pruned = self._rerank(
                results, spec, query_points, trace
            )
        stage_ms: tuple[tuple[str, float], ...] = ()
        if trace is not NO_TRACE:
            stage_ms = (
                ("collect", round((collect_end - collect_start) * 1000.0, 4)),
                ("rank", round((rank_end - collect_end) * 1000.0, 4)),
            )
            if rerank_s is not None:
                stage_ms += (("rerank", round(rerank_s * 1000.0, 4)),)
        return results, self._stats(
            prepared,
            matches,
            batch_size=batch_size,
            scoring=scoring,
            stage_ms=stage_ms,
            hedged=source.hedged,
            extra_pruned=extra_pruned,
            planner=planned,
        )

    @staticmethod
    def _record_shard_spans(
        trace: TraceSink,
        parent: int | None,
        spans: list[_Span],
        failed: list[int],
    ) -> None:
        for shard_id, n_terms, start_s, end_s, submit_s, attempt, meta in spans:
            extra = {}
            if attempt:
                extra["attempt"] = attempt
            if "worker" in meta:
                extra["worker"] = meta["worker"]
            trace.event(
                "shard",
                start_s,
                end_s,
                parent=parent,
                shard=shard_id,
                terms=n_terms,
                queue_wait_ms=round(max(0.0, start_s - submit_s) * 1000.0, 4),
                **extra,
            )
        for shard_id in failed:
            trace.event(
                "shard_failed", trace.now(), trace.now(), parent=parent,
                shard=shard_id,
            )

    @staticmethod
    def _stage_ms(
        trace: TraceSink,
        fanout_s: float,
        merge_s: float,
        rank_s: float,
        rerank_s: float | None = None,
    ) -> tuple[tuple[str, float], ...]:
        """The per-execution stage split, when a real sink timed it."""
        if trace is NO_TRACE:
            return ()
        split = (
            ("fanout", round(fanout_s * 1000.0, 4)),
            ("merge", round(merge_s * 1000.0, 4)),
            ("rank", round(rank_s * 1000.0, 4)),
        )
        if rerank_s is None:
            return split
        return split + (("rerank", round(rerank_s * 1000.0, 4)),)

    # ------------------------------------------------------------------
    # Exact re-rank (tier 2 of the tiered pipeline)
    # ------------------------------------------------------------------

    def _check_exact(self, spec: QuerySpec) -> None:
        """Fail exact specs fast when the index keeps no raw points."""
        if spec.is_exact and not getattr(self.index, "store_points", False):
            raise ExactSearchUnsupported(
                "exact queries need stored trajectories; this index "
                "was built with store_points=False"
            )

    def _rerank(
        self,
        candidates: list[SearchResult],
        spec: QuerySpec,
        query_points: Trajectory | None,
        trace: TraceSink,
    ) -> tuple[list[SearchResult], float, int]:
        """Exact re-rank of one query's Jaccard candidates.

        The surviving dynamic programs run on the worker pool when one
        is configured (they are pure CPU over coordinator-local points,
        so they parallelize exactly like shard contacts).  Returns the
        re-ranked results, the stage's wall seconds, and the number of
        candidates the bound test pruned.
        """
        if query_points is None:
            raise ValueError("exact queries require query_points")
        rerank_start = trace.now()
        results, stats = rerank_candidates(
            query_points,
            candidates,
            spec,
            self.index.points_of,
            map_fn=self._pool.map if self._pool is not None else None,
        )
        rerank_end = trace.now()
        trace.stage(
            "rerank",
            rerank_start,
            rerank_end,
            candidates=stats.candidates,
            pruned=stats.pruned,
        )
        return results, rerank_end - rerank_start, stats.pruned

    # ------------------------------------------------------------------
    # Micro-batched fan-out
    # ------------------------------------------------------------------

    def _execute_batched(
        self,
        prepared: PreparedQuery,
        limit: int | None,
        max_distance: float,
        trace: TraceSink = NO_TRACE,
        spec: QuerySpec | None = None,
        query_points: Trajectory | None = None,
    ) -> tuple[list[SearchResult], ExecutionStats]:
        pending = _Pending(prepared, limit, max_distance, trace, spec, query_points)
        with self._batch_lock:
            self._batch.append(pending)
            leader = not self._leader_active
            if leader:
                self._leader_active = True
        if leader:
            batch: list[_Pending] = []
            try:
                try:
                    time.sleep(self.batch_window_s)
                finally:
                    # Even if the window sleep is interrupted, drain the
                    # batch and surrender leadership — otherwise every
                    # follower (and all future queries) waits forever.
                    with self._batch_lock:
                        batch, self._batch = self._batch, []
                        self._leader_active = False
                self._run_batch(batch)
            finally:
                for item in batch:
                    if item.results is None and item.error is None:
                        item.error = RuntimeError("batch execution failed")
                    item.event.set()
        else:
            pending.event.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.results is not None and pending.stats is not None
        return pending.results, pending.stats

    def _run_batch(self, batch: list[_Pending]) -> None:
        # Planner-eligible items run bounded collection individually
        # (their per-query threshold is the whole point — a shared
        # union fetch would read exactly the postings they can skip);
        # everything else shares the exhaustive union fetch below.
        full_size = len(batch)
        remaining: list[_Pending] = []
        for item in batch:
            if not (
                item.spec is not None
                and item.spec.plan == "auto"
                and query_planner.plannable(item.limit, item.max_distance)
                and self._planner_capable()
            ):
                remaining.append(item)
                continue
            try:
                item.results, item.stats = self._execute_planned(
                    item.prepared,
                    item.limit,
                    item.max_distance,
                    item.trace,
                    item.spec,
                    item.query_points,
                    batch_size=full_size,
                )
            except TransportError:
                # Mid-plan shard loss: rejoin the exhaustive fetch,
                # which tolerates failed shards by degrading.
                remaining.append(item)
            except BaseException as exc:
                item.error = exc
        if not remaining:
            return
        batch = remaining
        # One fetch per (variant, shard) over the union of the batch's
        # terms — queries on different variants read different postings
        # columns, so only same-variant queries can share a term union.
        union_plan: dict[tuple[str, int], set[int]] = {}
        for item in batch:
            variant = item.prepared.variant
            for shard_id, shard_terms in item.prepared.plan.items():
                union_plan.setdefault((variant, shard_id), set()).update(
                    shard_terms
                )
        # Distinct trace sinks across the batch: the burst API shares
        # one for the whole batch, the window path gives every query its
        # own.  Each sink gets the shared fetch as its ``fanout`` stage
        # (every query in the batch did wait on it); per-shard detail
        # spans go to the first detail sink — the batch leader's — since
        # one fetch serves the whole batch.
        traces: list[TraceSink] = []
        seen: set[int] = set()
        for item in batch:
            if item.trace is not NO_TRACE and id(item.trace) not in seen:
                seen.add(id(item.trace))
                traces.append(item.trace)
        detail = next((t for t in traces if t.detail), None)
        shard_sink: TraceSink = detail if detail is not None else NO_TRACE
        fetch_starts = [(t, t.now()) for t in traces]
        # Plan keys are (variant, shard) pairs; _scatter treats them
        # opaquely and the fetch closure unpacks them per contact.
        plan = [(key, sorted(terms)) for key, terms in union_plan.items()]

        def fetch(key, terms, attempt, meta):
            variant, shard_id = key
            return self._fetch_shard(shard_id, terms, attempt, meta, variant)

        try:
            fetched, spans, hedged, failed = self._scatter(
                plan, fetch, shard_sink
            )
        except BaseException as exc:  # pragma: no cover - defensive
            for item in batch:
                item.error = exc
            return
        hedged_set = set(hedged)
        failed_set = set(failed)
        fanout_ids: dict[int, int | None] = {}
        fanout_s: dict[int, float] = {}
        for sink, start_s in fetch_starts:
            end_s = sink.now()
            fanout_ids[id(sink)] = sink.stage("fanout", start_s, end_s)
            fanout_s[id(sink)] = end_s - start_s
        if detail is not None:
            # Trace spans carry plain shard ids; strip the variant half
            # of the plan keys back out for the event payloads.
            self._record_shard_spans(
                detail,
                fanout_ids.get(id(detail)),
                [(key[1], *rest) for key, *rest in spans],
                [key[1] for key in failed],
            )
        # Split the shared fetch back into per-query partials and rank:
        # each query's hit stream is one concatenate over the postings
        # arrays of its own terms, merged by one np.unique pass.  A
        # failed shard simply contributes nothing — every query whose
        # plan touched it is flagged degraded.
        split_s: dict[int, list] = {}
        for item in batch:
            sink = item.trace
            try:
                merge_start = sink.now()
                chunks: list[np.ndarray] = []
                item_variant = item.prepared.variant
                for shard_id, shard_terms in item.prepared.plan.items():
                    postings = fetched.get((item_variant, shard_id))
                    if postings is None:
                        continue
                    for term in shard_terms:
                        posting = postings.get(term)
                        if posting is not None:
                            chunks.append(posting)
                matches = merge_hits(chunks)
                merge_end = sink.now()
                item.results, scoring = self.index.rank_matches(
                    item.prepared, matches, item.limit, item.max_distance
                )
                rank_end = sink.now()
                rerank_s: float | None = None
                extra_pruned = 0
                if item.spec is not None and item.spec.is_exact:
                    # Per-item exact refine; detail sinks keep its span,
                    # non-detail sinks fold it into the stage totals
                    # below, like merge/rank.
                    rerank_sink = sink if sink.detail else NO_TRACE
                    item.results, rerank_s, extra_pruned = self._rerank(
                        item.results, item.spec, item.query_points, rerank_sink
                    )
                    if not sink.detail:
                        rerank_s = sink.now() - rank_end
                if sink.detail:
                    # Detail keeps one merge/rank span per query.
                    sink.stage("merge", merge_start, merge_end)
                    sink.stage("rank", merge_end, rank_end)
                elif sink is not NO_TRACE:
                    # Below detail only the per-sink totals matter, so
                    # fold them locally and record once after the loop
                    # instead of taking the trace lock per item.
                    totals = split_s.setdefault(id(sink), [sink, 0.0, 0.0, 0.0])
                    totals[1] += merge_end - merge_start
                    totals[2] += rank_end - merge_end
                    if rerank_s is not None:
                        totals[3] += rerank_s
                item_plan = item.prepared.plan
                item.stats = self._stats(
                    item.prepared,
                    matches,
                    batch_size=full_size,
                    scoring=scoring,
                    stage_ms=self._stage_ms(
                        sink,
                        fanout_s.get(id(sink), 0.0),
                        merge_end - merge_start,
                        rank_end - merge_end,
                        rerank_s,
                    ),
                    hedged=sum(
                        1 for s in item_plan
                        if (item_variant, s) in hedged_set
                    ),
                    failed_shards=sum(
                        1 for s in item_plan
                        if (item_variant, s) in failed_set
                    ),
                    extra_pruned=extra_pruned,
                )
            except BaseException as exc:
                item.error = exc
        for sink, merge_s, rank_s, rerank_total in split_s.values():
            sink.stage("merge", 0.0, merge_s)
            sink.stage("rank", 0.0, rank_s)
            if rerank_total:
                sink.stage("rerank", 0.0, rerank_total)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def shard_contact_counts(self) -> dict[int, int]:
        """Lifetime contact count per shard id (fan-out balance feed)."""
        with self._contact_lock:
            return dict(self._contact_counts)

    def fault_counts(self) -> dict[str, int]:
        """Lifetime hedge/failover/failure counters (``/stats``, ``/metrics``)."""
        with self._contact_lock:
            return {
                "hedges": self._hedges,
                "failovers": self._failovers,
                "failed_contacts": self._failed_contacts,
            }

    def transport_stats(self) -> dict:
        """The transport's own vitals (worker pids, respawns, ...)."""
        return self.transport.stats()

    def _stats(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        batch_size: int,
        scoring: ScoringStats | None = None,
        stage_ms: tuple[tuple[str, float], ...] = (),
        hedged: int = 0,
        failed_shards: int = 0,
        extra_pruned: int = 0,
        planner: PlannerStats | None = None,
    ) -> ExecutionStats:
        fanout = self.index.fanout_stats(prepared, matches, scoring, planner)
        pooled = self._pool is not None
        return ExecutionStats(
            query_terms=fanout.query_terms,
            shards_contacted=fanout.shards_contacted,
            nodes_contacted=fanout.nodes_contacted,
            candidates=fanout.candidates,
            fanout_width=(
                min(self.pool_size, fanout.shards_contacted)
                if pooled else 1
            ),
            batch_size=batch_size,
            pooled=pooled,
            pruned=fanout.pruned + extra_pruned,
            stage_ms=stage_ms,
            hedged=hedged,
            failed_shards=failed_shards,
            terms_skipped=fanout.terms_skipped,
            postings_skipped=fanout.postings_skipped,
            postings_bytes_avoided=fanout.postings_bytes_avoided,
            collection_cut=fanout.collection_cut,
        )
