"""Concurrent shard fan-out over any index with the prepared-query surface.

The sequential path in ``query_prepared`` contacts shards one at a
time; under a serving workload each shard contact is an RPC, so a
query's latency is the *sum* of its shard round-trips.  The
:class:`QueryExecutor` fans the per-shard lookups out over a
``ThreadPoolExecutor`` so a query costs roughly the *slowest* shard
instead, and optionally micro-batches concurrent queries: queries that
arrive within a small window share one postings fetch per shard over the
union of their terms, so popular terms are read once per batch rather
than once per query.

Both backends speak the same protocol — ``prepare_query`` /
``shard_partial`` / ``shard_postings`` / ``score_matches`` /
``fanout_stats`` — so the executor drives a
:class:`~repro.cluster.cluster.ShardedGeodabIndex` and a single-node
:class:`~repro.core.index.GeodabIndex` (one logical shard, where the
pool degenerates to a direct call) identically.  Merging and ranking
reuse ``score_matches`` verbatim, so pooled, batched, and sequential
execution return identical results (asserted by the test suite).

The in-process shard lookups here stand in for network RPCs; the
``rpc_latency_s`` knob injects a per-contact delay so benchmarks can
reproduce the latency-bound regime the paper's Section VI-E cluster
actually operates in.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cluster.cluster import ShardedGeodabIndex
from ..core.index import GeodabIndex, SearchResult
from ..core.postings import merge_hits
from ..core.query import MatchCounts, PreparedQuery
from ..core.scoring import ScoringStats

__all__ = ["ExecutionStats", "QueryExecutor"]


@dataclass(frozen=True, slots=True)
class ExecutionStats:
    """How one query was executed by the serving tier.

    ``pruned`` carries the scoring engine's count: candidates cut by the
    minimum-overlap threshold before any distance was computed.
    """

    query_terms: int
    shards_contacted: int
    nodes_contacted: int
    candidates: int
    fanout_width: int
    batch_size: int
    pooled: bool
    pruned: int = 0


class _Pending:
    """One query waiting inside a micro-batch window."""

    __slots__ = (
        "prepared", "limit", "max_distance", "event", "results", "stats", "error"
    )

    def __init__(
        self, prepared: PreparedQuery, limit: int | None, max_distance: float
    ) -> None:
        self.prepared = prepared
        self.limit = limit
        self.max_distance = max_distance
        self.event = threading.Event()
        self.results: list[SearchResult] | None = None
        self.stats: ExecutionStats | None = None
        self.error: BaseException | None = None


class QueryExecutor:
    """Drives an index's shards from a worker pool.

    ``pool_size=0`` disables the pool (sequential shard loop, still one
    simulated RPC per shard) — the baseline the throughput benchmark
    compares against.  ``batch_window_s > 0`` enables micro-batching:
    the first query to arrive becomes the batch leader, waits out the
    window collecting followers, and executes one shared fan-out.
    """

    def __init__(
        self,
        index: ShardedGeodabIndex | GeodabIndex,
        pool_size: int = 8,
        rpc_latency_s: float = 0.0,
        batch_window_s: float = 0.0,
    ) -> None:
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        if rpc_latency_s < 0:
            raise ValueError("rpc_latency_s must be non-negative")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        self.index = index
        self.pool_size = pool_size
        self.rpc_latency_s = rpc_latency_s
        self.batch_window_s = batch_window_s
        self._pool = (
            ThreadPoolExecutor(
                max_workers=pool_size, thread_name_prefix="geodab-shard"
            )
            if pool_size
            else None
        )
        self._batch_lock = threading.Lock()
        self._batch: list[_Pending] = []
        self._leader_active = False

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def execute(
        self,
        points,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[list[SearchResult], ExecutionStats]:
        """Fingerprint, fan out, merge, rank."""
        return self.execute_prepared(
            self.index.prepare_query(points), limit, max_distance
        )

    def execute_prepared(
        self,
        prepared: PreparedQuery,
        limit: int | None = None,
        max_distance: float = 1.0,
    ) -> tuple[list[SearchResult], ExecutionStats]:
        """Execute an already-prepared query (cached fingerprints reuse)."""
        if self.batch_window_s > 0:
            return self._execute_batched(prepared, limit, max_distance)
        matches = self._fanout_single(prepared)
        results, scoring = self.index.rank_matches(
            prepared, matches, limit, max_distance
        )
        return results, self._stats(prepared, matches, batch_size=1, scoring=scoring)

    def execute_prepared_many(
        self,
        requests: Sequence[tuple[PreparedQuery, int | None, float]],
    ) -> list[tuple[list[SearchResult], ExecutionStats]]:
        """Execute a whole burst of prepared queries as one fan-out.

        The explicit-batch twin of the window-based micro-batching: the
        burst shares one postings fetch per shard over the union of its
        terms (fanned out over the worker pool when one is configured),
        and per-query partials are split back out at the coordinator.
        The batch query API calls this so ``n`` concurrent queries cost
        one shard contact each instead of ``n``.
        """
        batch = [
            _Pending(prepared, limit, max_distance)
            for prepared, limit, max_distance in requests
        ]
        if not batch:
            return []
        self._run_batch(batch)
        out: list[tuple[list[SearchResult], ExecutionStats]] = []
        for item in batch:
            if item.error is not None:
                raise item.error
            assert item.results is not None and item.stats is not None
            out.append((item.results, item.stats))
        return out

    def close(self) -> None:
        """Shut the worker pool down."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Single-query fan-out
    # ------------------------------------------------------------------

    def _contact_shard(self, shard_id: int, terms: Sequence[int]) -> np.ndarray:
        if self.rpc_latency_s:
            time.sleep(self.rpc_latency_s)
        return self.index.shard_partial(shard_id, terms)

    def _fanout_single(self, prepared: PreparedQuery) -> MatchCounts:
        if self._pool is None or len(prepared.plan) <= 1:
            return merge_hits(
                self._contact_shard(shard_id, shard_terms)
                for shard_id, shard_terms in prepared.plan.items()
            )
        futures = [
            self._pool.submit(self._contact_shard, shard_id, shard_terms)
            for shard_id, shard_terms in prepared.plan.items()
        ]
        return merge_hits(future.result() for future in futures)

    # ------------------------------------------------------------------
    # Micro-batched fan-out
    # ------------------------------------------------------------------

    def _execute_batched(
        self,
        prepared: PreparedQuery,
        limit: int | None,
        max_distance: float,
    ) -> tuple[list[SearchResult], ExecutionStats]:
        pending = _Pending(prepared, limit, max_distance)
        with self._batch_lock:
            self._batch.append(pending)
            leader = not self._leader_active
            if leader:
                self._leader_active = True
        if leader:
            batch: list[_Pending] = []
            try:
                try:
                    time.sleep(self.batch_window_s)
                finally:
                    # Even if the window sleep is interrupted, drain the
                    # batch and surrender leadership — otherwise every
                    # follower (and all future queries) waits forever.
                    with self._batch_lock:
                        batch, self._batch = self._batch, []
                        self._leader_active = False
                self._run_batch(batch)
            finally:
                for item in batch:
                    if item.results is None and item.error is None:
                        item.error = RuntimeError("batch execution failed")
                    item.event.set()
        else:
            pending.event.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.results is not None and pending.stats is not None
        return pending.results, pending.stats

    def _fetch_shard(
        self, shard_id: int, terms: Sequence[int]
    ) -> dict[int, np.ndarray]:
        if self.rpc_latency_s:
            time.sleep(self.rpc_latency_s)
        return self.index.shard_postings(shard_id, terms)

    def _run_batch(self, batch: list[_Pending]) -> None:
        # One fetch per shard over the union of the batch's terms.
        union_plan: dict[int, set[int]] = {}
        for item in batch:
            for shard_id, shard_terms in item.prepared.plan.items():
                union_plan.setdefault(shard_id, set()).update(shard_terms)
        try:
            if self._pool is None:
                fetched = {
                    shard_id: self._fetch_shard(shard_id, sorted(terms))
                    for shard_id, terms in union_plan.items()
                }
            else:
                futures = {
                    shard_id: self._pool.submit(
                        self._fetch_shard, shard_id, sorted(terms)
                    )
                    for shard_id, terms in union_plan.items()
                }
                fetched = {
                    shard_id: future.result()
                    for shard_id, future in futures.items()
                }
        except BaseException as exc:  # pragma: no cover - defensive
            for item in batch:
                item.error = exc
            return
        # Split the shared fetch back into per-query partials and rank:
        # each query's hit stream is one concatenate over the postings
        # arrays of its own terms, merged by one np.unique pass.
        for item in batch:
            try:
                chunks: list[np.ndarray] = []
                for shard_id, shard_terms in item.prepared.plan.items():
                    postings = fetched[shard_id]
                    for term in shard_terms:
                        posting = postings.get(term)
                        if posting is not None:
                            chunks.append(posting)
                matches = merge_hits(chunks)
                item.results, scoring = self.index.rank_matches(
                    item.prepared, matches, item.limit, item.max_distance
                )
                item.stats = self._stats(
                    item.prepared, matches, batch_size=len(batch), scoring=scoring
                )
            except BaseException as exc:
                item.error = exc

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _stats(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        batch_size: int,
        scoring: ScoringStats | None = None,
    ) -> ExecutionStats:
        fanout = self.index.fanout_stats(prepared, matches, scoring)
        pooled = self._pool is not None
        return ExecutionStats(
            query_terms=fanout.query_terms,
            shards_contacted=fanout.shards_contacted,
            nodes_contacted=fanout.nodes_contacted,
            candidates=fanout.candidates,
            fanout_width=(
                min(self.pool_size, fanout.shards_contacted)
                if pooled else 1
            ),
            batch_size=batch_size,
            pooled=pooled,
            pruned=fanout.pruned,
        )
