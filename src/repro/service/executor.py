"""Concurrent shard fan-out over any index with the prepared-query surface.

The sequential path in ``query_prepared`` contacts shards one at a
time; under a serving workload each shard contact is an RPC, so a
query's latency is the *sum* of its shard round-trips.  The
:class:`QueryExecutor` fans the per-shard lookups out over a
``ThreadPoolExecutor`` so a query costs roughly the *slowest* shard
instead, and optionally micro-batches concurrent queries: queries that
arrive within a small window share one postings fetch per shard over the
union of their terms, so popular terms are read once per batch rather
than once per query.

Both backends speak the same protocol — ``prepare_query`` /
``shard_partial`` / ``shard_postings`` / ``score_matches`` /
``fanout_stats`` — so the executor drives a
:class:`~repro.cluster.cluster.ShardedGeodabIndex` and a single-node
:class:`~repro.core.index.GeodabIndex` (one logical shard, where the
pool degenerates to a direct call) identically.  Merging and ranking
reuse ``score_matches`` verbatim, so pooled, batched, and sequential
execution return identical results (asserted by the test suite).

The in-process shard lookups here stand in for network RPCs; the
``rpc_latency_s`` knob injects a per-contact delay so benchmarks can
reproduce the latency-bound regime the paper's Section VI-E cluster
actually operates in.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cluster.cluster import ShardedGeodabIndex
from ..core.index import GeodabIndex, SearchResult
from ..core.postings import merge_hits
from ..core.query import NO_TRACE, MatchCounts, PreparedQuery, TraceSink
from ..core.scoring import ScoringStats

__all__ = ["ExecutionStats", "QueryExecutor"]


@dataclass(frozen=True, slots=True)
class ExecutionStats:
    """How one query was executed by the serving tier.

    ``pruned`` carries the scoring engine's count: candidates cut by the
    minimum-overlap threshold before any distance was computed.
    ``stage_ms`` is the execution's stage split — ``(("fanout", ms),
    ("merge", ms), ("rank", ms))`` — populated whenever a real trace
    sink timed the execution, empty under :data:`~repro.core.query.NO_TRACE`.
    """

    query_terms: int
    shards_contacted: int
    nodes_contacted: int
    candidates: int
    fanout_width: int
    batch_size: int
    pooled: bool
    pruned: int = 0
    stage_ms: tuple[tuple[str, float], ...] = ()


class _Pending:
    """One query waiting inside a micro-batch window."""

    __slots__ = (
        "prepared",
        "limit",
        "max_distance",
        "trace",
        "event",
        "results",
        "stats",
        "error",
    )

    def __init__(
        self,
        prepared: PreparedQuery,
        limit: int | None,
        max_distance: float,
        trace: TraceSink = NO_TRACE,
    ) -> None:
        self.prepared = prepared
        self.limit = limit
        self.max_distance = max_distance
        self.trace = trace
        self.event = threading.Event()
        self.results: list[SearchResult] | None = None
        self.stats: ExecutionStats | None = None
        self.error: BaseException | None = None


class QueryExecutor:
    """Drives an index's shards from a worker pool.

    ``pool_size=0`` disables the pool (sequential shard loop, still one
    simulated RPC per shard) — the baseline the throughput benchmark
    compares against.  ``batch_window_s > 0`` enables micro-batching:
    the first query to arrive becomes the batch leader, waits out the
    window collecting followers, and executes one shared fan-out.
    """

    def __init__(
        self,
        index: ShardedGeodabIndex | GeodabIndex,
        pool_size: int = 8,
        rpc_latency_s: float = 0.0,
        batch_window_s: float = 0.0,
    ) -> None:
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        if rpc_latency_s < 0:
            raise ValueError("rpc_latency_s must be non-negative")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        self.index = index
        self.pool_size = pool_size
        self.rpc_latency_s = rpc_latency_s
        self.batch_window_s = batch_window_s
        self._pool = (
            ThreadPoolExecutor(
                max_workers=pool_size, thread_name_prefix="geodab-shard"
            )
            if pool_size
            else None
        )
        self._batch_lock = threading.Lock()
        self._batch: list[_Pending] = []
        self._leader_active = False
        # Lifetime shard-contact counts (observability: /stats surfaces
        # their balance).  Guarded by its own lock — contacts happen on
        # worker threads.
        self._contact_lock = threading.Lock()
        self._contact_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def execute(
        self,
        points,
        limit: int | None = None,
        max_distance: float = 1.0,
        trace: TraceSink = NO_TRACE,
    ) -> tuple[list[SearchResult], ExecutionStats]:
        """Fingerprint, fan out, merge, rank."""
        prepare_start = trace.now()
        prepared = self.index.prepare_query(points)
        trace.stage("prepare", prepare_start, trace.now())
        return self.execute_prepared(prepared, limit, max_distance, trace)

    def execute_prepared(
        self,
        prepared: PreparedQuery,
        limit: int | None = None,
        max_distance: float = 1.0,
        trace: TraceSink = NO_TRACE,
    ) -> tuple[list[SearchResult], ExecutionStats]:
        """Execute an already-prepared query (cached fingerprints reuse).

        ``trace`` receives the stage timings (``fanout``/``merge``/
        ``rank``, plus per-shard detail spans when the sink keeps
        detail); the default null sink makes instrumentation free.
        """
        if self.batch_window_s > 0:
            return self._execute_batched(prepared, limit, max_distance, trace)
        matches, fanout_s, merge_s = self._fanout_single(prepared, trace)
        rank_start = trace.now()
        results, scoring = self.index.rank_matches(
            prepared, matches, limit, max_distance
        )
        rank_end = trace.now()
        trace.stage("rank", rank_start, rank_end)
        return results, self._stats(
            prepared,
            matches,
            batch_size=1,
            scoring=scoring,
            stage_ms=self._stage_ms(
                trace, fanout_s, merge_s, rank_end - rank_start
            ),
        )

    def execute_prepared_many(
        self,
        requests: Sequence[tuple[PreparedQuery, int | None, float]],
        trace: TraceSink = NO_TRACE,
    ) -> list[tuple[list[SearchResult], ExecutionStats]]:
        """Execute a whole burst of prepared queries as one fan-out.

        The explicit-batch twin of the window-based micro-batching: the
        burst shares one postings fetch per shard over the union of its
        terms (fanned out over the worker pool when one is configured),
        and per-query partials are split back out at the coordinator.
        The batch query API calls this so ``n`` concurrent queries cost
        one shard contact each instead of ``n``.  The (single) ``trace``
        covers the whole burst: one ``fanout`` stage for the shared
        fetch, per-item ``merge``/``rank`` durations summing into the
        stage totals.
        """
        batch = [
            _Pending(prepared, limit, max_distance, trace)
            for prepared, limit, max_distance in requests
        ]
        if not batch:
            return []
        self._run_batch(batch)
        out: list[tuple[list[SearchResult], ExecutionStats]] = []
        for item in batch:
            if item.error is not None:
                raise item.error
            assert item.results is not None and item.stats is not None
            out.append((item.results, item.stats))
        return out

    def close(self) -> None:
        """Shut the worker pool down."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Single-query fan-out
    # ------------------------------------------------------------------

    def _contact_shard(self, shard_id: int, terms: Sequence[int]) -> np.ndarray:
        with self._contact_lock:
            self._contact_counts[shard_id] = (
                self._contact_counts.get(shard_id, 0) + 1
            )
        if self.rpc_latency_s:
            time.sleep(self.rpc_latency_s)
        return self.index.shard_partial(shard_id, terms)

    def _timed_contact(
        self, shard_id: int, terms: Sequence[int], trace: TraceSink
    ) -> tuple[np.ndarray, float, float]:
        """Worker-side contact with its own start/end clock readings.

        The worker only *reads* the clock; the coordinating thread
        records the spans, so trace mutation stays single-threaded per
        fan-out and the queue-wait split (submit to start) is visible.
        """
        start_s = trace.now()
        partial = self._contact_shard(shard_id, terms)
        return partial, start_s, trace.now()

    def _fanout_single(
        self, prepared: PreparedQuery, trace: TraceSink = NO_TRACE
    ) -> tuple[MatchCounts, float, float]:
        """Contact every planned shard and merge the hit streams.

        Returns ``(matches, fanout_seconds, merge_seconds)`` and records
        the ``fanout``/``merge`` stages (plus per-shard detail spans
        with their queue-wait/execute split) into ``trace``.
        """
        fanout_start = trace.now()
        # Per-shard windows only surface in detail span trees; below
        # detail the workers skip their clock reads entirely.
        shard_sink = trace if trace.detail else NO_TRACE
        if self._pool is None or len(prepared.plan) <= 1:
            timed = []
            for shard_id, shard_terms in prepared.plan.items():
                start_s = shard_sink.now()
                partial = self._contact_shard(shard_id, shard_terms)
                timed.append(
                    (
                        shard_id,
                        len(shard_terms),
                        partial,
                        start_s,
                        shard_sink.now(),
                        start_s,
                    )
                )
        else:
            submit_s = shard_sink.now()
            futures = [
                (
                    shard_id,
                    len(shard_terms),
                    self._pool.submit(
                        self._timed_contact, shard_id, shard_terms, shard_sink
                    ),
                )
                for shard_id, shard_terms in prepared.plan.items()
            ]
            timed = [
                (shard_id, n_terms, *future.result(), submit_s)
                for shard_id, n_terms, future in futures
            ]
        fanout_end = trace.now()
        matches = merge_hits([partial for _, _, partial, _, _, _ in timed])
        merge_end = trace.now()
        fanout_id = trace.stage("fanout", fanout_start, fanout_end)
        if trace.detail:
            for shard_id, n_terms, _, start_s, end_s, submit_s in timed:
                trace.event(
                    "shard",
                    start_s,
                    end_s,
                    parent=fanout_id,
                    shard=shard_id,
                    terms=n_terms,
                    queue_wait_ms=round(
                        max(0.0, start_s - submit_s) * 1000.0, 4
                    ),
                )
        trace.stage("merge", fanout_end, merge_end)
        return matches, fanout_end - fanout_start, merge_end - fanout_end

    @staticmethod
    def _stage_ms(
        trace: TraceSink, fanout_s: float, merge_s: float, rank_s: float
    ) -> tuple[tuple[str, float], ...]:
        """The per-execution stage split, when a real sink timed it."""
        if trace is NO_TRACE:
            return ()
        return (
            ("fanout", round(fanout_s * 1000.0, 4)),
            ("merge", round(merge_s * 1000.0, 4)),
            ("rank", round(rank_s * 1000.0, 4)),
        )

    # ------------------------------------------------------------------
    # Micro-batched fan-out
    # ------------------------------------------------------------------

    def _execute_batched(
        self,
        prepared: PreparedQuery,
        limit: int | None,
        max_distance: float,
        trace: TraceSink = NO_TRACE,
    ) -> tuple[list[SearchResult], ExecutionStats]:
        pending = _Pending(prepared, limit, max_distance, trace)
        with self._batch_lock:
            self._batch.append(pending)
            leader = not self._leader_active
            if leader:
                self._leader_active = True
        if leader:
            batch: list[_Pending] = []
            try:
                try:
                    time.sleep(self.batch_window_s)
                finally:
                    # Even if the window sleep is interrupted, drain the
                    # batch and surrender leadership — otherwise every
                    # follower (and all future queries) waits forever.
                    with self._batch_lock:
                        batch, self._batch = self._batch, []
                        self._leader_active = False
                self._run_batch(batch)
            finally:
                for item in batch:
                    if item.results is None and item.error is None:
                        item.error = RuntimeError("batch execution failed")
                    item.event.set()
        else:
            pending.event.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.results is not None and pending.stats is not None
        return pending.results, pending.stats

    def _fetch_shard(
        self, shard_id: int, terms: Sequence[int]
    ) -> dict[int, np.ndarray]:
        with self._contact_lock:
            self._contact_counts[shard_id] = (
                self._contact_counts.get(shard_id, 0) + 1
            )
        if self.rpc_latency_s:
            time.sleep(self.rpc_latency_s)
        return self.index.shard_postings(shard_id, terms)

    def _timed_fetch(
        self, shard_id: int, terms: Sequence[int], detail: TraceSink | None
    ) -> tuple[dict[int, np.ndarray], float, float]:
        """Worker-side batched fetch, clocked against the detail sink."""
        start_s = detail.now() if detail is not None else 0.0
        postings = self._fetch_shard(shard_id, terms)
        return postings, start_s, (detail.now() if detail is not None else 0.0)

    def _run_batch(self, batch: list[_Pending]) -> None:
        # One fetch per shard over the union of the batch's terms.
        union_plan: dict[int, set[int]] = {}
        for item in batch:
            for shard_id, shard_terms in item.prepared.plan.items():
                union_plan.setdefault(shard_id, set()).update(shard_terms)
        # Distinct trace sinks across the batch: the burst API shares
        # one for the whole batch, the window path gives every query its
        # own.  Each sink gets the shared fetch as its ``fanout`` stage
        # (every query in the batch did wait on it); per-shard detail
        # spans go to the first detail sink — the batch leader's — since
        # one fetch serves the whole batch.
        traces: list[TraceSink] = []
        seen: set[int] = set()
        for item in batch:
            if item.trace is not NO_TRACE and id(item.trace) not in seen:
                seen.add(id(item.trace))
                traces.append(item.trace)
        detail = next((t for t in traces if t.detail), None)
        fetch_starts = [(t, t.now()) for t in traces]
        contact_spans: list[tuple[int, int, float, float, float]] = []
        try:
            if self._pool is None:
                fetched = {}
                for shard_id, terms in union_plan.items():
                    start_s = detail.now() if detail is not None else 0.0
                    fetched[shard_id] = self._fetch_shard(shard_id, sorted(terms))
                    if detail is not None:
                        contact_spans.append(
                            (
                                shard_id,
                                len(terms),
                                start_s,
                                detail.now(),
                                start_s,
                            )
                        )
            else:
                submit_s = detail.now() if detail is not None else 0.0
                futures = {
                    shard_id: self._pool.submit(
                        self._timed_fetch, shard_id, sorted(terms), detail
                    )
                    for shard_id, terms in union_plan.items()
                }
                fetched = {}
                for shard_id, future in futures.items():
                    postings, start_s, end_s = future.result()
                    fetched[shard_id] = postings
                    if detail is not None:
                        contact_spans.append(
                            (
                                shard_id,
                                len(union_plan[shard_id]),
                                start_s,
                                end_s,
                                submit_s,
                            )
                        )
        except BaseException as exc:  # pragma: no cover - defensive
            for item in batch:
                item.error = exc
            return
        fanout_ids: dict[int, int | None] = {}
        fanout_s: dict[int, float] = {}
        for sink, start_s in fetch_starts:
            end_s = sink.now()
            fanout_ids[id(sink)] = sink.stage("fanout", start_s, end_s)
            fanout_s[id(sink)] = end_s - start_s
        if detail is not None:
            parent = fanout_ids.get(id(detail))
            for shard_id, n_terms, start_s, end_s, submit_s in contact_spans:
                detail.event(
                    "shard",
                    start_s,
                    end_s,
                    parent=parent,
                    shard=shard_id,
                    terms=n_terms,
                    queue_wait_ms=round(
                        max(0.0, start_s - submit_s) * 1000.0, 4
                    ),
                )
        # Split the shared fetch back into per-query partials and rank:
        # each query's hit stream is one concatenate over the postings
        # arrays of its own terms, merged by one np.unique pass.
        split_s: dict[int, list] = {}
        for item in batch:
            sink = item.trace
            try:
                merge_start = sink.now()
                chunks: list[np.ndarray] = []
                for shard_id, shard_terms in item.prepared.plan.items():
                    postings = fetched[shard_id]
                    for term in shard_terms:
                        posting = postings.get(term)
                        if posting is not None:
                            chunks.append(posting)
                matches = merge_hits(chunks)
                merge_end = sink.now()
                item.results, scoring = self.index.rank_matches(
                    item.prepared, matches, item.limit, item.max_distance
                )
                rank_end = sink.now()
                if sink.detail:
                    # Detail keeps one merge/rank span per query.
                    sink.stage("merge", merge_start, merge_end)
                    sink.stage("rank", merge_end, rank_end)
                elif sink is not NO_TRACE:
                    # Below detail only the per-sink totals matter, so
                    # fold them locally and record once after the loop
                    # instead of taking the trace lock per item.
                    totals = split_s.setdefault(id(sink), [sink, 0.0, 0.0])
                    totals[1] += merge_end - merge_start
                    totals[2] += rank_end - merge_end
                item.stats = self._stats(
                    item.prepared,
                    matches,
                    batch_size=len(batch),
                    scoring=scoring,
                    stage_ms=self._stage_ms(
                        sink,
                        fanout_s.get(id(sink), 0.0),
                        merge_end - merge_start,
                        rank_end - merge_end,
                    ),
                )
            except BaseException as exc:
                item.error = exc
        for sink, merge_s, rank_s in split_s.values():
            sink.stage("merge", 0.0, merge_s)
            sink.stage("rank", 0.0, rank_s)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def shard_contact_counts(self) -> dict[int, int]:
        """Lifetime contact count per shard id (fan-out balance feed)."""
        with self._contact_lock:
            return dict(self._contact_counts)

    def _stats(
        self,
        prepared: PreparedQuery,
        matches: MatchCounts,
        batch_size: int,
        scoring: ScoringStats | None = None,
        stage_ms: tuple[tuple[str, float], ...] = (),
    ) -> ExecutionStats:
        fanout = self.index.fanout_stats(prepared, matches, scoring)
        pooled = self._pool is not None
        return ExecutionStats(
            query_terms=fanout.query_terms,
            shards_contacted=fanout.shards_contacted,
            nodes_contacted=fanout.nodes_contacted,
            candidates=fanout.candidates,
            fanout_width=(
                min(self.pool_size, fanout.shards_contacted)
                if pooled else 1
            ),
            batch_size=batch_size,
            pooled=pooled,
            pruned=fanout.pruned,
            stage_ms=stage_ms,
        )
