"""Thread-safe LRU caching with generation-counter invalidation.

The serving tier keeps two caches:

* a *result cache* keyed by ``(terms digest, points digest | None, spec
  key)`` — the points digest is only present for exact modes, where two
  queries with identical fingerprint terms can still have different
  exact distances, and the spec key folds in every
  :class:`~..core.query.QuerySpec` field that changes the answer
  (mode, metric, limit, max_distance, overfetch, band).  Entries are
  tagged with the index generation they were computed at.
  The service purges this cache eagerly (:meth:`LRUCache.invalidate_all`)
  whenever a write bumps the generation; the per-entry tags are
  defense-in-depth for embedders that mutate the index directly — a
  stale entry still misses (and is dropped) on its next lookup;
* a *fingerprint cache* keyed by a digest of the raw query points, which
  needs no invalidation because fingerprints depend only on the pipeline
  configuration, never on index contents.

Both are instances of the same :class:`LRUCache`; the generation tag is
simply unused (``None``) for fingerprints.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Sequence

from ..geo.point import Point

__all__ = ["CacheStats", "LRUCache", "digest_points", "digest_terms", "MISS"]

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS: Any = object()


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counters of one cache's lifetime behaviour."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class LRUCache:
    """A bounded, thread-safe LRU map with optional generation tags.

    ``put`` stores a value tagged with a generation; ``get`` with a
    different generation treats the entry as invalidated — it is removed
    and counted separately from capacity evictions, so the ``/stats``
    endpoint can distinguish churn caused by writes from churn caused by
    a too-small cache.  ``capacity=0`` disables the cache entirely
    (every ``get`` misses, ``put`` is a no-op).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative (0 disables)")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[object, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key: Hashable, generation: object = None) -> Any:
        """Value for ``key`` at ``generation``, or :data:`MISS`."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return MISS
            stored_generation, value = entry
            if stored_generation != generation:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return MISS
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any, generation: object = None) -> None:
        """Store ``value`` under ``key`` tagged with ``generation``."""
        if self.capacity == 0:  # caching disabled
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (generation, value)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def invalidate_all(self) -> None:
        """Drop every entry, counting each as an invalidation.

        Called by the service when a write bumps the generation: every
        entry is unreturnable from that moment, so purging eagerly frees
        the memory instead of leaving dead entries to be discovered one
        probe at a time.
        """
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                capacity=self.capacity,
            )


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------

def digest_points(points: Sequence[Point]) -> bytes:
    """Stable digest of a raw query trajectory (fingerprint-cache key)."""
    hasher = hashlib.blake2b(digest_size=16)
    for point in points:
        hasher.update(struct.pack("<dd", point.lat, point.lon))
    return hasher.digest()


def digest_terms(terms: Iterable[int]) -> bytes:
    """Stable digest of a query's normalized term set (result-cache key).

    Terms are hashed sorted and deduplicated, so two queries with the
    same term *set* share a cache slot regardless of selection order.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for term in sorted(set(terms)):
        hasher.update(struct.pack("<Q", term & 0xFFFFFFFFFFFFFFFF))
    return hasher.digest()
