"""The concurrent query-serving subsystem (the repo's serving tier).

Layers, bottom up:

* :mod:`repro.service.locks` — reader/writer locking;
* :mod:`repro.service.cache` — generation-invalidated LRU caches;
* :mod:`repro.service.executor` — worker-pool shard fan-out with
  micro-batching over the sharded index;
* :mod:`repro.service.metrics` — qps / latency-quantile / hit-rate
  registry;
* :mod:`repro.service.service` — the :class:`IndexService` facade tying
  the above together;
* :mod:`repro.service.http` — the stdlib JSON HTTP API
  (``repro.cli serve``).
"""

from .cache import CacheStats, LRUCache, digest_points, digest_terms
from .executor import ExecutionStats, QueryExecutor
from .http import ServiceHTTPServer, start_server
from .locks import ReadWriteLock
from .metrics import MetricsSnapshot, ServiceMetrics
from .service import CompactionPolicy, IndexService, QueryResponse

__all__ = [
    "CacheStats",
    "CompactionPolicy",
    "ExecutionStats",
    "IndexService",
    "LRUCache",
    "MetricsSnapshot",
    "QueryExecutor",
    "QueryResponse",
    "ReadWriteLock",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "digest_points",
    "digest_terms",
    "start_server",
]
