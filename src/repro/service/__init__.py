"""The concurrent query-serving subsystem (the repo's serving tier).

Layers, bottom up:

* :mod:`repro.service.locks` — reader/writer locking;
* :mod:`repro.service.cache` — generation-invalidated LRU caches;
* :mod:`repro.service.executor` — worker-pool shard fan-out with
  micro-batching over the sharded index;
* :mod:`repro.service.metrics` — counters, log-scale latency
  histograms, Prometheus exposition, and the slow-query log;
* :mod:`repro.service.tracing` — per-request spans and trace ids;
* :mod:`repro.service.service` — the :class:`IndexService` facade tying
  the above together;
* :mod:`repro.service.http` — the stdlib JSON HTTP API
  (``repro.cli serve``).
"""

from .cache import CacheStats, LRUCache, digest_points, digest_terms
from .executor import ExecutionStats, QueryExecutor
from .http import ServiceHTTPServer, start_server
from .locks import ReadWriteLock
from .metrics import (
    LatencyHistogram,
    MetricsSnapshot,
    ServiceMetrics,
    SlowQueryLog,
    prometheus_text,
)
from .service import CompactionPolicy, IndexService, QueryResponse
from .tracing import Span, Trace, new_trace_id

__all__ = [
    "CacheStats",
    "CompactionPolicy",
    "ExecutionStats",
    "IndexService",
    "LRUCache",
    "LatencyHistogram",
    "MetricsSnapshot",
    "QueryExecutor",
    "QueryResponse",
    "ReadWriteLock",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "SlowQueryLog",
    "Span",
    "Trace",
    "digest_points",
    "digest_terms",
    "new_trace_id",
    "prometheus_text",
    "start_server",
]
