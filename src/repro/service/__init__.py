"""The concurrent query-serving subsystem (the repo's serving tier).

Layers, bottom up:

* :mod:`repro.service.locks` — reader/writer locking;
* :mod:`repro.service.cache` — generation-invalidated LRU caches;
* :mod:`repro.service.transport` — pluggable shard transports (the
  in-process calls, the local worker-process pool, the remote HTTP
  stub) plus the shared wire format;
* :mod:`repro.service.worker` — the shard-serving worker process
  (``python -m repro.service.worker``) behind the process transport;
* :mod:`repro.service.executor` — scatter-gather shard fan-out through
  a transport, with micro-batching, per-shard timeouts, hedged retries,
  and failover;
* :mod:`repro.service.metrics` — counters, log-scale latency
  histograms, Prometheus exposition, and the slow-query log;
* :mod:`repro.service.tracing` — per-request spans and trace ids;
* :mod:`repro.service.service` — the :class:`IndexService` facade tying
  the above together;
* :mod:`repro.service.http` — the stdlib JSON HTTP API
  (``repro.cli serve``), with admission control and graceful shutdown.
"""

from .cache import CacheStats, LRUCache, digest_points, digest_terms
from .executor import ExecutionStats, QueryExecutor
from .http import ServiceHTTPServer, shutdown_gracefully, start_server
from .locks import ReadWriteLock
from .metrics import (
    LatencyHistogram,
    MetricsSnapshot,
    ServiceMetrics,
    SlowQueryLog,
    prometheus_text,
)
from .service import CompactionPolicy, IndexService, QueryResponse
from .tracing import Span, Trace, new_trace_id
from .transport import (
    InProcessTransport,
    RemoteHttpTransport,
    ShardTransport,
    TransportError,
    WorkerProcessTransport,
)
from .worker import ShardWorker

__all__ = [
    "CacheStats",
    "CompactionPolicy",
    "ExecutionStats",
    "InProcessTransport",
    "IndexService",
    "LRUCache",
    "LatencyHistogram",
    "MetricsSnapshot",
    "QueryExecutor",
    "QueryResponse",
    "ReadWriteLock",
    "RemoteHttpTransport",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "ShardTransport",
    "ShardWorker",
    "SlowQueryLog",
    "Span",
    "Trace",
    "TransportError",
    "WorkerProcessTransport",
    "digest_points",
    "digest_terms",
    "new_trace_id",
    "prometheus_text",
    "shutdown_gracefully",
    "start_server",
]
