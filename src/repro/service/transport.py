"""Pluggable shard transports: how the executor reaches shard storage.

The :class:`~repro.service.executor.QueryExecutor` used to call
``index.shard_partial`` directly, which pins every shard lookup inside
the coordinator process — fan-out "parallelism" was threads sharing one
GIL no matter how many shards exist.  This module cuts the executor
along that seam: a :class:`ShardTransport` answers the two per-shard
operations (``shard_partial`` for single queries, ``shard_postings``
for micro-batches) over *some* shard backend, and three implementations
plug in:

* :class:`InProcessTransport` — the original behavior: direct calls
  into the served index (one logical shard set, zero copies).
* :class:`WorkerProcessTransport` — a local process pool.  Each worker
  (``python -m repro.service.worker``) ``np.memmap``s the published v2
  snapshot directory, so N workers share one copy of the postings blobs
  through the page cache, and serves shard partials over a
  length-prefixed JSON/numpy-frame socket protocol.  Any worker can
  serve any shard, so retries and hedges naturally land on a different
  process; dead workers are detected on socket failure and respawned by
  :meth:`~WorkerProcessTransport.maintain` (driven by the service's
  maintenance tick).
* :class:`RemoteHttpTransport` — a deliberately small remote stub: the
  same wire format POSTed to ``<endpoint>/shard``, standing in for a
  real scale-out tier (one endpoint per node) without inventing a
  second serialization.

Wire format (shared by the socket protocol and the HTTP stub): a
4-byte magic, a u32 length-prefixed JSON header, then the raw bytes of
each numpy array announced by the header's ``arrays`` list as
``[dtype, length]`` pairs.  Arrays are 1-D; the header carries all
non-array metadata (op, shard id, error text, timings), so one
``pack_frame``/``unpack_frame`` pair covers every message in both
directions.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Protocol, Sequence

import numpy as np

from ..core.postings import EMPTY_HITS
from ..core.registry import DEFAULT_VARIANT

__all__ = [
    "InProcessTransport",
    "RemoteHttpTransport",
    "ShardTransport",
    "TransportError",
    "WorkerProcessTransport",
    "pack_frame",
    "recv_frame",
    "send_frame",
    "unpack_frame",
]

#: Wire-format magic: geodab worker protocol, version 1.
FRAME_MAGIC = b"GDW1"
_LEN = struct.Struct("<I")
#: Largest header/array frame accepted (corrupt length prefixes must
#: not trigger gigabyte allocations).
MAX_FRAME_BYTES = 256 * 1024 * 1024


class TransportError(Exception):
    """A shard contact failed at the transport layer.

    The executor treats this as a *retriable* infrastructure failure
    (failover / hedge / degraded result) — anything else escaping a
    transport is a programming error and propagates.
    """


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------


def pack_frame(header: dict, arrays: Sequence[np.ndarray] = ()) -> bytes:
    """Serialize one message: magic + JSON header + raw array bytes.

    The header gains an ``arrays`` key listing ``[dtype, length]`` per
    array so the receiver can slice them back out with zero parsing of
    the payload bytes.
    """
    arrays = [np.ascontiguousarray(a) for a in arrays]
    header = dict(header)
    header["arrays"] = [[a.dtype.str, int(a.size)] for a in arrays]
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [FRAME_MAGIC, _LEN.pack(len(head)), head]
    for array in arrays:
        parts.append(array.tobytes())
    return b"".join(parts)


def unpack_frame(blob: bytes | memoryview) -> tuple[dict, list[np.ndarray]]:
    """Inverse of :func:`pack_frame` over a complete in-memory message."""
    view = memoryview(blob)
    if bytes(view[:4]) != FRAME_MAGIC:
        raise TransportError("bad frame magic")
    (head_len,) = _LEN.unpack(view[4:8])
    if head_len > MAX_FRAME_BYTES:
        raise TransportError(f"header of {head_len} bytes exceeds frame limit")
    header = json.loads(bytes(view[8:8 + head_len]).decode("utf-8"))
    arrays: list[np.ndarray] = []
    offset = 8 + head_len
    for dtype_str, size in header.pop("arrays", []):
        dtype = np.dtype(dtype_str)
        nbytes = dtype.itemsize * size
        if nbytes > MAX_FRAME_BYTES:
            raise TransportError(f"array of {nbytes} bytes exceeds frame limit")
        chunk = view[offset:offset + nbytes]
        if chunk.nbytes != nbytes:
            raise TransportError("truncated array payload")
        arrays.append(np.frombuffer(chunk, dtype=dtype).copy())
        offset += nbytes
    return header, arrays


def send_frame(
    sock: socket.socket, header: dict, arrays: Sequence[np.ndarray] = ()
) -> None:
    """Write one length-prefixed message to a stream socket."""
    payload = pack_frame(header, arrays)
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    remaining = size
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TransportError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[dict, list[np.ndarray]]:
    """Read one length-prefixed message; raises on EOF or corruption."""
    (size,) = _LEN.unpack(_recv_exact(sock, 4))
    if size > MAX_FRAME_BYTES:
        raise TransportError(f"message of {size} bytes exceeds frame limit")
    return unpack_frame(_recv_exact(sock, size))


def _shard_header(op: str, shard_id: int, variant: str) -> dict:
    """Request header for one shard op; the default variant stays
    implicit on the wire so pre-registry workers keep interoperating."""
    header = {"op": op, "shard": int(shard_id)}
    if variant != DEFAULT_VARIANT:
        header["variant"] = variant
    return header


# ----------------------------------------------------------------------
# Transport protocol
# ----------------------------------------------------------------------


class ShardTransport(Protocol):
    """How the executor reaches a shard set.

    ``attempt`` distinguishes a primary contact (0) from a failover or
    hedge retry (1); transports that can route to independent backends
    use it to pick a *different* one, so a retry never re-asks the
    process that just failed.  ``meta``, when provided, is filled with
    transport detail (worker pid, server-side timing) for trace spans.
    ``variant`` names the fingerprint variant whose postings answer the
    lookup — the registry's default when omitted, so pre-registry
    callers read exactly the columns they always did.
    """

    @property
    def kind(self) -> str: ...

    def shard_partial(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> np.ndarray: ...

    def shard_postings(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> dict[int, np.ndarray]: ...

    def shard_term_counts(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> np.ndarray: ...

    def shard_counts(
        self,
        shard_id: int,
        terms: Sequence[int],
        candidates: np.ndarray,
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> tuple[np.ndarray, int]: ...

    def stats(self) -> dict: ...

    def maintain(self) -> dict: ...

    def close(self) -> None: ...


class InProcessTransport:
    """Direct calls into the served index (the original executor path)."""

    kind = "inprocess"

    def __init__(self, index) -> None:
        self.index = index

    def shard_partial(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> np.ndarray:
        return self.index.shard_partial(shard_id, terms, variant)

    def shard_postings(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> dict[int, np.ndarray]:
        return self.index.shard_postings(shard_id, terms, variant)

    def shard_term_counts(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> np.ndarray:
        return self.index.shard_term_counts(shard_id, terms, variant)

    def shard_counts(
        self,
        shard_id: int,
        terms: Sequence[int],
        candidates: np.ndarray,
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> tuple[np.ndarray, int]:
        return self.index.shard_counts(shard_id, terms, candidates, variant)

    def stats(self) -> dict:
        return {"kind": self.kind}

    def maintain(self) -> dict:
        return {}

    def close(self) -> None:
        return None


# ----------------------------------------------------------------------
# Worker-process transport
# ----------------------------------------------------------------------


class _WorkerHandle:
    """One supervised worker process plus its idle-connection pool."""

    __slots__ = (
        "slot",
        "proc",
        "port",
        "pid",
        "lock",
        "idle",
        "alive",
        "requests",
        "errors",
    )

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.proc: subprocess.Popen | None = None
        self.port = 0
        self.pid = 0
        self.lock = threading.Lock()
        self.idle: deque[socket.socket] = deque()
        self.alive = False
        self.requests = 0
        self.errors = 0

    def drop_connections(self) -> None:
        with self.lock:
            while self.idle:
                try:
                    self.idle.popleft().close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass


class WorkerProcessTransport:
    """Shard serving over a supervised pool of snapshot-mmap workers.

    Every worker attaches the *whole* published snapshot (memory-mapped,
    so the postings pages are shared between workers through the OS page
    cache) and can therefore serve any shard: shard ``s`` routes to
    worker ``(s + attempt) % n``, which spreads primaries round-robin
    and guarantees a retry lands on a different process while any two
    are alive.

    Failure model: a socket error marks the worker dead and raises
    :class:`TransportError`; the executor retries against the next
    worker.  :meth:`maintain` (called from the service's maintenance
    tick) reaps and respawns dead workers.  :meth:`refresh` re-points
    live workers at a newly published snapshot.
    """

    kind = "process"

    #: Idle sockets kept per worker; beyond this they are closed rather
    #: than pooled (fan-out width bounds useful concurrency anyway).
    MAX_IDLE_PER_WORKER = 16

    def __init__(
        self,
        snapshot_path: str | Path,
        num_workers: int = 2,
        spawn_timeout_s: float = 30.0,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float | None = 30.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.snapshot_path = Path(snapshot_path)
        self.num_workers = num_workers
        self.spawn_timeout_s = spawn_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self._respawns = 0
        self._state_lock = threading.Lock()
        self._closed = False
        self._workers = [_WorkerHandle(slot) for slot in range(num_workers)]
        try:
            for handle in self._workers:
                self._spawn(handle)
        except BaseException:
            self.close()
            raise

    # -- lifecycle ------------------------------------------------------

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or restart) the worker in ``handle``'s slot."""
        # ``-c`` rather than ``-m``: the package __init__ imports
        # ``.worker`` for its exports, and runpy warns when asked to
        # re-execute a module that an import already materialized.
        cmd = [
            sys.executable,
            "-c",
            "import sys; from repro.service.worker import main; "
            "sys.exit(main(sys.argv[1:]))",
            "--snapshot",
            str(self.snapshot_path),
            "--parent-pid",
            str(os.getpid()),
        ]
        # The child must find ``repro`` however the parent did — an
        # installed package needs nothing, but a source checkout run
        # via sys.path manipulation (pytest, PYTHONPATH=src) must pass
        # the package root along explicitly.
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        if existing:
            if package_root not in existing.split(os.pathsep):
                env["PYTHONPATH"] = package_root + os.pathsep + existing
        else:
            env["PYTHONPATH"] = package_root
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=None,  # worker stderr shows up in the server's log
            text=True,
            env=env,
        )
        try:
            line = self._read_ready_line(proc)
        except BaseException:
            proc.terminate()
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait()
            raise
        fields = dict(
            part.split("=", 1) for part in line.split() if "=" in part
        )
        handle.proc = proc
        handle.port = int(fields["port"])
        handle.pid = int(fields.get("pid", proc.pid))
        handle.alive = True
        handle.drop_connections()

    def _read_ready_line(self, proc: subprocess.Popen) -> str:
        """Wait for the worker's READY handshake line, with a deadline."""
        assert proc.stdout is not None
        deadline = time.monotonic() + self.spawn_timeout_s
        sel = selectors.DefaultSelector()
        sel.register(proc.stdout, selectors.EVENT_READ)
        try:
            buffered = ""
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError(
                        f"worker did not report ready within "
                        f"{self.spawn_timeout_s:.0f}s"
                    )
                if not sel.select(timeout=min(remaining, 0.25)):
                    if proc.poll() is not None:
                        raise TransportError(
                            f"worker exited with status {proc.returncode} "
                            "during startup"
                        )
                    continue
                line = proc.stdout.readline()
                if not line:
                    raise TransportError(
                        f"worker exited with status {proc.poll()} "
                        "before reporting ready"
                    )
                buffered = line.strip()
                if buffered.startswith("GEODAB-WORKER READY"):
                    return buffered
        finally:
            sel.close()

    def maintain(self) -> dict:
        """Reap dead workers and respawn them; returns what happened.

        Driven by :meth:`IndexService.maintenance_tick` so a worker
        killed mid-load is back within one tick; also safe to call
        directly (tests, embedders).
        """
        respawned: list[int] = []
        failed: list[int] = []
        with self._state_lock:
            if self._closed:
                return {"respawned": [], "failed": []}
            for handle in self._workers:
                proc = handle.proc
                dead = not handle.alive or proc is None or proc.poll() is not None
                if not dead:
                    continue
                if proc is not None and proc.poll() is None:
                    # Marked dead on a socket error but the process is
                    # still up (wedged or mid-crash): replace it.
                    proc.terminate()
                    try:
                        proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:  # pragma: no cover
                        proc.kill()
                        proc.wait()
                try:
                    self._spawn(handle)
                except (TransportError, OSError, ValueError, KeyError):
                    handle.alive = False
                    failed.append(handle.slot)
                else:
                    respawned.append(handle.slot)
                    self._respawns += 1
        return {"respawned": respawned, "failed": failed}

    def refresh(self, snapshot_path: str | Path) -> dict:
        """Point workers at a newly published snapshot (post-publish)."""
        self.snapshot_path = Path(snapshot_path)
        refreshed: list[int] = []
        failed: list[int] = []
        for handle in self._workers:
            if not handle.alive:
                continue  # picks the new path up at respawn
            try:
                header, _ = self._request(
                    handle, {"op": "attach", "snapshot": str(self.snapshot_path)}
                )
                if not header.get("ok"):
                    raise TransportError(header.get("error", "attach failed"))
            except TransportError:
                failed.append(handle.slot)
            else:
                refreshed.append(handle.slot)
        return {"refreshed": refreshed, "failed": failed}

    def close(self) -> None:
        """Shut every worker down and reap the processes (no orphans)."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        for handle in workers:
            proc = handle.proc
            if proc is not None and proc.poll() is None and handle.alive:
                try:
                    with self._connection(handle) as sock:
                        send_frame(sock, {"op": "shutdown"})
                except (TransportError, OSError):
                    pass
            handle.alive = False
            handle.drop_connections()
        for handle in workers:
            proc = handle.proc
            if proc is None:
                continue
            if proc.poll() is None:
                proc.terminate()
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()

    # -- request plumbing ----------------------------------------------

    class _connection:
        """Checkout/checkin of one pooled socket for a worker."""

        def __init__(self, handle: _WorkerHandle) -> None:
            self.handle = handle
            self.sock: socket.socket | None = None
            self.ok = False

        def __enter__(self) -> socket.socket:
            handle = self.handle
            with handle.lock:
                sock = handle.idle.popleft() if handle.idle else None
            if sock is None:
                sock = socket.create_connection(
                    ("127.0.0.1", handle.port), timeout=5.0
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.sock = sock
            return sock

        def __exit__(self, exc_type, exc, tb) -> None:
            sock = self.sock
            if sock is None:
                return
            handle = self.handle
            if exc_type is None and self.ok:
                with handle.lock:
                    if (
                        handle.alive
                        and len(handle.idle)
                        < WorkerProcessTransport.MAX_IDLE_PER_WORKER
                    ):
                        handle.idle.append(sock)
                        return
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def _request(
        self,
        handle: _WorkerHandle,
        header: dict,
        arrays: Sequence[np.ndarray] = (),
    ) -> tuple[dict, list[np.ndarray]]:
        """One request/response round-trip against a specific worker."""
        conn = self._connection(handle)
        try:
            with conn as sock:
                sock.settimeout(self.request_timeout_s)
                send_frame(sock, header, arrays)
                response, payload = recv_frame(sock)
                conn.ok = True
        except (OSError, TransportError, ValueError) as exc:
            self._mark_dead(handle)
            raise TransportError(
                f"worker {handle.slot} (pid {handle.pid}) failed: {exc}"
            ) from exc
        with handle.lock:
            handle.requests += 1
        if not response.get("ok"):
            # The worker answered but refused: an application-level
            # error (bad shard id, detached snapshot), not a dead
            # process — don't kill the worker for it.
            raise TransportError(
                f"worker {handle.slot}: {response.get('error', 'unknown error')}"
            )
        return response, payload

    def _mark_dead(self, handle: _WorkerHandle) -> None:
        with handle.lock:
            handle.alive = False
            handle.errors += 1
        handle.drop_connections()

    def _pick(self, shard_id: int, attempt: int) -> _WorkerHandle:
        """Deterministic shard→worker routing that skips dead workers."""
        n = len(self._workers)
        for offset in range(n):
            handle = self._workers[(shard_id + attempt + offset) % n]
            if handle.alive:
                return handle
        raise TransportError("no live workers")

    # -- shard operations ----------------------------------------------

    def shard_partial(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> np.ndarray:
        handle = self._pick(shard_id, attempt)
        header, payload = self._request(
            handle,
            _shard_header("partial", shard_id, variant),
            [np.asarray(list(terms), dtype=np.int64)],
        )
        if meta is not None:
            meta["worker"] = handle.slot
            meta["pid"] = handle.pid
            if "elapsed_us" in header:
                meta["worker_us"] = header["elapsed_us"]
        return payload[0] if payload else EMPTY_HITS

    def shard_postings(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> dict[int, np.ndarray]:
        handle = self._pick(shard_id, attempt)
        header, payload = self._request(
            handle,
            _shard_header("postings", shard_id, variant),
            [np.asarray(list(terms), dtype=np.int64)],
        )
        if meta is not None:
            meta["worker"] = handle.slot
            meta["pid"] = handle.pid
        return dict(zip(header.get("terms", []), payload))

    def shard_term_counts(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> np.ndarray:
        handle = self._pick(shard_id, attempt)
        header, payload = self._request(
            handle,
            _shard_header("dfs", shard_id, variant),
            [np.asarray(list(terms), dtype=np.int64)],
        )
        if meta is not None:
            meta["worker"] = handle.slot
            meta["pid"] = handle.pid
        if payload:
            return payload[0]
        return np.zeros(len(terms), dtype=np.int64)

    def shard_counts(
        self,
        shard_id: int,
        terms: Sequence[int],
        candidates: np.ndarray,
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> tuple[np.ndarray, int]:
        handle = self._pick(shard_id, attempt)
        header, payload = self._request(
            handle,
            _shard_header("complete", shard_id, variant),
            [
                np.asarray(list(terms), dtype=np.int64),
                np.ascontiguousarray(candidates, dtype=np.int64),
            ],
        )
        if meta is not None:
            meta["worker"] = handle.slot
            meta["pid"] = handle.pid
        delta = (
            payload[0]
            if payload
            else np.zeros(len(candidates), dtype=np.int64)
        )
        return delta, int(header.get("postings_skipped", 0))

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        workers = []
        for handle in self._workers:
            proc = handle.proc
            workers.append(
                {
                    "slot": handle.slot,
                    "pid": handle.pid,
                    "alive": bool(
                        handle.alive and proc is not None and proc.poll() is None
                    ),
                    "requests": handle.requests,
                    "errors": handle.errors,
                }
            )
        return {
            "kind": self.kind,
            "snapshot": str(self.snapshot_path),
            "workers": workers,
            "respawns": self._respawns,
        }


# ----------------------------------------------------------------------
# Remote HTTP transport (stub)
# ----------------------------------------------------------------------


class RemoteHttpTransport:
    """Shard contacts POSTed to remote endpoints — the scale-out stub.

    Reuses the worker wire format verbatim as the HTTP request/response
    bodies (``POST <endpoint>/shard``), so a remote shard server is the
    worker's request handler behind any HTTP front end.  Deliberately
    minimal: one connection per request, no pooling — it exists to pin
    the wire contract down, not to be the production data path yet.
    ``attempt`` routes to a different endpoint when several are given.
    """

    kind = "http"

    def __init__(
        self, endpoints: Sequence[str], timeout_s: float = 30.0
    ) -> None:
        if not endpoints:
            raise ValueError("at least one endpoint required")
        self.endpoints = [e.rstrip("/") for e in endpoints]
        self.timeout_s = timeout_s
        self._requests = 0
        self._errors = 0
        self._lock = threading.Lock()

    def _post(
        self, shard_id: int, attempt: int, header: dict, arrays
    ) -> tuple[dict, list[np.ndarray]]:
        import http.client
        import urllib.parse

        endpoint = self.endpoints[(shard_id + attempt) % len(self.endpoints)]
        parsed = urllib.parse.urlparse(endpoint)
        body = pack_frame(header, arrays)
        try:
            conn = http.client.HTTPConnection(
                parsed.hostname or "127.0.0.1",
                parsed.port or 80,
                timeout=self.timeout_s,
            )
            try:
                conn.request(
                    "POST",
                    (parsed.path or "") + "/shard",
                    body=body,
                    headers={"Content-Type": "application/octet-stream"},
                )
                response = conn.getresponse()
                blob = response.read()
                if response.status != 200:
                    raise TransportError(
                        f"{endpoint}/shard returned {response.status}"
                    )
            finally:
                conn.close()
        except (OSError, TransportError) as exc:
            with self._lock:
                self._errors += 1
            raise TransportError(f"{endpoint}: {exc}") from exc
        with self._lock:
            self._requests += 1
        out_header, payload = unpack_frame(blob)
        if not out_header.get("ok"):
            raise TransportError(
                f"{endpoint}: {out_header.get('error', 'unknown error')}"
            )
        return out_header, payload

    def shard_partial(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> np.ndarray:
        header, payload = self._post(
            shard_id,
            attempt,
            _shard_header("partial", shard_id, variant),
            [np.asarray(list(terms), dtype=np.int64)],
        )
        if meta is not None and "elapsed_us" in header:
            meta["worker_us"] = header["elapsed_us"]
        return payload[0] if payload else EMPTY_HITS

    def shard_postings(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> dict[int, np.ndarray]:
        header, payload = self._post(
            shard_id,
            attempt,
            _shard_header("postings", shard_id, variant),
            [np.asarray(list(terms), dtype=np.int64)],
        )
        return dict(zip(header.get("terms", []), payload))

    def shard_term_counts(
        self,
        shard_id: int,
        terms: Sequence[int],
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> np.ndarray:
        header, payload = self._post(
            shard_id,
            attempt,
            _shard_header("dfs", shard_id, variant),
            [np.asarray(list(terms), dtype=np.int64)],
        )
        if payload:
            return payload[0]
        return np.zeros(len(terms), dtype=np.int64)

    def shard_counts(
        self,
        shard_id: int,
        terms: Sequence[int],
        candidates: np.ndarray,
        attempt: int = 0,
        meta: dict | None = None,
        variant: str = DEFAULT_VARIANT,
    ) -> tuple[np.ndarray, int]:
        header, payload = self._post(
            shard_id,
            attempt,
            _shard_header("complete", shard_id, variant),
            [
                np.asarray(list(terms), dtype=np.int64),
                np.ascontiguousarray(candidates, dtype=np.int64),
            ],
        )
        delta = (
            payload[0]
            if payload
            else np.zeros(len(candidates), dtype=np.int64)
        )
        return delta, int(header.get("postings_skipped", 0))

    def stats(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "endpoints": list(self.endpoints),
                "requests": self._requests,
                "errors": self._errors,
            }

    def maintain(self) -> dict:
        return {}

    def close(self) -> None:
        return None
