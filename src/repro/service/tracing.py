"""End-to-end query tracing: spans, traces, and per-request trace ids.

One :class:`Trace` accompanies one request through the serving tier —
``IndexService.query``/``query_many`` open it, the executor and index
backends report into it through the :class:`~repro.core.query.TraceSink`
protocol, and ``POST /query?trace=1`` returns its span tree.

Two recording levels share one class so the hot path stays cheap:

* **stage accounting** (always on when metrics are enabled) — every
  :meth:`Trace.stage` call folds its duration into a small per-name
  dict; the service feeds those totals to the per-stage latency
  histograms.  No span objects are built.
* **detail** (``detail=True``: explicit ``?trace=1`` or sampled by
  ``--trace-sample``) — stages *and* events additionally append
  :class:`Span` records, and :meth:`Trace.as_dict` assembles the span
  tree for the response.

When even stage accounting is unwanted, pass
:data:`~repro.core.query.NO_TRACE` — its ``now()`` never reads the
clock and its recorders drop everything, so instrumented call sites
cost two attribute calls and nothing else.

Clocks are injectable (monotonic ``perf_counter`` by default) so tests
drive exact span arithmetic with a fake clock.  Detail-trace span
appends go through one lock (the executor's worker threads time their
shard contacts locally and the coordinating thread records them, but
nothing stops an embedder recording from several threads).  Below
detail there is no lock at all: stage aggregation is plain dict
arithmetic, and the serving tier records into each trace from a single
thread at a time.
"""

from __future__ import annotations

import itertools
import logging
import threading
from contextlib import nullcontext
from time import perf_counter
from typing import Callable

__all__ = ["Span", "Trace", "new_trace_id", "trace_logger"]

#: Sampled detail traces (``--trace-sample``) are emitted through this
#: logger as single-line JSON — the response shape never depends on a
#: server-side dice roll; attach a handler to ship them somewhere.
trace_logger = logging.getLogger("repro.service.trace")

#: Process-wide trace-id sequence; combined with the process start clock
#: reading so ids stay unique (and cheap — no entropy pool reads on the
#: query path).
_TRACE_SEQ = itertools.count(1)
_TRACE_EPOCH = int(perf_counter() * 1e9) & 0xFFFFFFFF

#: Shared empty span list for below-detail traces (never appended to —
#: only detail traces, which allocate their own list, record spans).
_NO_SPANS: list = []


def new_trace_id() -> str:
    """A process-unique 16-hex-digit trace id."""
    return f"{_TRACE_EPOCH:08x}{next(_TRACE_SEQ) & 0xFFFFFFFF:08x}"


class Span:
    """One recorded operation: a name, a window, optional metadata."""

    __slots__ = ("span_id", "parent", "name", "start_s", "duration_s", "meta")

    def __init__(
        self,
        span_id: int,
        parent: int | None,
        name: str,
        start_s: float,
        duration_s: float,
        meta: dict | None,
    ) -> None:
        self.span_id = span_id
        self.parent = parent
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s
        self.meta = meta

    def as_dict(self) -> dict:
        """JSON-ready flat form (offsets relative to the trace start)."""
        payload: dict = {
            "name": self.name,
            "start_ms": round(self.start_s * 1000.0, 4),
            "duration_ms": round(self.duration_s * 1000.0, 4),
        }
        if self.meta:
            payload.update(self.meta)
        return payload


class Trace:
    """One request's trace: stage totals plus (optionally) a span tree.

    Implements :class:`~repro.core.query.TraceSink`.  ``start_s`` is
    captured at construction; span offsets in :meth:`as_dict` are
    relative to it.
    """

    __slots__ = (
        "_trace_id",
        "detail",
        "now",
        "_lock",
        "_start_s",
        "_next_id",
        "_spans",
        "_stage_s",
    )

    def __init__(
        self,
        detail: bool = False,
        trace_id: str | None = None,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self.detail = detail
        self._trace_id = trace_id
        # ``now`` is the clock itself (no wrapper frame): instrumented
        # call sites read it many times per request.
        self.now = clock
        # Only detail traces append spans and need a lock; the stage
        # aggregation below detail is plain dict arithmetic, safe for
        # the serving tier's single-writer-per-trace recording.
        self._lock = threading.Lock() if detail else None
        self._start_s = clock()
        self._next_id = 0
        self._spans: list[Span] = [] if detail else _NO_SPANS
        self._stage_s: dict[str, float] = {}

    @property
    def trace_id(self) -> str:
        """The request's id, minted on first use.

        Stage-accounting-only traces on the query hot path usually
        never need one (the id only surfaces in span trees, slow-log
        entries, and sampled trace lines), so generation is deferred.
        """
        if self._trace_id is None:
            self._trace_id = new_trace_id()
        return self._trace_id

    # ------------------------------------------------------------------
    # TraceSink protocol (``now`` is the instance attribute above)
    # ------------------------------------------------------------------

    def stage(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        **meta: object,
    ) -> int | None:
        """Record one pipeline stage; aggregates into the stage totals."""
        duration = end_s - start_s
        if self._lock is None:
            try:
                self._stage_s[name] += duration
            except KeyError:
                self._stage_s[name] = duration
            return None
        with self._lock:
            self._stage_s[name] = self._stage_s.get(name, 0.0) + duration
            return self._append(name, start_s, duration, parent, meta)

    def event(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        **meta: object,
    ) -> int | None:
        """Record a detail-only child span (dropped unless ``detail``)."""
        if self._lock is None:
            return None
        with self._lock:
            return self._append(name, start_s, end_s - start_s, parent, meta)

    def _append(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        parent: int | None,
        meta: dict,
    ) -> int:
        span_id = self._next_id
        self._next_id += 1
        self._spans.append(
            Span(span_id, parent, name, start_s - self._start_s, duration_s, meta)
        )
        return span_id

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def stage_seconds(self) -> dict[str, float]:
        """Accumulated seconds per stage name (histogram feed).

        Below detail this returns the live aggregation dict without
        copying — the hot path reads it exactly once, at the end of the
        request; treat it as read-only.
        """
        if self._lock is None:
            return self._stage_s
        with self._lock:
            return dict(self._stage_s)

    def elapsed_s(self) -> float:
        """Clock time since the trace opened."""
        return self.now() - self._start_s

    def as_dict(self) -> dict:
        """The span tree: children nested under parents, by start time.

        Returned under the ``"trace"`` key of a traced query response.
        Stage totals ride along so consumers need not walk the tree to
        find where the time went.
        """
        lock = self._lock if self._lock is not None else nullcontext()
        with lock:
            spans = list(self._spans)
            stage_ms = {
                name: round(seconds * 1000.0, 4)
                for name, seconds in self._stage_s.items()
            }
        nodes: dict[int, dict] = {}
        roots: list[dict] = []
        for span in spans:
            nodes[span.span_id] = span.as_dict()
        for span in sorted(spans, key=lambda s: (s.start_s, s.span_id)):
            node = nodes[span.span_id]
            if span.parent is not None and span.parent in nodes:
                nodes[span.parent].setdefault("children", []).append(node)
            else:
                roots.append(node)
        return {
            "trace_id": self.trace_id,
            "stages_ms": stage_ms,
            "spans": roots,
        }
