"""Shard-serving worker process: ``python -m repro.service.worker``.

One worker memory-maps the postings blobs of a published snapshot
(:func:`repro.core.persistence.attach_variant_postings` — no bitmaps,
no arena: ranking stays at the coordinator) and answers shard operations
over the length-prefixed frame protocol of
:mod:`repro.service.transport`.  N workers attach the same snapshot and
share its pages through the OS page cache, which is what makes a local
process pool cheap enough to beat the GIL-bound thread fan-out on
CPU-bound workloads.

Protocol (one frame in, one frame out, connections are persistent):

* ``{"op": "ping"}`` → ``{"ok": true, "pid": ...}``
* ``{"op": "partial", "shard": s}`` + terms array → hit-stream array
* ``{"op": "postings", "shard": s}`` + terms array →
  ``{"terms": [...]}`` + one array per present term
* ``{"op": "dfs", "shard": s}`` + terms array → per-term document
  frequencies (the query planner's rarest-first ordering pass)
* ``{"op": "complete", "shard": s}`` + terms array + sorted candidate
  array → per-candidate count deltas plus a ``postings_skipped``
  header count (the planner's post-cut completion runs worker-side so
  skipped postings never cross the wire)
* Shard ops take an optional ``"variant"`` header key naming the
  fingerprint variant to read (default: the registry's default
  variant, which every snapshot carries)
* ``{"op": "attach", "snapshot": path}`` — re-point at a newer snapshot
* ``{"op": "stats"}`` → worker vitals
* ``{"op": "shutdown"}`` — exit cleanly

Every worker serves *all* shards of the snapshot, so the transport can
route any shard to any worker (retries hit a different process).  The
parent passes ``--parent-pid``; a watchdog thread exits the worker when
that process disappears, so a SIGKILLed coordinator never leaks
orphans.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.persistence import attach_variant_postings
from ..core.planner import complete_counts
from ..core.registry import DEFAULT_VARIANT
from .transport import TransportError, recv_frame, send_frame

__all__ = ["ShardWorker", "main"]


class ShardWorker:
    """The worker's request handler, separable from its socket loop.

    ``handle`` maps one request frame to one response frame, so the
    same logic serves the socket protocol here and any HTTP front end
    for :class:`~repro.service.transport.RemoteHttpTransport` (the
    remote-transport tests mount it behind a stdlib HTTP server).
    """

    def __init__(self, snapshot_path: str | Path, mmap_mode: str | None = "r"):
        self.mmap_mode = mmap_mode
        self._lock = threading.Lock()
        self._requests = 0
        self.snapshot_path = Path(snapshot_path)
        # variant name -> shard id -> postings store; v2 snapshots
        # attach as the default variant only.
        self.stores = attach_variant_postings(self.snapshot_path, mmap_mode)

    def handle(
        self, header: dict, arrays: list[np.ndarray]
    ) -> tuple[dict, list[np.ndarray]]:
        """One request → one response; never raises for client errors."""
        with self._lock:
            self._requests += 1
        op = header.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pid": os.getpid()}, []
            if op == "partial":
                return self._partial(header, arrays)
            if op == "postings":
                return self._postings(header, arrays)
            if op == "dfs":
                return self._dfs(header, arrays)
            if op == "complete":
                return self._complete(header, arrays)
            if op == "attach":
                return self._attach(header)
            if op == "stats":
                return {
                    "ok": True,
                    "pid": os.getpid(),
                    "snapshot": str(self.snapshot_path),
                    "shards": sorted(self.stores.get(DEFAULT_VARIANT, {})),
                    "variants": sorted(self.stores),
                    "requests": self._requests,
                }, []
            return {"ok": False, "error": f"unknown op {op!r}"}, []
        except Exception as exc:  # noqa: BLE001 - report, don't die
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}, []

    def _store(self, header: dict):
        variant = header.get("variant", DEFAULT_VARIANT)
        shards = self.stores.get(variant)
        if shards is None:
            raise ValueError(f"no variant {variant!r} in attached snapshot")
        shard_id = header.get("shard")
        store = shards.get(shard_id)
        if store is None:
            raise ValueError(f"no shard {shard_id!r} in attached snapshot")
        return store

    def _terms(self, arrays: list[np.ndarray]) -> Sequence[int]:
        if not arrays:
            raise ValueError("terms array missing")
        return arrays[0].tolist()

    def _partial(self, header, arrays):
        start = time.perf_counter()
        hits = self._store(header).hits(self._terms(arrays))
        elapsed_us = int((time.perf_counter() - start) * 1e6)
        return {"ok": True, "elapsed_us": elapsed_us}, [hits]

    def _postings(self, header, arrays):
        postings = self._store(header).postings_map(self._terms(arrays))
        terms = sorted(postings)
        return {"ok": True, "terms": terms}, [postings[t] for t in terms]

    def _dfs(self, header, arrays):
        counts = self._store(header).term_counts(self._terms(arrays))
        return {"ok": True}, [counts]

    def _complete(self, header, arrays):
        if len(arrays) < 2:
            raise ValueError("complete needs terms and candidates arrays")
        delta, skipped = complete_counts(
            self._store(header),
            arrays[0].tolist(),
            np.ascontiguousarray(arrays[1], dtype=np.int64),
        )
        return {"ok": True, "postings_skipped": int(skipped)}, [delta]

    def _attach(self, header):
        path = Path(header["snapshot"])
        stores = attach_variant_postings(path, self.mmap_mode)
        self.snapshot_path = path
        self.stores = stores
        return {
            "ok": True,
            "shards": sorted(stores.get(DEFAULT_VARIANT, {})),
            "variants": sorted(stores),
        }, []


def _serve_connection(conn: socket.socket, worker: ShardWorker) -> None:
    """Per-connection loop: frames until EOF or a shutdown op."""
    try:
        with conn:
            while True:
                try:
                    header, arrays = recv_frame(conn)
                except (TransportError, OSError):
                    return
                if header.get("op") == "shutdown":
                    try:
                        send_frame(conn, {"ok": True})
                    except OSError:
                        pass
                    os._exit(0)
                response, payload = worker.handle(header, arrays)
                send_frame(conn, response, payload)
    except OSError:
        return


def _watch_parent(parent_pid: int, poll_s: float = 1.0) -> None:
    """Exit when the coordinator disappears (no orphaned workers)."""
    while True:
        try:
            os.kill(parent_pid, 0)
        except OSError:
            os._exit(0)
        time.sleep(poll_s)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.worker",
        description="geodab shard-serving worker process",
    )
    parser.add_argument("--snapshot", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--mmap",
        choices=("off", "r"),
        default="r",
        help="'r' memory-maps the postings blobs (default), 'off' copies",
    )
    parser.add_argument(
        "--parent-pid",
        type=int,
        default=None,
        help="exit when this process disappears (orphan protection)",
    )
    args = parser.parse_args(argv)

    try:
        worker = ShardWorker(
            args.snapshot, mmap_mode=None if args.mmap == "off" else args.mmap
        )
    except (OSError, ValueError) as exc:
        print(f"worker: cannot attach {args.snapshot}: {exc}", file=sys.stderr)
        return 2

    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((args.host, args.port))
    server.listen(128)
    port = server.getsockname()[1]

    if args.parent_pid is not None:
        threading.Thread(
            target=_watch_parent, args=(args.parent_pid,), daemon=True
        ).start()

    # The READY line is the spawn handshake: the transport reads it to
    # learn the bound port before sending any request.
    print(
        f"GEODAB-WORKER READY port={port} pid={os.getpid()} "
        f"shards={len(worker.stores.get(DEFAULT_VARIANT, {}))}",
        flush=True,
    )

    while True:
        try:
            conn, _ = server.accept()
        except OSError:
            return 0
        threading.Thread(
            target=_serve_connection, args=(conn, worker), daemon=True
        ).start()


if __name__ == "__main__":
    raise SystemExit(main())
