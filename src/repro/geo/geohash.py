"""Bit-level geohash codec (Niemeyer, 2008) at arbitrary depth.

A geohash maps a point to a sequence of bits that repeatedly bisect the
latitude/longitude space up to a desired depth ``d`` (paper Section III-C).
The first bisection splits the longitude axis, the second the latitude
axis, and so on, alternating.  The resulting bit string, read as an
integer, is the cell's position on a z-order space-filling curve, which is
the property the geodab sharding strategy relies on (Figure 2).

This module represents a geohash as a ``(bits, depth)`` pair wrapped in the
immutable :class:`Geohash` value type.  Unlike string-based geohash
libraries, depth is *not* restricted to multiples of 5; the paper's
configuration uses 36-bit normalization cells and 16-bit shard prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .bbox import BBox
from .point import Point, Trajectory

#: Maximum supported depth.  60 bits keeps lon/lat quantizations within
#: 30 bits each and yields sub-centimeter cells, far beyond GPS accuracy.
MAX_DEPTH = 60

#: Standard geohash base32 alphabet (no a, i, l, o).
BASE32_ALPHABET = "0123456789bcdefghjkmnpqrstuvwxyz"
_BASE32_INDEX = {c: i for i, c in enumerate(BASE32_ALPHABET)}

_MASK_64 = (1 << 64) - 1


def _spread_bits(x: int) -> int:
    """Spread the low 32 bits of ``x`` so bit ``i`` moves to bit ``2i``."""
    x &= 0xFFFFFFFF
    x = (x | (x << 16)) & 0x0000FFFF0000FFFF
    x = (x | (x << 8)) & 0x00FF00FF00FF00FF
    x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0F
    x = (x | (x << 2)) & 0x3333333333333333
    x = (x | (x << 1)) & 0x5555555555555555
    return x


def _squash_bits(x: int) -> int:
    """Inverse of :func:`_spread_bits`: collect bits at even positions."""
    x &= 0x5555555555555555
    x = (x | (x >> 1)) & 0x3333333333333333
    x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0F
    x = (x | (x >> 4)) & 0x00FF00FF00FF00FF
    x = (x | (x >> 8)) & 0x0000FFFF0000FFFF
    x = (x | (x >> 16)) & 0x00000000FFFFFFFF
    return x


def _split_depth(depth: int) -> tuple[int, int]:
    """Number of (longitude, latitude) bits for a given total depth."""
    lon_bits = (depth + 1) // 2
    lat_bits = depth // 2
    return lon_bits, lat_bits


def _check_depth(depth: int) -> None:
    if not 0 <= depth <= MAX_DEPTH:
        raise ValueError(f"depth {depth} outside [0, {MAX_DEPTH}]")


def _quantize(value: float, low: float, high: float, bits: int) -> int:
    """Map ``value`` in ``[low, high]`` to an integer cell in ``[0, 2^bits)``."""
    if bits == 0:
        return 0
    span = high - low
    cells = 1 << bits
    cell = int((value - low) / span * cells)
    # The upper domain boundary belongs to the last cell.
    if cell >= cells:
        cell = cells - 1
    if cell < 0:
        cell = 0
    return cell


def encode(point: Point, depth: int) -> int:
    """Encode a point as a ``depth``-bit geohash integer.

    The most significant bit of the result is the first (longitude)
    bisection decision.
    """
    _check_depth(depth)
    lon_bits, lat_bits = _split_depth(depth)
    lon_cell = _quantize(point.lon, -180.0, 180.0, lon_bits)
    lat_cell = _quantize(point.lat, -90.0, 90.0, lat_bits)
    if depth % 2 == 0:
        # Even depth: longitude decisions occupy the odd bit positions.
        return (_spread_bits(lon_cell) << 1) | _spread_bits(lat_cell)
    # Odd depth: the extra (first) longitude decision lands on an even
    # position, so longitude occupies the even positions.
    return _spread_bits(lon_cell) | (_spread_bits(lat_cell) << 1)


def decode(bits: int, depth: int) -> BBox:
    """Decode a geohash integer into the bounding box of its cell."""
    _check_depth(depth)
    if depth > 0 and bits >> depth:
        raise ValueError(f"geohash value {bits:#x} does not fit in {depth} bits")
    if depth == 0:
        if bits != 0:
            raise ValueError("depth-0 geohash must have value 0")
        return BBox(-90.0, -180.0, 90.0, 180.0)
    lon_bits, lat_bits = _split_depth(depth)
    if depth % 2 == 0:
        lon_cell = _squash_bits(bits >> 1)
        lat_cell = _squash_bits(bits)
    else:
        lon_cell = _squash_bits(bits)
        lat_cell = _squash_bits(bits >> 1)
    lon_span = 360.0 / (1 << lon_bits)
    lat_span = 180.0 / (1 << lat_bits) if lat_bits else 180.0
    west = -180.0 + lon_cell * lon_span
    south = -90.0 + lat_cell * lat_span
    return BBox(south, west, south + lat_span, west + lon_span)


def decode_center(bits: int, depth: int) -> Point:
    """Decode a geohash integer to the center point of its cell."""
    return decode(bits, depth).center


def cover(points: Trajectory, max_depth: int = MAX_DEPTH) -> "Geohash":
    """Highest-precision geohash overlapping a whole point set.

    This is the paper's ``geohash({p1, ..., pn}) = b`` operator (Section
    III-C): the longest common prefix of the points' geohash encodings,
    capped at ``max_depth``.  Points straddling a bisection boundary yield
    shallow (possibly depth-0) covers, which is expected behaviour.
    """
    if not points:
        raise ValueError("cover of empty point sequence")
    _check_depth(max_depth)
    first = encode(points[0], max_depth)
    diff = 0
    for p in points[1:]:
        diff |= first ^ encode(p, max_depth)
    common = max_depth - diff.bit_length()
    return Geohash(first >> (max_depth - common), common)


def truncate(bits: int, depth: int, new_depth: int) -> int:
    """Keep only the first ``new_depth`` bits of a geohash (its ancestor cell)."""
    if new_depth > depth:
        raise ValueError(f"cannot truncate depth {depth} to deeper {new_depth}")
    _check_depth(new_depth)
    return bits >> (depth - new_depth)


def to_base32(bits: int, depth: int) -> str:
    """Render a geohash as the classic base32 string (depth must divide by 5)."""
    if depth % 5 != 0:
        raise ValueError(f"base32 requires depth multiple of 5, got {depth}")
    chars = []
    for i in range(depth // 5):
        shift = depth - 5 * (i + 1)
        chars.append(BASE32_ALPHABET[(bits >> shift) & 0x1F])
    return "".join(chars)


def from_base32(text: str) -> "Geohash":
    """Parse a classic base32 geohash string."""
    bits = 0
    for c in text.lower():
        if c not in _BASE32_INDEX:
            raise ValueError(f"invalid geohash character {c!r}")
        bits = (bits << 5) | _BASE32_INDEX[c]
    return Geohash(bits, 5 * len(text))


@dataclass(frozen=True, slots=True, order=True)
class Geohash:
    """An immutable geohash cell: ``depth`` leading bits of the z-order curve.

    Ordering compares ``(bits, depth)`` lexicographically, which matches the
    z-order curve position for equal depths.
    """

    bits: int
    depth: int

    def __post_init__(self) -> None:
        _check_depth(self.depth)
        if self.bits < 0:
            raise ValueError("geohash bits must be non-negative")
        if self.depth < MAX_DEPTH and self.bits >> self.depth:
            raise ValueError(
                f"geohash value {self.bits:#x} does not fit in {self.depth} bits"
            )

    @classmethod
    def of(cls, point: Point, depth: int) -> "Geohash":
        """Geohash cell of ``point`` at the given depth."""
        return cls(encode(point, depth), depth)

    @classmethod
    def covering(cls, points: Trajectory, max_depth: int = MAX_DEPTH) -> "Geohash":
        """Highest-precision cell overlapping all points (see :func:`cover`)."""
        return cover(points, max_depth)

    def bbox(self) -> BBox:
        """Bounding box of the cell."""
        return decode(self.bits, self.depth)

    def center(self) -> Point:
        """Center point of the cell."""
        return decode_center(self.bits, self.depth)

    def parent(self) -> "Geohash":
        """The cell one bisection shallower."""
        if self.depth == 0:
            raise ValueError("the root cell has no parent")
        return Geohash(self.bits >> 1, self.depth - 1)

    def children(self) -> tuple["Geohash", "Geohash"]:
        """The two cells one bisection deeper."""
        if self.depth >= MAX_DEPTH:
            raise ValueError(f"cannot subdivide beyond depth {MAX_DEPTH}")
        return (
            Geohash(self.bits << 1, self.depth + 1),
            Geohash((self.bits << 1) | 1, self.depth + 1),
        )

    def ancestor(self, depth: int) -> "Geohash":
        """The containing cell at a shallower depth."""
        return Geohash(truncate(self.bits, self.depth, depth), depth)

    def contains(self, other: "Geohash") -> bool:
        """Whether ``other`` is this cell or one of its descendants."""
        if other.depth < self.depth:
            return False
        return (other.bits >> (other.depth - self.depth)) == self.bits

    def contains_point(self, point: Point) -> bool:
        """Whether the point falls inside this cell."""
        return encode(point, self.depth) == self.bits

    def base32(self) -> str:
        """Classic base32 rendering (depth must be a multiple of 5)."""
        return to_base32(self.bits, self.depth)

    def curve_position(self, at_depth: int = MAX_DEPTH) -> int:
        """Position of the cell's lower boundary on the z-order curve.

        Normalizing to a common depth makes positions of cells of different
        depths comparable; sharding uses this (Figure 2c).
        """
        if at_depth < self.depth:
            raise ValueError("normalization depth shallower than cell depth")
        return self.bits << (at_depth - self.depth)

    def neighbors(self) -> list["Geohash"]:
        """The up-to-8 adjacent cells at the same depth.

        Cells at the latitude extremes have fewer neighbours; longitude
        wraps around the antimeridian.
        """
        box = self.bbox()
        lat_step = box.north - box.south
        lon_step = box.east - box.west
        center = box.center
        out = []
        for d_lat in (-lat_step, 0.0, lat_step):
            for d_lon in (-lon_step, 0.0, lon_step):
                if d_lat == 0.0 and d_lon == 0.0:
                    continue
                lat = center.lat + d_lat
                if not -90.0 <= lat <= 90.0:
                    continue
                lon = center.lon + d_lon
                lon = (lon + 540.0) % 360.0 - 180.0
                cell = Geohash.of(Point(lat, lon), self.depth)
                if cell != self:
                    out.append(cell)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.depth % 5 == 0 and self.depth > 0:
            return f"Geohash({self.base32()!r})"
        return f"Geohash({self.bits:0{max(1, self.depth)}b}, depth={self.depth})"


def cell_dimensions(depth: int, latitude: float = 0.0) -> tuple[float, float]:
    """Approximate ``(width_m, height_m)`` of cells at ``depth`` and ``latitude``.

    The paper notes that a 36-bit geohash near London is roughly 95 m wide
    and 76 m tall (Section VI-A2); this helper reproduces that arithmetic.
    """
    probe = Geohash.of(Point(latitude, 0.0), depth)
    box = probe.bbox()
    return box.width_m, box.height_m


def encode_many(points: Iterable[Point], depth: int) -> Iterator[int]:
    """Encode a stream of points at a fixed depth."""
    for p in points:
        yield encode(p, depth)


def common_prefix(a: "Geohash", b: "Geohash") -> "Geohash":
    """Deepest cell containing both cells."""
    depth = min(a.depth, b.depth)
    bits_a = truncate(a.bits, a.depth, depth)
    bits_b = truncate(b.bits, b.depth, depth)
    diff = bits_a ^ bits_b
    common = depth - diff.bit_length()
    return Geohash(bits_a >> (depth - common), common)


def cells_along(points: Sequence[Point], depth: int) -> list[Geohash]:
    """Cells visited by a polyline, with consecutive duplicates removed.

    This is the first half of the paper's grid normalization (Section V-A):
    map every point to its cell, then clean consecutive duplicates.
    """
    out: list[Geohash] = []
    previous_bits: int | None = None
    for p in points:
        bits = encode(p, depth)
        if bits != previous_bits:
            out.append(Geohash(bits, depth))
            previous_bits = bits
    return out
