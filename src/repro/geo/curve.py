"""Z-order space-filling-curve arithmetic.

The geodab sharding strategy (paper Figure 2c) maps geohash prefixes to
shards *in a locality-preserving way* — cells adjacent on the z-order curve
land on the same shard — and then maps shards to nodes with a modulo that
deliberately breaks locality to balance the cluster.  This module hosts the
curve arithmetic both steps rely on.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .geohash import MAX_DEPTH, Geohash, _spread_bits, _squash_bits


def interleave(x: int, y: int) -> int:
    """Interleave two 32-bit integers; bits of ``x`` occupy odd positions."""
    return (_spread_bits(x) << 1) | _spread_bits(y)


def deinterleave(z: int) -> tuple[int, int]:
    """Inverse of :func:`interleave`: return ``(x, y)``."""
    return _squash_bits(z >> 1), _squash_bits(z)


def curve_index(cell: Geohash, depth: int) -> int:
    """Index of a cell's lower corner on the z-order curve at ``depth``.

    Cells shallower than ``depth`` map to the first position of their
    subtree, so ordering by curve index equals ordering by bit prefix.
    """
    if depth < cell.depth:
        raise ValueError(
            f"curve depth {depth} shallower than cell depth {cell.depth}"
        )
    return cell.bits << (depth - cell.depth)


def curve_range(cell: Geohash, depth: int) -> tuple[int, int]:
    """Half-open ``[start, end)`` range a cell spans on the curve at ``depth``."""
    start = curve_index(cell, depth)
    return start, start + (1 << (depth - cell.depth))


def fraction_of_curve(cell: Geohash) -> float:
    """Position of a cell on the curve normalized to ``[0, 1)``.

    ``shard = floor(fraction * n_shards)`` is exactly the paper's
    ``shard = floor(geohash / 2^depth * n_shards)`` mapping.
    """
    if cell.depth == 0:
        return 0.0
    return cell.bits / float(1 << cell.depth)


def shard_of(cell: Geohash, num_shards: int) -> int:
    """Locality-preserving shard assignment (paper Figure 2c, first step)."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    shard = int(fraction_of_curve(cell) * num_shards)
    # Guard against floating-point edge at fraction -> 1.0.
    return min(shard, num_shards - 1)


def node_of(shard: int, num_nodes: int) -> int:
    """Locality-breaking node assignment (paper Figure 2c, second step)."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    return shard % num_nodes


def shards_in_curve_range(
    start: int, end: int, depth: int, num_shards: int
) -> list[int]:
    """Distinct shards intersecting a half-open curve range at ``depth``.

    Query planning uses this to find the minimal set of shards that must be
    contacted to answer a spatially-bounded query.
    """
    if start > end:
        raise ValueError("start must not exceed end")
    total = 1 << depth
    if not 0 <= start <= total or not 0 <= end <= total:
        raise ValueError("curve range outside the curve domain")
    if start == end:
        return []
    first = min(int(start / total * num_shards), num_shards - 1)
    last = min(int((end - 1) / total * num_shards), num_shards - 1)
    return list(range(first, last + 1))


def sort_by_curve(cells: Iterable[Geohash], depth: int = MAX_DEPTH) -> list[Geohash]:
    """Sort cells by their z-order curve position at a common depth."""
    return sorted(cells, key=lambda c: (curve_index(c, depth), c.depth))


def walk_cells(depth: int) -> Iterator[Geohash]:
    """Iterate all cells of a depth in z-order (small depths only).

    Useful for exhaustive tests and for plotting curve traversals like the
    paper's Figure 2b.
    """
    if depth > 24:
        raise ValueError("walk_cells is intended for small depths (<= 24)")
    for bits in range(1 << depth):
        yield Geohash(bits, depth)
