"""Vectorized geohash encoding over coordinate arrays.

The scalar codec in :mod:`repro.geo.geohash` encodes one point at a time
with Python integer arithmetic; bulk ingest and index rebuilds encode
millions of points, so this module re-expresses the same bit arithmetic
over numpy ``uint64`` arrays.  Every function here is *bit-identical* to
its scalar counterpart (asserted by the property tests): quantization
truncates the same way, bisection decisions interleave the same way, and
the results are the same z-order positions the sharding layer relies on.
"""

from __future__ import annotations

import numpy as np

from .geohash import _check_depth, _split_depth

__all__ = [
    "bit_length_u64",
    "decode_center_batch",
    "encode_batch",
    "spread_bits_batch",
    "squash_bits_batch",
]

_U = np.uint64


def spread_bits_batch(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.geo.geohash._spread_bits`.

    Moves bit ``i`` of each low-32-bit value to bit ``2i``.
    """
    x = x.astype(np.uint64, copy=True)
    x &= _U(0xFFFFFFFF)
    x = (x | (x << _U(16))) & _U(0x0000FFFF0000FFFF)
    x = (x | (x << _U(8))) & _U(0x00FF00FF00FF00FF)
    x = (x | (x << _U(4))) & _U(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << _U(2))) & _U(0x3333333333333333)
    x = (x | (x << _U(1))) & _U(0x5555555555555555)
    return x


def squash_bits_batch(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.geo.geohash._squash_bits`.

    Collects the bits at even positions back into the low 32 bits —
    the inverse of :func:`spread_bits_batch`.
    """
    x = x.astype(np.uint64, copy=True)
    x &= _U(0x5555555555555555)
    x = (x | (x >> _U(1))) & _U(0x3333333333333333)
    x = (x | (x >> _U(2))) & _U(0x0F0F0F0F0F0F0F0F)
    x = (x | (x >> _U(4))) & _U(0x00FF00FF00FF00FF)
    x = (x | (x >> _U(8))) & _U(0x0000FFFF0000FFFF)
    x = (x | (x >> _U(16))) & _U(0x00000000FFFFFFFF)
    return x


def bit_length_u64(x: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for ``uint64`` arrays.

    Binary search over shift widths; six ``where`` passes instead of a
    float conversion, because ``float64`` rounds values above 2^53 and
    would be off by one near powers of two.
    """
    x = x.astype(np.uint64, copy=True)
    out = np.zeros(x.shape, dtype=np.uint64)
    for shift in (32, 16, 8, 4, 2, 1):
        s = _U(shift)
        big = x >= (_U(1) << s)
        out += np.where(big, s, _U(0))
        x = np.where(big, x >> s, x)
    return out + x  # x is now 0 or 1


def _quantize_batch(
    values: np.ndarray, low: float, high: float, bits: int
) -> np.ndarray:
    """Vectorized :func:`repro.geo.geohash._quantize` (same truncation)."""
    if bits == 0:
        return np.zeros(len(values), dtype=np.uint64)
    span = high - low
    cells = 1 << bits
    cell = ((values - low) / span * cells).astype(np.int64)
    np.clip(cell, 0, cells - 1, out=cell)
    return cell.astype(np.uint64)


def encode_batch(lats: np.ndarray, lons: np.ndarray, depth: int) -> np.ndarray:
    """Geohash integers of many points at once (vectorized ``encode``).

    ``lats``/``lons`` are parallel ``float64`` arrays; the result is a
    ``uint64`` array of ``depth``-bit geohash values, bit-identical to
    calling :func:`repro.geo.geohash.encode` per point.
    """
    _check_depth(depth)
    lon_bits, lat_bits = _split_depth(depth)
    lon_spread = spread_bits_batch(_quantize_batch(lons, -180.0, 180.0, lon_bits))
    lat_spread = spread_bits_batch(_quantize_batch(lats, -90.0, 90.0, lat_bits))
    if depth % 2 == 0:
        # Even depth: longitude decisions occupy the odd bit positions.
        return (lon_spread << _U(1)) | lat_spread
    return lon_spread | (lat_spread << _U(1))


def decode_center_batch(
    cells: np.ndarray, depth: int
) -> tuple[np.ndarray, np.ndarray]:
    """Cell-center coordinates of many geohash integers at once.

    Vectorized :func:`repro.geo.geohash.decode_center`: the returned
    ``(lats, lons)`` float64 arrays are bit-identical to the scalar
    ``decode(bits, depth).center`` arithmetic — same quantized-cell
    recovery, same span multiplication, same midpoint averaging — so a
    pipeline that snaps points to cell centers produces the exact same
    coordinates whether it runs per point or per batch.
    """
    _check_depth(depth)
    if depth == 0:
        zeros = np.zeros(len(cells), dtype=np.float64)
        return zeros.copy(), zeros
    lon_bits, lat_bits = _split_depth(depth)
    if depth % 2 == 0:
        lon_cell = squash_bits_batch(cells >> _U(1))
        lat_cell = squash_bits_batch(cells)
    else:
        lon_cell = squash_bits_batch(cells)
        lat_cell = squash_bits_batch(cells >> _U(1))
    # Spans are scalar Python floats, so every elementwise operation
    # below matches the scalar decode() expression term for term.
    lon_span = 360.0 / (1 << lon_bits)
    lat_span = 180.0 / (1 << lat_bits) if lat_bits else 180.0
    west = -180.0 + lon_cell.astype(np.float64) * lon_span
    south = -90.0 + lat_cell.astype(np.float64) * lat_span
    lons = (west + (west + lon_span)) / 2.0
    lats = (south + (south + lat_span)) / 2.0
    return lats, lons
