"""Axis-aligned geographic bounding boxes.

Bounding boxes appear in three places in the reproduction: geohash cells
decode to boxes, the spatial-index baselines (quadtree, r-tree) organise
boxes, and the BTM motif baseline prunes sub-trajectory pairs with
box-to-box distance lower bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from .point import (
    EARTH_RADIUS_M,
    Point,
    Trajectory,
    haversine,
    haversine_coords,
)


@dataclass(frozen=True, slots=True)
class BBox:
    """A latitude/longitude axis-aligned box ``[south, north] x [west, east]``.

    Boxes never wrap the antimeridian; the geohash decomposition used in this
    library never produces wrapping cells.
    """

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.south > self.north:
            raise ValueError(f"south {self.south} > north {self.north}")
        if self.west > self.east:
            raise ValueError(f"west {self.west} > east {self.east}")

    @property
    def center(self) -> Point:
        """Center point of the box."""
        return Point((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    @property
    def width_m(self) -> float:
        """Ground width of the box (measured along its central latitude)."""
        mid_lat = (self.south + self.north) / 2.0
        return haversine_coords(mid_lat, self.west, mid_lat, self.east)

    @property
    def height_m(self) -> float:
        """Ground height of the box."""
        return haversine_coords(self.south, self.west, self.north, self.west)

    def contains(self, p: Point) -> bool:
        """Whether the point lies inside the box (boundaries inclusive)."""
        return self.south <= p.lat <= self.north and self.west <= p.lon <= self.east

    def contains_box(self, other: "BBox") -> bool:
        """Whether ``other`` is fully inside this box."""
        return (
            self.south <= other.south
            and self.north >= other.north
            and self.west <= other.west
            and self.east >= other.east
        )

    def intersects(self, other: "BBox") -> bool:
        """Whether the two boxes overlap (touching edges count)."""
        return not (
            other.west > self.east
            or other.east < self.west
            or other.south > self.north
            or other.north < self.south
        )

    def union(self, other: "BBox") -> "BBox":
        """Smallest box containing both boxes."""
        return BBox(
            min(self.south, other.south),
            min(self.west, other.west),
            max(self.north, other.north),
            max(self.east, other.east),
        )

    def expand(self, p: Point) -> "BBox":
        """Smallest box containing this box and the point."""
        return BBox(
            min(self.south, p.lat),
            min(self.west, p.lon),
            max(self.north, p.lat),
            max(self.east, p.lon),
        )

    def buffer_degrees(self, d_lat: float, d_lon: float) -> "BBox":
        """Box grown by the given margins (clamped to valid coordinates)."""
        return BBox(
            max(-90.0, self.south - d_lat),
            max(-180.0, self.west - d_lon),
            min(90.0, self.north + d_lat),
            min(180.0, self.east + d_lon),
        )

    def area_deg2(self) -> float:
        """Area in square degrees (useful for split heuristics, not geodesy)."""
        return (self.north - self.south) * (self.east - self.west)

    def min_distance_to(self, other: "BBox") -> float:
        """Lower bound on the ground distance between any two points of the boxes.

        Zero when the boxes intersect.  This is the pruning bound used by
        the BTM motif baseline, so it must be *sound*: never exceed the
        true distance between any pair of member points.  Two sound bounds
        are combined with ``max``:

        * the meridian bound — the central angle between two points is at
          least their latitude difference, so the latitude gap converts
          directly to meters;
        * the parallel bound — for points whose absolute latitude is at
          most ``phi_m``, crossing a longitude gap ``d_lon`` costs at
          least ``2 R asin(cos(phi_m) sin(d_lon / 2))`` (equal-latitude
          haversine at the latitude furthest from the equator; soundness
          follows from ``1 - cos(phi_1 - phi_2) >= 0``).
        """
        if self.intersects(other):
            return 0.0
        d_lat = max(0.0, max(other.south - self.north, self.south - other.north))
        d_lon = max(0.0, max(other.west - self.east, self.west - other.east))
        meridian_bound = EARTH_RADIUS_M * math.radians(d_lat)
        phi_m = math.radians(
            max(abs(self.south), abs(self.north), abs(other.south), abs(other.north))
        )
        sin_half = math.cos(phi_m) * math.sin(math.radians(d_lon) / 2.0)
        parallel_bound = 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, sin_half))
        return max(meridian_bound, parallel_bound)

    def max_distance_to(self, other: "BBox") -> float:
        """Upper bound on the ground distance between points of the two boxes."""
        corners_a = self.corners()
        corners_b = other.corners()
        return max(haversine(a, b) for a in corners_a for b in corners_b)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corner points (SW, SE, NW, NE)."""
        return (
            Point(self.south, self.west),
            Point(self.south, self.east),
            Point(self.north, self.west),
            Point(self.north, self.east),
        )

    def diagonal_m(self) -> float:
        """Ground length of the box diagonal."""
        return haversine_coords(self.south, self.west, self.north, self.east)


#: The whole latitude/longitude domain (depth-0 geohash cell).
WORLD = BBox(-90.0, -180.0, 90.0, 180.0)


def bbox_of(points: Trajectory) -> BBox:
    """Minimum bounding box of a non-empty point sequence."""
    if not points:
        raise ValueError("bounding box of empty point sequence")
    south = north = points[0].lat
    west = east = points[0].lon
    for p in points[1:]:
        if p.lat < south:
            south = p.lat
        elif p.lat > north:
            north = p.lat
        if p.lon < west:
            west = p.lon
        elif p.lon > east:
            east = p.lon
    return BBox(south, west, north, east)


def bbox_union(boxes: Iterable[BBox]) -> BBox:
    """Smallest box containing all given boxes."""
    it = iter(boxes)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError("bbox_union of empty iterable") from None
    for box in it:
        acc = acc.union(box)
    return acc


def square_around(center: Point, half_side_m: float) -> BBox:
    """Axis-aligned box of roughly ``2 * half_side_m`` meters per side.

    Used by the workload generator to carve the dense ~300 km^2 area around
    the London centre that the paper's dataset covers.
    """
    if half_side_m <= 0.0:
        raise ValueError("half_side_m must be positive")
    d_lat = math.degrees(half_side_m / EARTH_RADIUS_M)
    cos_lat = max(1e-12, math.cos(math.radians(center.lat)))
    d_lon = math.degrees(half_side_m / (EARTH_RADIUS_M * cos_lat))
    return BBox(
        max(-90.0, center.lat - d_lat),
        max(-180.0, center.lon - d_lon),
        min(90.0, center.lat + d_lat),
        min(180.0, center.lon + d_lon),
    )
