"""Geodesy primitives: points on the WGS84 sphere and operations on them.

The paper models a trajectory as a sequence of latitude/longitude points
``S = <s1, ..., sn>`` (Section II-A).  This module provides the ``Point``
value type used throughout the library together with the spherical geometry
helpers (haversine distance, bearings, interpolation, destination points)
needed by the road-network generator, the trajectory sampler and the
distance measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

#: Mean earth radius in meters, the ``R`` of the paper's Equation 2.
EARTH_RADIUS_M = 6_371_000.0

#: Valid coordinate ranges.
MIN_LATITUDE = -90.0
MAX_LATITUDE = 90.0
MIN_LONGITUDE = -180.0
MAX_LONGITUDE = 180.0


@dataclass(frozen=True, slots=True)
class Point:
    """A latitude/longitude point ``p = (phi, lambda)`` in degrees.

    Instances are immutable and hashable so they can be used as dictionary
    keys (e.g. road-network node positions) and in sets.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not (MIN_LATITUDE <= self.lat <= MAX_LATITUDE):
            raise ValueError(f"latitude {self.lat} outside [-90, 90]")
        if not (MIN_LONGITUDE <= self.lon <= MAX_LONGITUDE):
            raise ValueError(f"longitude {self.lon} outside [-180, 180]")

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lon)`` as a plain tuple."""
        return (self.lat, self.lon)

    def distance_to(self, other: "Point") -> float:
        """Great-circle distance to ``other`` in meters (haversine)."""
        return haversine(self, other)

    def bearing_to(self, other: "Point") -> float:
        """Initial great-circle bearing towards ``other`` in degrees [0, 360)."""
        return initial_bearing(self, other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Point({self.lat:.6f}, {self.lon:.6f})"


#: A trajectory is simply an ordered sequence of points.
Trajectory = Sequence[Point]


def haversine(p: Point, q: Point) -> float:
    """Ground distance between two points in meters (paper Equation 2).

    ``2 R asin(sqrt(sin^2(dphi/2) + cos(phi_k) cos(phi_l) sin^2(dlambda/2)))``
    """
    phi_l = math.radians(p.lat)
    phi_k = math.radians(q.lat)
    d_phi = phi_k - phi_l
    d_lambda = math.radians(q.lon - p.lon)
    a = (
        math.sin(d_phi / 2.0) ** 2
        + math.cos(phi_l) * math.cos(phi_k) * math.sin(d_lambda / 2.0) ** 2
    )
    # Clamp to guard against floating-point drift slightly above 1.0.
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def haversine_coords(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Haversine distance from bare coordinates, avoiding Point construction.

    Hot paths (DTW/DFD inner loops, map matching) use this variant.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    d_phi = phi2 - phi1
    d_lambda = math.radians(lon2 - lon1)
    a = (
        math.sin(d_phi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(d_lambda / 2.0) ** 2
    )
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def initial_bearing(p: Point, q: Point) -> float:
    """Initial bearing of the great circle from ``p`` to ``q`` in degrees.

    Returns a value in ``[0, 360)`` measured clockwise from true north.
    """
    phi1 = math.radians(p.lat)
    phi2 = math.radians(q.lat)
    d_lambda = math.radians(q.lon - p.lon)
    y = math.sin(d_lambda) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(
        d_lambda
    )
    return (math.degrees(math.atan2(y, x)) + 360.0) % 360.0


def destination(p: Point, bearing_deg: float, distance_m: float) -> Point:
    """Point reached from ``p`` along ``bearing_deg`` after ``distance_m`` meters."""
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(p.lat)
    lambda1 = math.radians(p.lon)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta)
        + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lambda2 = lambda1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    lat = math.degrees(phi2)
    lon = math.degrees(lambda2)
    # Normalize longitude into [-180, 180].
    lon = (lon + 540.0) % 360.0 - 180.0
    lat = min(MAX_LATITUDE, max(MIN_LATITUDE, lat))
    return Point(lat, lon)


def interpolate(p: Point, q: Point, fraction: float) -> Point:
    """Point at ``fraction`` of the way from ``p`` to ``q``.

    For the short segments handled by this library (road edges of tens to
    hundreds of meters), linear interpolation in coordinate space is
    indistinguishable from great-circle interpolation; we still route
    through the great-circle formulation to stay exact near the poles and
    the antimeridian.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside [0, 1]")
    if fraction == 0.0:
        return p
    if fraction == 1.0:
        return q
    total = haversine(p, q)
    if total == 0.0:
        return p
    return destination(p, initial_bearing(p, q), total * fraction)


def path_length(points: Trajectory) -> float:
    """Cumulative ground length of a polyline in meters."""
    total = 0.0
    for a, b in zip(points, points[1:]):
        total += haversine(a, b)
    return total


def cumulative_lengths(points: Trajectory) -> list[float]:
    """Cumulative distance at every vertex of a polyline; starts at 0.0."""
    if not points:
        return []
    out = [0.0]
    for a, b in zip(points, points[1:]):
        out.append(out[-1] + haversine(a, b))
    return out


def walk(points: Trajectory, distance_m: float) -> Point:
    """Point reached after walking ``distance_m`` meters along a polyline.

    Distances beyond the end of the polyline clamp to the final vertex,
    negative distances clamp to the first vertex.
    """
    if not points:
        raise ValueError("cannot walk an empty polyline")
    if distance_m <= 0.0:
        return points[0]
    remaining = distance_m
    for a, b in zip(points, points[1:]):
        seg = haversine(a, b)
        if seg >= remaining and seg > 0.0:
            return interpolate(a, b, remaining / seg)
        remaining -= seg
    return points[-1]


def resample_by_distance(points: Trajectory, step_m: float) -> list[Point]:
    """Resample a polyline at a constant ground-distance step.

    Always includes the first point; includes the last point if it is not
    already within ``step_m / 2`` of the previous sample, so that short
    tails are not silently dropped.
    """
    if step_m <= 0.0:
        raise ValueError("step_m must be positive")
    if not points:
        return []
    if len(points) == 1:
        return [points[0]]
    total = path_length(points)
    samples = [points[0]]
    offset = step_m
    while offset < total:
        samples.append(walk(points, offset))
        offset += step_m
    if haversine(samples[-1], points[-1]) > step_m / 2.0:
        samples.append(points[-1])
    return samples


def centroid(points: Trajectory) -> Point:
    """Arithmetic centroid of a set of points.

    Adequate for the small (city-scale) extents this library works with;
    not meaningful across the antimeridian.
    """
    if not points:
        raise ValueError("centroid of empty point set")
    lat = sum(p.lat for p in points) / len(points)
    lon = sum(p.lon for p in points) / len(points)
    return Point(lat, lon)


def iter_pairs(points: Trajectory) -> Iterator[tuple[Point, Point]]:
    """Iterate over consecutive point pairs of a trajectory."""
    return zip(points, points[1:])


def ensure_points(raw: Iterable[tuple[float, float] | Point]) -> list[Point]:
    """Coerce an iterable of ``(lat, lon)`` tuples or ``Point``s to points."""
    out: list[Point] = []
    for item in raw:
        if isinstance(item, Point):
            out.append(item)
        else:
            lat, lon = item
            out.append(Point(lat, lon))
    return out
