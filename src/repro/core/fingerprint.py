"""Fingerprint sets: the ``F = W(S)`` objects compared with Jaccard.

A :class:`FingerprintSet` owns both the *ordered* winnowing selections
(needed by motif discovery, which slides windows over them) and a roaring
bitmap of the distinct fingerprint values (needed for fast Jaccard
scoring, paper Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from ..geo.point import Trajectory
from .config import GeodabConfig
from .geodab import GeodabScheme
from .winnowing import Selection, TrajectoryWinnower

__all__ = ["FingerprintSet", "Fingerprinter"]


@dataclass(frozen=True, slots=True)
class FingerprintSet:
    """Winnowed fingerprints of one trajectory.

    ``selections`` preserves winnowing order and k-gram positions;
    ``bitmap`` holds the distinct values for set algebra.  The bitmap type
    follows the geodab width: 32-bit layouts use
    :class:`~repro.bitmap.roaring.RoaringBitmap`, wider layouts use
    :class:`~repro.bitmap.roaring.Roaring64Map`.
    """

    selections: tuple[Selection, ...]
    bitmap: RoaringBitmap | Roaring64Map

    @classmethod
    def from_selections(
        cls, selections: Sequence[Selection], wide: bool
    ) -> "FingerprintSet":
        """Build from winnowing selections."""
        values = [s.fingerprint for s in selections]
        if wide:
            bitmap: RoaringBitmap | Roaring64Map = Roaring64Map.from_iterable(values)
        else:
            bitmap = RoaringBitmap.from_iterable(values)
        return cls(tuple(selections), bitmap)

    def __len__(self) -> int:
        """Number of distinct fingerprint values."""
        return len(self.bitmap)

    @property
    def values(self) -> list[int]:
        """Fingerprint values in selection order (with positional repeats)."""
        return [s.fingerprint for s in self.selections]

    @property
    def positions(self) -> list[int]:
        """K-gram positions of the selections, in order."""
        return [s.position for s in self.selections]

    def jaccard(self, other: "FingerprintSet") -> float:
        """Jaccard coefficient with another fingerprint set."""
        return self.bitmap.jaccard(other.bitmap)  # type: ignore[arg-type]

    def jaccard_distance(self, other: "FingerprintSet") -> float:
        """Jaccard distance (paper Equation 1) with another set."""
        return self.bitmap.jaccard_distance(other.bitmap)  # type: ignore[arg-type]

    def intersection_cardinality(self, other: "FingerprintSet") -> int:
        """Number of shared fingerprint values."""
        return self.bitmap.intersection_cardinality(other.bitmap)  # type: ignore[arg-type]

    def __contains__(self, fingerprint: int) -> bool:
        return fingerprint in self.bitmap


class Fingerprinter:
    """Facade turning trajectories into :class:`FingerprintSet`s.

    This is the function ``W`` of the paper (Section III-B): it hides the
    winnower and chooses the bitmap width implied by the configuration.
    """

    __slots__ = ("winnower", "_wide", "_batch")

    def __init__(self, config: GeodabConfig | GeodabScheme | None = None) -> None:
        if isinstance(config, GeodabScheme):
            self.winnower = TrajectoryWinnower(config)
        else:
            self.winnower = TrajectoryWinnower(GeodabScheme(config))
        self._wide = not self.winnower.config.fits_in_32_bits
        self._batch = None

    @property
    def config(self) -> GeodabConfig:
        """The pipeline configuration."""
        return self.winnower.config

    @property
    def scheme(self) -> GeodabScheme:
        """The geodab construction scheme."""
        return self.winnower.scheme

    def fingerprint(self, points: Trajectory) -> FingerprintSet:
        """Compute ``W(S)`` for a (normalized) trajectory."""
        return FingerprintSet.from_selections(
            self.winnower.select(points), wide=self._wide
        )

    def fingerprint_many(
        self, trajectories: Iterable[Trajectory]
    ) -> list[FingerprintSet]:
        """Fingerprint a batch of trajectories.

        Delegates to the numpy-vectorized
        :class:`~repro.pipeline.BatchFingerprinter`, which produces
        bit-identical results to per-trajectory :meth:`fingerprint` but
        evaluates the whole batch columnar-style (the import is lazy —
        the pipeline package builds on this module).
        """
        return self._batch_fingerprinter().fingerprint_many(trajectories)

    def fingerprint_batch(self, batch) -> list[FingerprintSet]:
        """Fingerprint an already-columnar :class:`PointBatch`.

        The zero-conversion fast path: batch normalizers hand their
        coordinate arrays straight to the vectorized pipeline.
        """
        return self._batch_fingerprinter().fingerprint_batch(batch)

    def fingerprint_normalized_many(
        self, normalizer, trajectories: Iterable[Trajectory]
    ) -> list[FingerprintSet]:
        """Normalize and fingerprint a batch, columnar when possible.

        The shared bulk path of both index backends: normalizers with a
        vectorized counterpart (including ``None``) run as numpy sweeps
        over one concatenated point array straight into
        :meth:`fingerprint_batch`; arbitrary callables fall back to
        per-trajectory normalization before the vectorized fingerprint
        pipeline.
        """
        from ..normalize.batch import normalize_point_batch

        batch = list(trajectories)
        point_batch = normalize_point_batch(normalizer, batch)
        if point_batch is not None:
            return self.fingerprint_batch(point_batch)
        assert normalizer is not None  # None always vectorizes
        return self.fingerprint_many(
            [normalizer(points) for points in batch]
        )

    def _batch_fingerprinter(self):
        if self._batch is None:
            from ..pipeline import BatchFingerprinter

            self._batch = BatchFingerprinter(self.scheme)
        return self._batch
