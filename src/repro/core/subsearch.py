"""Sub-trajectory (motif containment) search over a geodab index.

Section III-A1 of the paper motivates fingerprinting with the failure of
positional word indexes at sub-sequence search; the geodab index makes
that search cheap because each trajectory's winnowed fingerprints are
stored *in order*.  Two query modes build on that:

* :func:`containment_search` — rank indexed trajectories by Broder
  containment ``|Q & T| / |Q|``: the fraction of the query's fingerprints
  the trajectory covers, regardless of order.  High containment means
  "the query occurs somewhere inside this trajectory".
* :func:`ordered_containment_search` — additionally require the shared
  fingerprints to appear *in the query's order* inside the candidate
  (via longest common subsequence over the selection sequences), which
  suppresses accidental matches from re-visited areas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..geo.point import Trajectory
from .index import GeodabIndex

__all__ = ["SubMatch", "containment_search", "ordered_containment_search"]


@dataclass(frozen=True, slots=True)
class SubMatch:
    """One sub-trajectory search hit.

    ``containment`` is the set-based score; ``ordered_containment`` the
    order-respecting score (equal to ``containment`` for unordered
    search).
    """

    trajectory_id: Hashable
    containment: float
    ordered_containment: float
    shared_fingerprints: int


def _lcs_length(query: Sequence[int], target: Sequence[int]) -> int:
    """Length of the longest common subsequence of two value sequences.

    Classic O(|query| * |target|) dynamic program over two rolling rows;
    fingerprint sequences are short (tens of selections), so this stays
    cheap even across many candidates.
    """
    if not query or not target:
        return 0
    previous = [0] * (len(target) + 1)
    current = [0] * (len(target) + 1)
    for q_value in query:
        for j, t_value in enumerate(target, start=1):
            if q_value == t_value:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous, current = current, previous
    return previous[len(target)]


def _candidates_with_queryfp(index: GeodabIndex, points: Trajectory):
    query_fp = index.fingerprint_query(points)
    query_values = query_fp.values
    seen: set[Hashable] = set()
    for term in set(query_values):
        for trajectory_id in index.postings_for(term):
            seen.add(trajectory_id)
    return query_fp, query_values, seen


def containment_search(
    index: GeodabIndex,
    points: Trajectory,
    limit: int | None = None,
    min_containment: float = 0.0,
) -> list[SubMatch]:
    """Trajectories ranked by how much of the query they contain.

    Returns matches with ``containment >= min_containment``, best first;
    ties break by identifier.  An empty-fingerprint query matches
    nothing.
    """
    if not 0.0 <= min_containment <= 1.0:
        raise ValueError("min_containment must be in [0, 1]")
    query_fp, query_values, candidates = _candidates_with_queryfp(index, points)
    if len(query_fp) == 0:
        return []
    out: list[SubMatch] = []
    for trajectory_id in candidates:
        target_fp = index.fingerprint_set(trajectory_id)
        shared = query_fp.intersection_cardinality(target_fp)
        containment = shared / len(query_fp)
        if containment >= min_containment and shared > 0:
            out.append(
                SubMatch(trajectory_id, containment, containment, shared)
            )
    out.sort(key=lambda m: (-m.containment, str(m.trajectory_id)))
    return out if limit is None else out[:limit]


def ordered_containment_search(
    index: GeodabIndex,
    points: Trajectory,
    limit: int | None = None,
    min_containment: float = 0.0,
) -> list[SubMatch]:
    """Like :func:`containment_search`, but order-sensitive.

    The ordered score is ``LCS(query, target) / |query selections|``: the
    longest run of query fingerprints appearing in the same order inside
    the target.  A trajectory that covers the query's cells in a
    different order (e.g. a detour revisiting them) scores lower than a
    true containment.
    """
    if not 0.0 <= min_containment <= 1.0:
        raise ValueError("min_containment must be in [0, 1]")
    query_fp, query_values, candidates = _candidates_with_queryfp(index, points)
    if not query_values:
        return []
    out: list[SubMatch] = []
    for trajectory_id in candidates:
        target_fp = index.fingerprint_set(trajectory_id)
        shared = query_fp.intersection_cardinality(target_fp)
        if shared == 0:
            continue
        containment = shared / len(query_fp)
        ordered = _lcs_length(query_values, target_fp.values) / len(query_values)
        if ordered >= min_containment:
            out.append(SubMatch(trajectory_id, containment, ordered, shared))
    out.sort(key=lambda m: (-m.ordered_containment, str(m.trajectory_id)))
    return out if limit is None else out[:limit]
