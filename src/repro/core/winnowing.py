"""Trajectory winnowing (paper Algorithm 1, adapting Schleimer et al. 2003).

Winnowing samples the stream of k-gram fingerprints with two guarantees:

1. *Noise threshold*: no match shorter than ``k`` normalized cells is ever
   detected, because only k-grams are hashed.
2. *Guarantee threshold*: any common cell sub-sequence of length at least
   ``t`` shares at least one selected fingerprint, because each window of
   ``w = t - k + 1`` consecutive k-gram hashes contributes its (rightmost)
   minimum.

Selecting the rightmost minimum per window and deduplicating consecutive
re-selections is exactly the behaviour of Algorithm 1 (its set union makes
repeated selections idempotent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..geo.point import Point, Trajectory
from ..hashing.rolling import windowed_minima
from .config import GeodabConfig
from .geodab import GeodabScheme

__all__ = ["Selection", "winnow", "winnow_positions", "TrajectoryWinnower"]


@dataclass(frozen=True, slots=True)
class Selection:
    """A winnowed fingerprint together with the k-gram index it came from.

    ``position`` indexes the k-gram stream: the fingerprint covers input
    elements ``position .. position + k - 1``.
    """

    fingerprint: int
    position: int


def winnow(hashes: Sequence[int], window: int) -> list[Selection]:
    """Select the rightmost minimum of every ``window``-sized window.

    Consecutive windows frequently re-select the same element; duplicates
    (same value at the same position) are collapsed, matching the set
    semantics of Algorithm 1 while preserving selection order.

    Sequences shorter than ``window`` yield their single minimum — the
    boundary behaviour of a winnow whose only window is the whole
    sequence — so short (but >= 1 k-gram) trajectories still fingerprint.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    n = len(hashes)
    if n == 0:
        return []
    if n < window:
        best_value = hashes[0]
        best_index = 0
        for i in range(1, n):
            if hashes[i] <= best_value:
                best_value = hashes[i]
                best_index = i
        return [Selection(best_value, best_index)]
    out: list[Selection] = []
    last_index = -1
    for value, index in windowed_minima(hashes, window):
        if index != last_index:
            out.append(Selection(value, index))
            last_index = index
    return out


def winnow_positions(hashes: Sequence[int], window: int) -> list[int]:
    """Indices selected by :func:`winnow` (used by density diagnostics)."""
    return [s.position for s in winnow(hashes, window)]


class TrajectoryWinnower:
    """End-to-end trajectory fingerprinting: points -> winnowed geodabs.

    Combines the geodab construction with winnowing.  The input trajectory
    is expected to be *normalized already* (see :mod:`repro.normalize`);
    the winnower maps points to normalization cells, removes consecutive
    duplicate cells (re-normalizing is harmless and guards against callers
    skipping normalization), derives one geodab per k-gram of cells, and
    winnows the geodab stream.
    """

    __slots__ = ("scheme",)

    def __init__(self, scheme: GeodabScheme | GeodabConfig | None = None) -> None:
        if scheme is None:
            scheme = GeodabScheme()
        elif isinstance(scheme, GeodabConfig):
            scheme = GeodabScheme(scheme)
        self.scheme = scheme

    @property
    def config(self) -> GeodabConfig:
        """The underlying pipeline configuration."""
        return self.scheme.config

    def kgram_geodabs(self, points: Trajectory) -> list[int]:
        """Geodab of every k-gram of the (deduplicated) cell sequence.

        Returns the candidate stream ``C`` of Algorithm 1, in order.
        Trajectories spanning fewer than ``k`` distinct cells produce an
        empty stream — they are below the noise threshold by definition.
        """
        scheme = self.scheme
        k = scheme.config.k
        deep: list[int] = []
        cells: list[int] = []
        previous_cell: int | None = None
        for p in points:
            d = scheme.deep_encode(p)
            cell = scheme.cell_of_deep(d)
            if cell != previous_cell:
                deep.append(d)
                cells.append(cell)
                previous_cell = cell
        if len(cells) < k:
            return []
        out: list[int] = []
        for i in range(len(cells) - k + 1):
            out.append(scheme.geodab_from_parts(deep[i : i + k], cells[i : i + k]))
        return out

    def select(self, points: Trajectory) -> list[Selection]:
        """Winnowed geodab selections (fingerprint, k-gram position)."""
        return winnow(self.kgram_geodabs(points), self.config.window)

    def fingerprints(self, points: Trajectory) -> list[int]:
        """Winnowed geodabs in selection order (may contain repeats of a
        value selected at different positions)."""
        return [s.fingerprint for s in self.select(points)]

    def fingerprint_density(self, points: Trajectory, length_m: float) -> float:
        """Fingerprints per meter — the ``a`` of the motif translation
        ``f = l * a`` (Section VI-C).  Zero for degenerate inputs."""
        if length_m <= 0.0:
            return 0.0
        return len(self.select(points)) / length_m
