"""Core contribution: geodab fingerprinting and trajectory indexing."""

from .arena import SlotArena
from .baseline import GeohashIndex
from .config import PAPER_CONFIG, GeodabConfig
from .fastpath import FastTrajectoryWinnower
from .fingerprint import Fingerprinter, FingerprintSet
from .geodab import GeodabScheme
from .index import (
    GeodabIndex,
    IndexStats,
    QueryStats,
    SearchResult,
    TrajectoryInvertedIndex,
)
from .motif import MotifMatch, discover_motif, find_common_motif
from .persistence import (
    load_index,
    publish_snapshot,
    resolve_snapshot,
    save_index,
)
from .query import FanoutStats, PreparedQuery
from .scoring import ScoringStats, rank_candidates, rank_candidates_scalar
from .subsearch import SubMatch, containment_search, ordered_containment_search
from .winnowing import Selection, TrajectoryWinnower, winnow, winnow_positions

__all__ = [
    "FanoutStats",
    "FastTrajectoryWinnower",
    "Fingerprinter",
    "FingerprintSet",
    "GeodabConfig",
    "GeodabIndex",
    "GeodabScheme",
    "GeohashIndex",
    "IndexStats",
    "MotifMatch",
    "PAPER_CONFIG",
    "PreparedQuery",
    "QueryStats",
    "ScoringStats",
    "SearchResult",
    "Selection",
    "SlotArena",
    "SubMatch",
    "TrajectoryInvertedIndex",
    "TrajectoryWinnower",
    "discover_motif",
    "find_common_motif",
    "containment_search",
    "load_index",
    "ordered_containment_search",
    "publish_snapshot",
    "rank_candidates",
    "rank_candidates_scalar",
    "resolve_snapshot",
    "save_index",
    "winnow",
    "winnow_positions",
]
