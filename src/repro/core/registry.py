"""Fingerprint registry: named fingerprint variants, selected per query.

The paper fixes one fingerprint parameterization (geohash depth ``d``,
k-gram size ``k``, winnowing window ``t``) for the whole index, but the
re-rank benchmarks showed retrieval-tier recall depends directly on
fingerprint *density*: a smaller winnowing window keeps more geodabs per
trajectory, so the Jaccard tier surfaces more of the true exact-metric
neighbours at the cost of a bigger index.  Exact queries therefore want
a dense variant while approx queries keep the paper's defaults — the
same filter/metric separation the drug-discovery fingerprint stores
make by indexing typed fingerprint variants side by side.

This module owns the naming and parameter bookkeeping:

* :class:`VariantSpec` — one named parameterization.  Only the fields
  that change fingerprint *content* are per-variant (``depth``, ``k``,
  ``t``, ``suffix_hash``); term layout fields (prefix/suffix bits,
  hash seed) are inherited from the index's base configuration, so one
  shard router and one bitmap width serve every variant.
* :class:`FingerprintRegistry` — the ordered set of variants an index
  was constructed with.  The ``default`` variant is always first and
  always carries the base configuration, so a registry-free index is
  exactly a one-entry registry and existing behaviour is unchanged.
* :exc:`UnknownVariant` — raised when a query names a variant the index
  was not built with (the HTTP tier maps it to a structured 400).

``resolve`` also implements the ``auto`` policy: pick the densest
registered variant (smallest winnowing window ``w = t - k + 1``; ties
break by registration order), which is what exact queries want when the
client does not care about variant names.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterator, Mapping, Sequence

from .config import SUFFIX_HASHES, GeodabConfig

__all__ = [
    "AUTO_VARIANT",
    "DEFAULT_VARIANT",
    "FingerprintRegistry",
    "UnknownVariant",
    "VariantSpec",
]

#: Name of the implicit variant carrying the index's base configuration.
DEFAULT_VARIANT = "default"

#: Pseudo-name resolving to the densest registered variant.
AUTO_VARIANT = "auto"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


class UnknownVariant(LookupError):
    """A query named a fingerprint variant the index was not built with."""

    def __init__(self, name: object, known: Sequence[str]) -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown fingerprint variant {name!r}; registered variants: "
            f"{', '.join(self.known)} (or 'auto')"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class VariantSpec:
    """One named fingerprint parameterization.

    Only content-shaping fields are declared here; the derived
    :class:`~repro.core.config.GeodabConfig` (see :meth:`config_for`)
    inherits the base configuration's term layout (prefix/suffix bits,
    cover depth, hash seed) so every variant's terms route through the
    same shard placement and share one bitmap width.
    """

    name: str
    normalization_depth: int = 36
    k: int = 6
    t: int = 12
    suffix_hash: str = "chain"

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            raise ValueError(
                "variant names must be non-empty and use only letters, "
                f"digits, '_', '.', '-' (got {self.name!r})"
            )
        if self.name == AUTO_VARIANT:
            raise ValueError("'auto' is reserved for the densest-variant policy")
        if self.suffix_hash not in SUFFIX_HASHES:
            raise ValueError(
                f"'suffix_hash' must be one of {'/'.join(SUFFIX_HASHES)}, "
                f"got {self.suffix_hash!r}"
            )
        # Delegate numeric validation (k >= 1, t >= k, depth bounds) to
        # the config type itself so a variant can never hold parameters
        # the fingerprint pipeline would reject later.
        GeodabConfig(
            normalization_depth=self.normalization_depth,
            k=self.k,
            t=self.t,
            suffix_hash=self.suffix_hash,
        )

    @property
    def window(self) -> int:
        """Winnowing window width ``w = t - k + 1`` (density inverse)."""
        return self.t - self.k + 1

    def config_for(self, base: GeodabConfig) -> GeodabConfig:
        """The full pipeline config: this variant over ``base``'s layout."""
        return dataclasses.replace(
            base,
            normalization_depth=self.normalization_depth,
            k=self.k,
            t=self.t,
            suffix_hash=self.suffix_hash,
        )

    @classmethod
    def from_config(cls, name: str, config: GeodabConfig) -> "VariantSpec":
        """Variant carrying ``config``'s content-shaping fields."""
        return cls(
            name=name,
            normalization_depth=config.normalization_depth,
            k=config.k,
            t=config.t,
            suffix_hash=config.suffix_hash,
        )

    @classmethod
    def parse(cls, flag: str) -> "VariantSpec":
        """Parse a ``NAME=depth,k,t[,scheme]`` CLI flag value."""
        name, eq, params = flag.partition("=")
        if not eq:
            raise ValueError(
                f"variant flag {flag!r} must look like NAME=depth,k,t[,scheme]"
            )
        parts = [part.strip() for part in params.split(",")]
        if len(parts) not in (3, 4):
            raise ValueError(
                f"variant flag {flag!r} must give depth,k,t (and optionally "
                "a suffix-hash scheme)"
            )
        try:
            depth, k, t = (int(part) for part in parts[:3])
        except ValueError:
            raise ValueError(
                f"variant flag {flag!r}: depth, k and t must be integers"
            ) from None
        suffix_hash = parts[3] if len(parts) == 4 else "chain"
        return cls(
            name=name.strip(),
            normalization_depth=depth,
            k=k,
            t=t,
            suffix_hash=suffix_hash,
        )

    def to_json(self) -> dict:
        """JSON-ready form (snapshot manifests, ``GET /stats``)."""
        return {
            "name": self.name,
            "normalization_depth": self.normalization_depth,
            "k": self.k,
            "t": self.t,
            "suffix_hash": self.suffix_hash,
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "VariantSpec":
        """Inverse of :meth:`to_json`; raises ``ValueError`` on bad shape."""
        if not isinstance(payload, Mapping):
            raise ValueError("variant entries must be JSON objects")
        known = {"name", "normalization_depth", "k", "t", "suffix_hash"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown variant field(s) {sorted(unknown)!r}")
        if "name" not in payload:
            raise ValueError("variant entries require a 'name'")
        return cls(**dict(payload))


class FingerprintRegistry:
    """The ordered fingerprint variants one index was constructed with.

    The ``default`` variant is always present, always first, and always
    carries the index's base configuration — a registry built with no
    extras is behaviourally identical to the pre-registry single-variant
    index.  Extra variants keep their registration order, which is the
    tie-break of the ``auto`` (densest) policy.
    """

    __slots__ = ("base_config", "_specs")

    def __init__(
        self,
        base_config: GeodabConfig,
        extras: Sequence[VariantSpec] = (),
    ) -> None:
        self.base_config = base_config
        specs: dict[str, VariantSpec] = {
            DEFAULT_VARIANT: VariantSpec.from_config(DEFAULT_VARIANT, base_config)
        }
        for spec in extras:
            if spec.name in specs:
                raise ValueError(f"duplicate variant name {spec.name!r}")
            specs[spec.name] = spec
        self._specs = specs

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Variant names in registration order (``default`` first)."""
        return tuple(self._specs)

    @property
    def extra_names(self) -> tuple[str, ...]:
        """Non-default variant names in registration order."""
        return tuple(self._specs)[1:]

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[VariantSpec]:
        return iter(self._specs.values())

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def resolve(self, name: str) -> str:
        """Concrete variant name for a query's request.

        ``auto`` resolves to the densest registered variant — smallest
        winnowing window, registration order breaking ties — because
        density is what the exact tier's recall depends on.  Unknown
        names raise :exc:`UnknownVariant` (mapped to a structured 400
        by the HTTP tier).
        """
        if name == AUTO_VARIANT:
            return min(self._specs.values(), key=self._density_key).name
        if name not in self._specs:
            raise UnknownVariant(name, self.names)
        return name

    @staticmethod
    def _density_key(spec: VariantSpec) -> tuple[int, int]:
        # Smaller window => denser selection; deeper geohash refines the
        # tie so 'auto' prefers the higher-resolution variant among
        # equally dense windows.
        return (spec.window, -spec.normalization_depth)

    def spec(self, name: str) -> VariantSpec:
        """The :class:`VariantSpec` behind a (resolved) name."""
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownVariant(name, self.names) from None

    def config(self, name: str) -> GeodabConfig:
        """Full pipeline configuration of a (resolved) variant."""
        return self.spec(name).config_for(self.base_config)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def describe(self) -> list[dict]:
        """JSON-ready variant list (manifest ``variants`` section)."""
        return [spec.to_json() for spec in self._specs.values()]

    @classmethod
    def from_manifest(
        cls, payload: object, base_config: GeodabConfig
    ) -> "FingerprintRegistry":
        """Rebuild from a manifest ``variants`` section.

        The default entry, when present, must match the manifest's own
        base config — the two are written from the same source, so a
        mismatch means a corrupt or hand-edited snapshot.
        """
        if payload is None:
            return cls(base_config)
        if not isinstance(payload, list):
            raise ValueError("manifest 'variants' must be a list")
        extras: list[VariantSpec] = []
        for entry in payload:
            spec = VariantSpec.from_json(entry)
            if spec.name == DEFAULT_VARIANT:
                if spec != VariantSpec.from_config(DEFAULT_VARIANT, base_config):
                    raise ValueError(
                        "manifest default variant contradicts its base config"
                    )
                continue
            extras.append(spec)
        return cls(base_config, extras)
