"""The geodab construction (paper Section IV, Figure 3).

A geodab fingerprints a k-gram of trajectory points by concatenating

* a *geohash prefix*: the finest geohash cell overlapping all k points,
  truncated (or curve-aligned-extended) to ``prefix_bits`` — this places
  the fingerprint on the z-order curve near its geography, enabling
  locality-preserving sharding; and
* an *order-sensitive hash suffix* over the sequence of normalized cells —
  this discriminates k-grams "according to their path and their ordering",
  so the same street walked in opposite directions yields different
  fingerprints.

``geodab = prefix << suffix_bits | suffix``.
"""

from __future__ import annotations

from typing import Sequence

from ..geo.geohash import Geohash, encode, truncate
from ..geo.point import Point, Trajectory
from ..hashing.rolling import direct_window_hash
from ..hashing.stable import mix64, splitmix64, hash_int_sequence_64
from .config import GeodabConfig


class GeodabScheme:
    """Derives geodabs from point k-grams under a fixed configuration.

    The scheme pre-computes the bit arithmetic implied by the
    :class:`~repro.core.config.GeodabConfig` so the winnowing inner loop
    stays cheap.  All methods are deterministic across processes.
    """

    __slots__ = (
        "config",
        "_suffix_mask",
        "_cell_shift",
        "_seed",
    )

    def __init__(self, config: GeodabConfig | None = None) -> None:
        self.config = config or GeodabConfig()
        self._suffix_mask = (1 << self.config.suffix_bits) - 1
        # Cells at normalization depth are derived from the deep encoding
        # by dropping this many trailing bits.
        self._cell_shift = self.config.cover_depth - min(
            self.config.cover_depth, self.config.normalization_depth
        )
        self._seed = self.config.hash_seed

    # ------------------------------------------------------------------
    # Point-level encodings
    # ------------------------------------------------------------------

    def deep_encode(self, point: Point) -> int:
        """Geohash bits of a point at ``cover_depth``."""
        return encode(point, self.config.cover_depth)

    def cell_of_deep(self, deep_bits: int) -> int:
        """Normalization cell id derived from a deep encoding.

        When ``normalization_depth > cover_depth`` the deep encoding *is*
        the shallower of the two, so the cell id equals the deep bits.
        """
        return deep_bits >> self._cell_shift

    def cell_of(self, point: Point) -> int:
        """Normalization cell id of a point."""
        if self.config.normalization_depth >= self.config.cover_depth:
            return encode(point, self.config.normalization_depth)
        return self.cell_of_deep(self.deep_encode(point))

    # ------------------------------------------------------------------
    # Geodab construction
    # ------------------------------------------------------------------

    def prefix_from_deep(self, deep_encodings: Sequence[int]) -> int:
        """Geohash prefix of a k-gram, from the points' deep encodings.

        Computes the longest common prefix of the encodings (the covering
        cell of Figure 3a) and aligns it to ``prefix_bits``: deeper covers
        are truncated; shallower covers (points straddling a coarse
        bisection boundary) are extended with zeros, i.e. mapped to the
        start of their subtree on the z-order curve.
        """
        first = deep_encodings[0]
        diff = 0
        for bits in deep_encodings:
            diff |= first ^ bits
        cover_depth = self.config.cover_depth - diff.bit_length()
        prefix_bits = self.config.prefix_bits
        if cover_depth >= prefix_bits:
            return first >> (self.config.cover_depth - prefix_bits)
        cover = first >> (self.config.cover_depth - cover_depth) if cover_depth else 0
        return cover << (prefix_bits - cover_depth)

    def suffix_from_cells(self, cells: Sequence[int]) -> int:
        """Order-sensitive hash suffix over normalized cell ids.

        With ``suffix_hash="polynomial"`` the raw k-gram hash is the
        rolling-capable polynomial hash finished by one avalanche mix; the
        fast-path winnower relies on reproducing exactly this value from
        its rolling state.
        """
        if self.config.suffix_hash == "polynomial":
            raw = direct_window_hash(cells)
            return mix64(raw ^ splitmix64(self._seed)) & self._suffix_mask
        return hash_int_sequence_64(cells, self._seed) & self._suffix_mask

    def finish_polynomial_suffix(self, raw_window_hash: int) -> int:
        """Suffix from an already-rolled polynomial window hash."""
        return mix64(raw_window_hash ^ splitmix64(self._seed)) & self._suffix_mask

    def geodab_from_parts(self, deep_encodings: Sequence[int], cells: Sequence[int]) -> int:
        """Assemble a geodab from precomputed per-point encodings."""
        prefix = self.prefix_from_deep(deep_encodings)
        suffix = self.suffix_from_cells(cells)
        return (prefix << self.config.suffix_bits) | suffix

    def geodab(self, points: Trajectory) -> int:
        """Geodab of a k-gram of points (the full Figure 3 construction)."""
        if not points:
            raise ValueError("geodab of empty k-gram")
        deep = [self.deep_encode(p) for p in points]
        cells = [d >> self._cell_shift for d in deep]
        if self.config.normalization_depth > self.config.cover_depth:
            cells = [self.cell_of(p) for p in points]
        return self.geodab_from_parts(deep, cells)

    # ------------------------------------------------------------------
    # Decomposition (used by sharding and diagnostics)
    # ------------------------------------------------------------------

    def prefix_of(self, geodab: int) -> int:
        """Extract the geohash prefix bits from a geodab."""
        return geodab >> self.config.suffix_bits

    def suffix_of(self, geodab: int) -> int:
        """Extract the hash suffix bits from a geodab."""
        return geodab & self._suffix_mask

    def prefix_cell(self, geodab: int) -> Geohash:
        """The geohash cell named by a geodab's prefix."""
        return Geohash(self.prefix_of(geodab), self.config.prefix_bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return (
            f"GeodabScheme(depth={c.normalization_depth}, k={c.k}, t={c.t}, "
            f"layout={c.prefix_bits}+{c.suffix_bits})"
        )
