"""O(n) streaming winnower using rolling hashes and circular buffers.

Section IV-A of the paper: "An optimised version of this algorithm relies
on circular buffers and rolling hash functions for iterating over k-grams
of points and windows of hashes" — the authors drop it because normalized
trajectories are short.  This module implements that optimised version:

* the k-gram *suffix* rolls via a polynomial hash
  (:class:`~repro.hashing.rolling.PolynomialRollingHash`);
* the k-gram *prefix* (covering geohash) is maintained by a two-stack
  sliding-window aggregate over the associative longest-common-prefix
  operation (:mod:`repro.hashing.window`);
* winnowing selects window minima with a monotonic deque
  (:class:`~repro.hashing.rolling.MinQueue`).

Under ``GeodabConfig(suffix_hash="polynomial")`` the output is *bit-for-
bit identical* to :class:`~repro.core.winnowing.TrajectoryWinnower`,
which the test suite asserts; the whole pipeline is a single pass.
"""

from __future__ import annotations

from ..geo.point import Trajectory
from ..hashing.rolling import MinQueue, PolynomialRollingHash
from ..hashing.window import SlidingWindowAggregate, common_prefix_op
from .config import GeodabConfig
from .geodab import GeodabScheme
from .winnowing import Selection

__all__ = ["FastTrajectoryWinnower"]


class FastTrajectoryWinnower:
    """Single-pass trajectory winnower (the paper's dropped optimisation).

    Requires ``suffix_hash="polynomial"`` — the chained splitmix suffix of
    the default configuration cannot be rolled.
    """

    __slots__ = ("scheme",)

    def __init__(self, scheme: GeodabScheme | GeodabConfig | None = None) -> None:
        if scheme is None:
            scheme = GeodabScheme(GeodabConfig(suffix_hash="polynomial"))
        elif isinstance(scheme, GeodabConfig):
            scheme = GeodabScheme(scheme)
        if scheme.config.suffix_hash != "polynomial":
            raise ValueError(
                "FastTrajectoryWinnower requires suffix_hash='polynomial'"
            )
        self.scheme = scheme

    @property
    def config(self) -> GeodabConfig:
        """The underlying pipeline configuration."""
        return self.scheme.config

    def select(self, points: Trajectory) -> list[Selection]:
        """Winnowed geodab selections, computed in one streaming pass."""
        scheme = self.scheme
        config = scheme.config
        k = config.k
        window = config.window
        suffix_bits = config.suffix_bits
        cover_depth = config.cover_depth

        suffix_roller = PolynomialRollingHash(k)
        prefix_window: SlidingWindowAggregate[tuple[int, int]] = (
            SlidingWindowAggregate(k, common_prefix_op(cover_depth))
        )
        min_queue = MinQueue(window)

        selections: list[Selection] = []
        last_selected = -1
        previous_cell: int | None = None
        grams = 0
        # Fallback bookkeeping for streams shorter than the winnow window:
        # track the rightmost minimum seen so far.
        best_value: int | None = None
        best_index = -1

        for p in points:
            deep = scheme.deep_encode(p)
            cell = scheme.cell_of_deep(deep)
            if cell == previous_cell:
                continue
            previous_cell = cell
            raw_suffix = suffix_roller.push(cell)
            cover = prefix_window.push((deep, cover_depth))
            if raw_suffix is None or cover is None:
                continue
            # Assemble the geodab exactly as GeodabScheme does.
            cover_bits, common = cover
            prefix_bits = config.prefix_bits
            if common >= prefix_bits:
                prefix = cover_bits >> (common - prefix_bits)
            else:
                prefix = cover_bits << (prefix_bits - common)
            geodab = (prefix << suffix_bits) | scheme.finish_polynomial_suffix(
                raw_suffix
            )
            index = grams
            grams += 1
            if best_value is None or geodab <= best_value:
                best_value = geodab
                best_index = index
            min_queue.push(geodab)
            if min_queue.ready:
                value, position = min_queue.minimum()
                if position != last_selected:
                    selections.append(Selection(value, position))
                    last_selected = position
        if grams == 0:
            return []
        if grams < window:
            assert best_value is not None
            return [Selection(best_value, best_index)]
        return selections

    def fingerprints(self, points: Trajectory) -> list[int]:
        """Winnowed geodabs in selection order."""
        return [s.fingerprint for s in self.select(points)]
