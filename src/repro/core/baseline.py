"""Geohash inverted index — the paper's baseline comparator (Figs. 12-14).

This index follows the practice of geographic search engines (the paper
cites Elastic/foursquare): terms are the *normalized geohash cells* a
trajectory visits, with no ordering information.  It therefore cannot tell
a trajectory from its reverse, which is exactly the discrimination failure
Figures 12 and 13 quantify (precision plateaus at 0.5 on a dataset where
every route has a return path).
"""

from __future__ import annotations

from typing import Hashable

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from ..geo.geohash import encode
from ..geo.point import Trajectory
from .index import Normalizer, TrajectoryInvertedIndex

__all__ = ["GeohashIndex"]


class GeohashIndex(TrajectoryInvertedIndex):
    """Inverted index whose terms are normalized geohash cell ids.

    ``depth`` is the geohash depth of the cells; the paper's evaluation
    uses the same depth as the geodab normalization (36 bits) so the two
    indexes see identical spatial resolution and differ only in ordering
    information.
    """

    def __init__(
        self,
        depth: int = 36,
        normalizer: Normalizer | None = None,
        store_points: bool = False,
    ) -> None:
        super().__init__(store_points=store_points)
        if depth < 1:
            raise ValueError("depth must be positive")
        self.depth = depth
        self.normalizer = normalizer
        self._wide = depth > 32

    def _extract(self, points: Trajectory) -> tuple[
        list[int], RoaringBitmap | Roaring64Map
    ]:
        if self.normalizer is not None:
            points = self.normalizer(points)
        cells: list[int] = []
        previous: int | None = None
        for p in points:
            cell = encode(p, self.depth)
            if cell != previous:
                cells.append(cell)
                previous = cell
        distinct = sorted(set(cells))
        if self._wide:
            bitmap: RoaringBitmap | Roaring64Map = Roaring64Map.from_iterable(distinct)
        else:
            bitmap = RoaringBitmap.from_iterable(distinct)
        return distinct, bitmap
