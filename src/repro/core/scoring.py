"""Vectorized top-k Jaccard ranking shared by every query path.

Candidate *collection* has been columnar since PR 3 (`merge_hits` turns
per-shard hit streams into ``(internal_ids, shared_term_counts)`` in one
``np.unique`` pass), but candidate *ranking* still looped per candidate
calling ``Roaring64Map.jaccard_distance``.  This module closes that gap
with an identity the paper's Equation 1 makes available for free: with

* ``inter`` — the shared-term count ``merge_hits`` already returns
  (``|Q ∩ T|``: query plan terms and stored postings terms are both the
  *distinct* fingerprint values, so the multiplicity count is exactly
  the bitmap intersection cardinality), and
* ``card[slot]`` — the stored term-set cardinality ``|T|`` kept in the
  arena's :class:`~repro.core.arena.CardinalityColumn`,

the Jaccard distance is ``1 - inter / (|Q| + card[slot] - inter)``.
Scoring an entire candidate set is therefore a handful of numpy ops with
**zero bitmap intersections**, followed by an ``np.partition`` top-k cut
and one small Python sort for the deterministic
``(distance, str(id))`` tie-break.

Identity with the scalar path is exact, not approximate: the distance is
computed with the same IEEE-754 ops (`int64 / int64 -> float64`, then
``1.0 - x``) the per-candidate ``jaccard_distance`` used, so ranks,
distances, and tie-breaks are bit-identical (property-tested against
:func:`rank_candidates_scalar`, the retained pre-refactor loop).

Count-based pruning (the kNN-style cut of Gudmundsson et al.'s proximity
structures): ``distance <= D`` is algebraically equivalent to
``inter * (2 - D) >= (1 - D) * (|Q| + card)``, so a ``max_distance``
bound below 1.0 becomes a *minimum-overlap threshold* applied in one
boolean mask before any distance is computed.  The float evaluation of
the threshold carries a conservative slack — borderline candidates
survive the prune and the exact distance mask decides — so pruning can
never change results, only skip work; the number of candidates cut this
way surfaces as the ``pruned`` statistic.  When ``limit`` is set, the
running k-th-best distance (found by ``np.partition``) cuts every
candidate that cannot reach the top k under any tie-break before the
final sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..bitmap.roaring import Roaring64Map, RoaringBitmap
from .arena import TOMBSTONE
from .query import MatchCounts

__all__ = [
    "ScoringStats",
    "SearchResult",
    "live_candidates",
    "rank_candidates",
    "rank_candidates_scalar",
]


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One ranked retrieval hit."""

    trajectory_id: Hashable
    distance: float
    shared_terms: int

    @property
    def jaccard(self) -> float:
        """Jaccard coefficient (complement of the reported distance)."""
        return 1.0 - self.distance


@dataclass(frozen=True, slots=True)
class ScoringStats:
    """Work accounting of one ranking pass.

    ``candidates`` counts the live (non-tombstoned) merged candidates;
    ``pruned`` counts those eliminated by the count-based minimum-overlap
    threshold *before* any distance was computed (always 0 when
    ``max_distance`` is 1.0 — the threshold degenerates to "shares at
    least nothing"); ``scored`` counts the candidates whose exact
    distance passed ``max_distance`` (the set actually ranked, identical
    to the pre-refactor ``scored``).
    """

    candidates: int
    pruned: int
    scored: int


#: Shared empty accounting for the no-candidate early exits.
_EMPTY_STATS = ScoringStats(candidates=0, pruned=0, scored=0)


def _min_overlap_mask(
    counts: np.ndarray,
    slot_cards: np.ndarray,
    query_size: int,
    max_distance: float,
) -> np.ndarray:
    """Candidates that *may* fall within ``max_distance`` (conservative).

    Exact arithmetic: ``distance <= D  <=>  inter*(2-D) >= (1-D)*(|Q|+|T|)``.
    Evaluated in float64 the comparison could misjudge borderline
    candidates by a few ulps, so the right side is slackened by an
    amount far above the worst-case rounding error — any candidate the
    exact distance check would keep survives the mask, and the distance
    mask downstream makes the final (exact) call.
    """
    sizes = query_size + slot_cards
    slack = 1e-9 * (sizes + 1.0)
    return counts * (2.0 - max_distance) >= (1.0 - max_distance) * sizes - slack


def live_candidates(cards: np.ndarray, internals: np.ndarray) -> int:
    """Merged candidates referencing live (non-tombstoned) slots.

    One mask over the cardinality column (dead slots are negative) —
    the single definition of candidate liveness both backends report,
    so the Figure-14 work accounting cannot drift between them.
    """
    if not len(internals):
        return 0
    return int(np.count_nonzero(cards[internals] >= 0))


def rank_candidates(
    matches: MatchCounts,
    cards: np.ndarray,
    ids: Sequence[Hashable],
    query_size: int,
    limit: int | None = None,
    max_distance: float = 1.0,
) -> tuple[list[SearchResult], ScoringStats]:
    """Rank merged candidates by Jaccard distance, fully vectorized.

    ``matches`` is the ``merge_hits`` output; ``cards`` the per-slot
    cardinality column view (``TOMBSTONE_CARD`` marks dead slots, so the
    tombstone guard is one boolean mask); ``ids`` maps slots to external
    identifiers for the results; ``query_size`` is ``|Q|``, the query
    bitmap's cardinality.  Results are ordered by increasing distance
    with ties broken by ``str(id)`` — the contract of Section II-B1 —
    and cut to ``limit``.
    """
    internals, counts = matches
    if len(internals) == 0:
        return [], _EMPTY_STATS
    slot_cards = cards[internals]
    live = slot_cards >= 0
    num_live = int(np.count_nonzero(live))
    if num_live == 0:
        return [], _EMPTY_STATS
    if num_live < len(internals):
        internals = internals[live]
        counts = counts[live]
        slot_cards = slot_cards[live]
    pruned = 0
    if max_distance < 1.0:
        admissible = _min_overlap_mask(counts, slot_cards, query_size, max_distance)
        pruned = num_live - int(np.count_nonzero(admissible))
        if pruned:
            internals = internals[admissible]
            counts = counts[admissible]
            slot_cards = slot_cards[admissible]
            if len(internals) == 0:
                return [], ScoringStats(num_live, pruned, 0)
    # Exact distances in one sweep — the same IEEE-754 operations the
    # per-candidate bitmap path performed, so values are bit-identical.
    union = query_size + slot_cards - counts
    distance = 1.0 - counts / union
    within = distance <= max_distance
    scored = int(np.count_nonzero(within))
    stats = ScoringStats(candidates=num_live, pruned=pruned, scored=scored)
    if scored == 0:
        return [], stats
    if scored < len(internals):
        internals = internals[within]
        counts = counts[within]
        distance = distance[within]
    if limit is not None and limit < len(distance):
        # k-th-best cut: nothing beyond the k-th smallest distance can
        # enter the top k under any tie-break, so only the (usually
        # tiny) prefix reaches the Python tie-break sort.
        kth = np.partition(distance, limit - 1)[limit - 1]
        contenders = distance <= kth
        internals = internals[contenders]
        counts = counts[contenders]
        distance = distance[contenders]
    results = [
        SearchResult(ids[slot], dist, shared)
        for slot, dist, shared in zip(
            internals.tolist(), distance.tolist(), counts.tolist()
        )
    ]
    results.sort(key=lambda r: (r.distance, str(r.trajectory_id)))
    if limit is not None:
        del results[limit:]
    return results, stats


def rank_candidates_scalar(
    matches: MatchCounts,
    bitmaps: Sequence[RoaringBitmap | Roaring64Map],
    ids: Sequence[Hashable],
    query_bitmap: RoaringBitmap | Roaring64Map,
    limit: int | None = None,
    max_distance: float = 1.0,
) -> list[SearchResult]:
    """The pre-vectorization per-candidate bitmap loop, kept as oracle.

    One ``jaccard_distance`` bitmap intersection per candidate — this is
    what ``score_matches`` did on both backends before the engine above
    replaced it.  The property tests assert rank/distance/tie-break
    identity against it, and ``benchmarks/bench_scoring.py`` measures
    the speedup over it; nothing on the serving hot path calls it.
    """
    kept: list[SearchResult] = []
    internals, counts = matches
    for internal, shared in zip(internals.tolist(), counts.tolist()):
        if ids[internal] is TOMBSTONE:
            continue
        distance = query_bitmap.jaccard_distance(bitmaps[internal])  # type: ignore[arg-type]
        if distance <= max_distance:
            kept.append(SearchResult(ids[internal], distance, shared))
    kept.sort(key=lambda r: (r.distance, str(r.trajectory_id)))
    return kept if limit is None else kept[:limit]
