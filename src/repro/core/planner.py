"""WAND-style query planner: top-k-bounded candidate collection.

Every query path before this module collected candidates exhaustively:
``shard_partial`` concatenated the complete postings of every query term
and :func:`~repro.core.postings.merge_hits` ran ``np.unique`` over the
whole hit stream before a single candidate was cut.  This module feeds
the running k-th-best Jaccard distance back into collection (the classic
WAND / max-score discipline, applied to count-based Jaccard):

1. Order the query's distinct terms **rarest-first** by document
   frequency (fold-free ``PostingsStore.term_counts``; df ties break on
   the term value, so the order is deterministic).
2. Open postings lists in that order, merging them into a running
   ``(candidate, partial_count)`` table.  With ``r`` terms still
   unopened, a candidate not yet seen shares at most ``r`` of the
   query's ``|Q|`` terms, so its final distance is at least
   ``1 - r / |Q|`` (achieved only by a trajectory holding exactly those
   ``r`` terms and nothing else).
3. A materialized candidate's partial count only grows as further terms
   open, and ``1 - c/(|Q| + |T| - c)`` is monotone decreasing in ``c``,
   so partial counts give an **upper bound** on each candidate's final
   distance.  The k-th smallest such bound over live candidates — and
   ``max_distance`` when it is tighter — is a distance no unseen
   candidate may merely match: collection stops opening new lists once
   ``1 - r/|Q|`` strictly exceeds it.
4. After the cut, the remaining (frequent) terms cannot be dropped:
   the reported distances of already-materialized candidates must stay
   exact.  They are *completed* instead of merged — each remaining
   postings list is membership-probed against the sorted candidate
   table (``searchsorted`` + ``bincount``), never concatenated into the
   hit stream.  Postings entries for trajectories outside the table are
   the work avoided, surfaced as ``postings_skipped``.

Answer preservation is bit-exact, not approximate.  All bounds are
evaluated with the same IEEE-754 float64 operations the scoring engine
uses; rounding is monotone, so the float bound in step 2 is a true
lower bound of any float distance :func:`~repro.core.scoring.rank_candidates`
can produce, and the bounds in step 3 are true upper bounds.  The stop
test is *strict* because ranking breaks distance ties by ``str(id)``: a
candidate that exactly met the threshold could still displace a result.
Hence every trajectory the exhaustive path would return is materialized
with its exact shared-term count, and ranking the planned table yields
bit-identical rankings, distances, and tie-breaks (property-tested in
``tests/test_planner.py``; ``QuerySpec(plan="off")`` keeps the
exhaustive path as the oracle).

The planner is source-agnostic: :class:`PostingsSource` abstracts "read
dfs / open postings / complete counts" so the same control loop serves
the single-node store, the sharded backend (terms are partitioned
across shards, so per-shard counts add), and the executor's transport
scatter path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from .postings import EMPTY_HITS, PostingsStore
from .query import MatchCounts

__all__ = [
    "PlannerStats",
    "PostingsSource",
    "StoreSource",
    "collect_planned",
    "complete_counts",
    "count_hits",
    "plannable",
    "unseen_lower_bound",
]

#: Minimum pending postings volume before a threshold re-check is worth
#: its ``O(candidates)`` cost; below this, keep opening.
_MIN_FLUSH = 32

#: Dense count-accumulator lane: collection and completion count hits
#: straight into a slot-indexed array (one ``bincount`` per batch, the
#: classic term-at-a-time score accumulator) instead of sort-merging id
#: streams.  Used whenever the slot table is small in absolute terms …
_DENSE_SLOTS_MIN = 4096
#: … or no bigger than this factor of the postings volume being counted
#: (an ``O(slots)`` scan then costs no more than the sort it replaces) …
_DENSE_VOLUME_FACTOR = 4
#: … and never beyond this many slots (32 MB of transient ``int64``).
_DENSE_SLOTS_CAP = 1 << 22


def _dense_ok(num_slots: int, volume: int) -> bool:
    """Whether the dense count-accumulator lane pays for ``num_slots``."""
    return num_slots <= _DENSE_SLOTS_MIN or (
        num_slots <= _DENSE_SLOTS_CAP
        and num_slots <= _DENSE_VOLUME_FACTOR * volume
    )


@dataclass(frozen=True, slots=True)
class PlannerStats:
    """Work accounting of one planned collection.

    ``terms_skipped`` counts query terms whose postings never entered
    the merge stream: absent terms (df=0) plus every term left unopened
    by the top-k cut.  ``postings_skipped`` counts the postings entries
    of those unopened terms that pointed at trajectories outside the
    materialized candidate table — the entries exhaustive collection
    would have concatenated, uniqued, and then thrown away.
    ``postings_bytes_avoided`` is that in ``int64`` bytes.
    ``collection_cut`` records whether the threshold actually stopped
    collection (False means the corpus/query offered nothing to skip
    beyond df=0 terms).
    """

    terms_total: int = 0
    terms_opened: int = 0
    terms_skipped: int = 0
    postings_skipped: int = 0
    postings_bytes_avoided: int = 0
    collection_cut: bool = False


#: Accounting of the trivial (no terms / not plannable) collection.
EMPTY_PLAN = PlannerStats()


class PostingsSource(Protocol):
    """What the planner needs from a postings backend."""

    def term_counts(self, terms: Sequence[int]) -> np.ndarray:
        """Document frequency per term (``int64``, 0 when absent)."""
        ...

    def open_terms(self, terms: Sequence[int]) -> np.ndarray:
        """Concatenated postings stream of the given terms.

        Multiplicity is meaningful (one entry per (term, doc) pairing);
        absent terms contribute nothing.  Both collection lanes consume
        a flat stream, so sources return one instead of per-term chunks.
        """
        ...

    def complete(
        self,
        terms: Sequence[int],
        candidates: np.ndarray,
        hi: int | None = None,
    ) -> tuple[np.ndarray, int]:
        """Count, per sorted candidate, its hits among ``terms``.

        Returns ``(delta_counts, postings_skipped)`` where
        ``delta_counts`` aligns with ``candidates`` and
        ``postings_skipped`` counts postings entries outside the
        candidate table.  ``hi`` is an optional exclusive upper bound on
        every internal id involved (the planner passes its slot-table
        size) so local counting can skip a max-scan; remote sources may
        ignore it.
        """
        ...


class StoreSource:
    """A single :class:`PostingsStore` as a planner source."""

    __slots__ = ("store",)

    def __init__(self, store: PostingsStore) -> None:
        self.store = store

    def term_counts(self, terms: Sequence[int]) -> np.ndarray:
        return self.store.term_counts(terms)

    def open_terms(self, terms: Sequence[int]) -> np.ndarray:
        return self.store.hits(list(terms))

    def complete(
        self,
        terms: Sequence[int],
        candidates: np.ndarray,
        hi: int | None = None,
    ) -> tuple[np.ndarray, int]:
        return complete_counts(self.store, terms, candidates, hi)


def complete_counts(
    store: PostingsStore,
    terms: Sequence[int],
    candidates: np.ndarray,
    hi: int | None = None,
) -> tuple[np.ndarray, int]:
    """Membership-count ``terms``' postings against a sorted id table.

    The post-cut half of the planner, shared by every backend (the
    shard worker runs it worker-side so skipped postings never cross
    the wire).  When the id universe is dense relative to the completed
    volume, one ``bincount`` over the concatenated stream counts every
    slot and the candidate rows are gathered out — ``O(V + slots)``
    with no sort at all.  Sparse universes fall back to one
    ``searchsorted`` probe of the stream into the sorted ``candidates``
    table — ``O(V log C)``.  Both are strictly cheaper than the
    ``O(V log V)`` sort the exhaustive merge would spend on the same
    postings, and one vectorized call instead of a per-term loop.
    """
    if len(candidates) == 0:
        # No live candidates: nothing to count, every posting of every
        # present term is skipped (df reads only, no postings fetch).
        skipped = int(store.term_counts(list(terms)).sum())
        return np.zeros(0, dtype=np.int64), skipped
    return count_hits(store.hits(list(terms)), candidates, hi)


def count_hits(
    stream: np.ndarray, candidates: np.ndarray, hi: int | None = None
) -> tuple[np.ndarray, int]:
    """Count stream entries per sorted candidate; the rest are skipped.

    The counting core of :func:`complete_counts`, exposed so backends
    that assemble the hit stream themselves (e.g. across router-owned
    shard stores) share one vectorized pass.  ``candidates`` must be
    sorted and non-empty.  ``hi``, when given, is an exclusive upper
    bound on every id in both arrays, saving the max-scan that would
    otherwise size the dense accumulator (``np.bincount`` stays correct
    even if the bound turns out low — it grows its output to fit).
    """
    num = len(candidates)
    total = len(stream)
    if total == 0:
        return np.zeros(num, dtype=np.int64), 0
    if hi is None:
        hi = max(int(candidates[-1]), int(stream.max())) + 1
    if _dense_ok(hi, total):
        delta = np.bincount(stream, minlength=hi)[candidates]
        return delta, total - int(delta.sum())
    at = candidates.searchsorted(stream)
    at[at == num] = 0
    matched = stream == candidates[at]
    hits = int(np.count_nonzero(matched))
    delta = np.zeros(num, dtype=np.int64)
    if hits:
        delta += np.bincount(at[matched], minlength=num)
    return delta, total - hits


def plannable(limit: int | None, max_distance: float) -> bool:
    """Whether bounded collection can ever cut for these parameters.

    With no ``limit`` and ``max_distance == 1.0`` every candidate is
    returned, so the threshold never drops below 1.0 and planning is
    pure overhead.
    """
    return limit is not None or max_distance < 1.0


def unseen_lower_bound(remaining: int, query_size: int) -> float:
    """Best distance any not-yet-seen candidate can still reach.

    With ``remaining`` terms unopened, an unseen trajectory shares at
    most ``remaining`` terms, minimized union at ``|T| = remaining``:
    ``1 - remaining / |Q|``.  Evaluated with the scoring engine's own
    float64 ops; IEEE-754 rounding is monotone, so this is a true lower
    bound of any float distance the engine can produce for such a
    candidate.
    """
    if remaining >= query_size:
        return 0.0
    return 1.0 - remaining / query_size


def _threshold(
    counts: np.ndarray,
    cand_cards: np.ndarray,
    query_size: int,
    limit: int | None,
    max_distance: float,
) -> float:
    """Distance no unseen candidate may merely match (sound, strict).

    The k-th smallest partial-count distance over live candidates is an
    upper bound on the final k-th best (each final distance only drops
    as counts complete), combined with ``max_distance`` when that is
    tighter.  With fewer than ``limit`` live candidates the top-k arm
    yields no bound and only the range bound applies.
    """
    if limit is None:
        return max_distance
    live = cand_cards >= 0
    n_live = int(np.count_nonzero(live))
    if n_live < limit:
        return max_distance
    live_counts = counts[live]
    union = query_size + cand_cards[live] - live_counts
    upper = 1.0 - live_counts / union
    kth = float(np.partition(upper, limit - 1)[limit - 1])
    return kth if kth < max_distance else max_distance


def _merge_pending(
    cand_ids: np.ndarray,
    cand_counts: np.ndarray,
    stream: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold a newly opened postings stream into the candidate table."""
    new_ids, new_counts = np.unique(stream, return_counts=True)
    if not len(cand_ids):
        return new_ids, new_counts
    combined = np.union1d(cand_ids, new_ids)
    counts = np.zeros(len(combined), dtype=np.int64)
    counts[np.searchsorted(combined, cand_ids)] = cand_counts
    counts[np.searchsorted(combined, new_ids)] += new_counts
    return combined, counts


def _collect_dynamic(
    source: PostingsSource,
    ordered_terms: list[int],
    ordered_dfs: np.ndarray,
    bounds: np.ndarray,
    static_cut: int,
    static_volume: int,
    acc: np.ndarray | None,
    cards: np.ndarray,
    query_size: int,
    limit: int | None,
    max_distance: float,
) -> tuple[int, np.ndarray, np.ndarray]:
    """Batched collection under the running top-k threshold.

    Returns ``(cut_at, cand_ids, cand_counts)``; with a dense
    accumulator (``acc`` not None) counts land there instead and the
    returned table stays empty for the caller to materialize.
    """
    m = len(ordered_terms)
    dense = acc is not None
    # volume[j] = postings volume of the first j terms in open order.
    volume = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(ordered_dfs)]
    )
    cand_ids: np.ndarray = EMPTY_HITS
    cand_counts: np.ndarray = EMPTY_HITS
    flushed_volume = 0
    threshold = max_distance
    opened_upto = 0

    while True:
        # First position the current threshold forbids; sound because
        # the threshold only tightens as counts complete.
        allowed = int(np.searchsorted(bounds, threshold, side="right"))
        if allowed <= opened_upto or opened_upto == m:
            break
        if static_cut < m:
            # A range cut is coming regardless: space the remaining
            # checkpoints over the volume left before it instead of
            # doubling up from tiny batches.
            target = max(
                _MIN_FLUSH,
                flushed_volume,
                (static_volume - flushed_volume + 1) // 2,
            )
        else:
            # Checkpoint when the pending volume has doubled the opened
            # volume: total merge work stays a small multiple of one
            # exhaustive merge, and the threshold refreshes *before*
            # committing to a frequent term's postings.
            target = max(_MIN_FLUSH, flushed_volume)
        end = int(
            np.searchsorted(volume, flushed_volume + target, side="left")
        )
        end = max(opened_upto + 1, min(end, allowed))
        # One source round-trip per batch (a transport-backed source
        # scatters it whole).
        stream = source.open_terms(ordered_terms[opened_upto:end])
        if len(stream):
            if dense:
                acc += np.bincount(stream, minlength=len(acc))
            else:
                cand_ids, cand_counts = _merge_pending(
                    cand_ids, cand_counts, stream
                )
        flushed_volume = int(volume[end])
        opened_upto = end
        if end == m or limit is None:
            # Only the range bound applies below ``limit``; with no
            # top-k arm there is never a threshold to refresh.
            continue
        if dense:
            cmax = int(acc.max())
        else:
            cmax = int(cand_counts.max()) if len(cand_counts) else 0
        # O(1) guard: no partial-distance upper bound can fall below
        # 1 - cmax/|Q| (the union is never smaller than |Q|), so a
        # refresh that cannot tighten the threshold is skipped.
        if cmax <= 0 or 1.0 - cmax / query_size >= threshold:
            continue
        if dense:
            ids = np.flatnonzero(acc)
            counts = acc[ids]
        else:
            ids, counts = cand_ids, cand_counts
        threshold = _threshold(
            counts, cards[ids], query_size, limit, max_distance
        )
    return opened_upto, cand_ids, cand_counts


def collect_planned(
    source: PostingsSource,
    terms: Sequence[int],
    query_size: int,
    cards: np.ndarray,
    limit: int | None,
    max_distance: float = 1.0,
) -> tuple[MatchCounts, PlannerStats]:
    """Bounded candidate collection; drop-in for hits + ``merge_hits``.

    Returns the same ``(internal_ids, shared_term_counts)`` table the
    exhaustive path produces for every trajectory that can appear in
    the final ranking, plus the planner's work accounting.  ``cards``
    is the per-slot cardinality column (negative = tombstone) the
    threshold needs for partial-distance upper bounds.

    Two collection lanes share the control flow.  When the slot table
    is dense relative to the query's postings volume (:func:`_dense_ok`
    over ``len(cards)``), opened postings are counted straight into a
    slot-indexed accumulator — one ``bincount`` per batch, no sorted
    merges — and the candidate table is materialized once at the end.
    Sparse universes keep the incremental ``np.unique``/``union1d``
    merge.  Scheduling is adaptive: when the ``max_distance`` bound
    alone already cuts off most of the postings volume, the allowed
    prefix is opened in one shot with no threshold bookkeeping at all;
    otherwise :func:`_collect_dynamic` runs checkpointed batches under
    the running k-th-best threshold, where a refresh is only *computed*
    when it can matter — every partial-distance upper bound is at least
    ``1 - cmax/|Q|`` for the largest partial count ``cmax`` (the union
    is never smaller than ``|Q|``), so when that floor already meets
    the current threshold the ``O(candidates)`` refresh is skipped.
    """
    n_terms = len(terms)
    if n_terms == 0:
        return (EMPTY_HITS, EMPTY_HITS), EMPTY_PLAN
    # Deterministic open order: df ascending, term value breaking ties.
    sorted_terms = np.sort(np.asarray(list(terms), dtype=np.int64))
    dfs = np.asarray(source.term_counts(sorted_terms.tolist()), dtype=np.int64)
    present = dfs > 0
    absent = n_terms - int(np.count_nonzero(present))
    ordered_dfs = dfs[present]
    order = np.argsort(ordered_dfs, kind="stable")
    ordered_dfs = ordered_dfs[order]
    ordered_terms = sorted_terms[present][order].tolist()
    m = len(ordered_terms)

    num_slots = len(cards)
    total_volume = int(ordered_dfs.sum())
    dense = _dense_ok(num_slots, total_volume)
    # Unseen-candidate floor per open position, precomputed with the
    # same float64 ops as :func:`unseen_lower_bound`.  It is
    # non-decreasing, so "first position the current threshold forbids"
    # is a binary search, not a per-term loop — and the latest position
    # the range bound alone permits (``static_cut``) is known up front.
    bounds = 1.0 - np.arange(m, 0, -1, dtype=np.int64) / query_size
    np.maximum(bounds, 0.0, out=bounds)
    static_cut = int(np.searchsorted(bounds, max_distance, side="right"))
    static_volume = int(ordered_dfs[:static_cut].sum())

    acc = np.zeros(num_slots, dtype=np.int64) if dense else None
    cand_ids: np.ndarray = EMPTY_HITS
    cand_counts: np.ndarray = EMPTY_HITS

    if static_cut < m and 4 * static_volume <= total_volume:
        # One-shot static schedule: the range bound alone already cuts
        # off at least 3/4 of the postings volume, so the dynamic
        # threshold machinery can only trim the cheap quarter further —
        # its per-checkpoint cost outweighs that.  Open the whole
        # allowed prefix in one batch and go straight to completion
        # (opening *more* terms than a tighter threshold would is
        # always answer-safe: the table is a superset with exact
        # counts either way).
        stream = source.open_terms(ordered_terms[:static_cut])
        if len(stream):
            if dense:
                acc += np.bincount(stream, minlength=num_slots)
            else:
                cand_ids, cand_counts = _merge_pending(
                    cand_ids, cand_counts, stream
                )
        cut_at = static_cut
    else:
        cut_at, cand_ids, cand_counts = _collect_dynamic(
            source,
            ordered_terms,
            ordered_dfs,
            bounds,
            static_cut,
            static_volume,
            acc,
            cards,
            query_size,
            limit,
            max_distance,
        )

    if dense:
        cand_ids = np.flatnonzero(acc).astype(np.int64, copy=False)
        cand_counts = acc[cand_ids]

    opened = cut_at
    skipped_terms = absent + (m - opened)
    postings_skipped = 0
    if cut_at < m:
        leftover = ordered_terms[cut_at:]
        delta, postings_skipped = source.complete(
            leftover, cand_ids, num_slots
        )
        if len(cand_counts):
            cand_counts = cand_counts + delta
    stats = PlannerStats(
        terms_total=n_terms,
        terms_opened=opened,
        terms_skipped=skipped_terms,
        postings_skipped=postings_skipped,
        postings_bytes_avoided=8 * postings_skipped,
        collection_cut=cut_at < m,
    )
    return (cand_ids, cand_counts), stats
