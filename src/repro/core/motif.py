"""Motif discovery over fingerprint windows (paper Section VI-C).

The paper translates a ground length ``l`` (meters) into a number of
fingerprints ``f = l * a`` — where ``a`` is the dataset's average
fingerprint density per meter — and then searches, over all pairs of
``f``-sized windows of the two trajectories' *ordered* fingerprint sets,
the pair minimizing the Jaccard distance.  The result approximates the
exact DFD-optimal motif pair (computed by the BTM baseline in
:mod:`repro.baselines.btm`) at a tiny fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..geo.point import Trajectory, path_length
from .config import GeodabConfig
from .fingerprint import Fingerprinter, FingerprintSet

__all__ = ["MotifMatch", "discover_motif", "find_common_motif"]


@dataclass(frozen=True, slots=True)
class MotifMatch:
    """Best-matching pair of fingerprint windows of two trajectories.

    ``window_i``/``window_j`` are half-open ranges over the trajectories'
    *selection* lists; ``span_i``/``span_j`` are the corresponding
    half-open ranges over the normalized cell sequences (k-gram start of
    the first selection to k-gram end of the last).
    """

    distance: float
    window_i: tuple[int, int]
    window_j: tuple[int, int]
    span_i: tuple[int, int]
    span_j: tuple[int, int]

    @property
    def jaccard(self) -> float:
        """Jaccard coefficient of the two windows."""
        return 1.0 - self.distance


def _window_sets(values: Sequence[int], size: int) -> list[frozenset[int]]:
    """Distinct-value sets of every ``size``-window, via incremental counts."""
    n = len(values)
    if n < size:
        return []
    counts: dict[int, int] = {}
    for v in values[:size]:
        counts[v] = counts.get(v, 0) + 1
    out = [frozenset(counts)]
    for i in range(size, n):
        incoming = values[i]
        outgoing = values[i - size]
        counts[incoming] = counts.get(incoming, 0) + 1
        remaining = counts[outgoing] - 1
        if remaining:
            counts[outgoing] = remaining
        else:
            del counts[outgoing]
        out.append(frozenset(counts))
    return out


def discover_motif(
    fp_i: FingerprintSet,
    fp_j: FingerprintSet,
    num_fingerprints: int,
    k: int,
) -> MotifMatch | None:
    """Best pair of ``num_fingerprints``-sized windows by Jaccard distance.

    Brute force over all window pairs, as the paper does ("a brute force
    implementation of this method gives good results" — the ordered sets
    are small).  Ties resolve to the earliest pair for determinism.
    Returns ``None`` when either trajectory has fewer selections than the
    window size.
    """
    if num_fingerprints < 1:
        raise ValueError("num_fingerprints must be positive")
    values_i = fp_i.values
    values_j = fp_j.values
    windows_i = _window_sets(values_i, num_fingerprints)
    windows_j = _window_sets(values_j, num_fingerprints)
    if not windows_i or not windows_j:
        return None
    best_distance = 2.0
    best_pair = (0, 0)
    for a, set_a in enumerate(windows_i):
        for b, set_b in enumerate(windows_j):
            inter = len(set_a & set_b)
            if inter == 0:
                distance = 1.0
            else:
                union = len(set_a) + len(set_b) - inter
                distance = 1.0 - inter / union
            if distance < best_distance:
                best_distance = distance
                best_pair = (a, b)
    a, b = best_pair
    positions_i = fp_i.positions
    positions_j = fp_j.positions
    span_i = (positions_i[a], positions_i[a + num_fingerprints - 1] + k)
    span_j = (positions_j[b], positions_j[b + num_fingerprints - 1] + k)
    return MotifMatch(
        distance=best_distance,
        window_i=(a, a + num_fingerprints),
        window_j=(b, b + num_fingerprints),
        span_i=span_i,
        span_j=span_j,
    )


def find_common_motif(
    trajectory_i: Trajectory,
    trajectory_j: Trajectory,
    length_m: float,
    fingerprinter: Fingerprinter | GeodabConfig | None = None,
) -> MotifMatch | None:
    """End-to-end motif discovery between two (normalized) trajectories.

    Estimates the fingerprint density ``a`` from the two trajectories,
    translates ``length_m`` into ``f = max(1, round(length_m * a))``
    fingerprints, and runs :func:`discover_motif`.  Returns ``None`` when
    either trajectory yields too few fingerprints for a window.
    """
    if length_m <= 0.0:
        raise ValueError("length_m must be positive")
    if not isinstance(fingerprinter, Fingerprinter):
        fingerprinter = Fingerprinter(fingerprinter)
    fp_i = fingerprinter.fingerprint(trajectory_i)
    fp_j = fingerprinter.fingerprint(trajectory_j)
    total_selections = len(fp_i.selections) + len(fp_j.selections)
    total_length = path_length(trajectory_i) + path_length(trajectory_j)
    if total_selections == 0 or total_length <= 0.0:
        return None
    density = total_selections / total_length
    window = max(1, round(length_m * density))
    return discover_motif(fp_i, fp_j, window, fingerprinter.config.k)
