"""Exact re-rank stage of the tiered query pipeline.

The fingerprint Jaccard tier (:mod:`repro.core.scoring`) is a cheap
filter: it collects ``limit * overfetch`` candidates without computing a
single trajectory distance.  This module is the refine step — the
N-tree exact-kNN / Fréchet-proximity-index pattern from the related
work: recompute the survivors' distances *exactly* with DTW or discrete
Fréchet and return exact kNN / range answers.

Pruning never changes the answer.  Per candidate the stage computes a
cheap lower bound ``lb`` (endpoint couplings every alignment must pay)
and a cheap upper bound ``ub`` (the cost of one concrete valid
coupling: a greedy walk for Fréchet, the diagonal path for DTW).  With
``T`` the k-th smallest upper bound (kNN) or the radius (range), any
candidate with ``lb > T`` is skipped: its exact distance is at least
``lb > T``, while at least ``k`` candidates have exact distances
``<= T`` (each is bounded by its own ``ub``), so the skipped candidate
cannot enter the top ``k`` — even under distance ties, because its
distance is *strictly* above the threshold.  Everything not skipped
gets the full dynamic program, so results match the brute-force oracle
exactly (the property tests assert identity, the re-rank benchmark
cross-checks it at corpus scale).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from ..distance.dtw import dtw, dtw_banded
from ..distance.frechet import discrete_frechet, greedy_frechet_upper_bound
from ..geo.point import Point, Trajectory, haversine
from .query import QuerySpec
from .scoring import SearchResult

__all__ = [
    "ExactSearchUnsupported",
    "RerankStats",
    "exact_distance",
    "exact_search",
    "rerank_candidates",
]


class ExactSearchUnsupported(RuntimeError):
    """The index cannot serve exact queries (no stored raw points).

    Raised before any work happens — typically because the index was
    built with ``store_points=False`` or warm-started from a snapshot
    (snapshots persist postings and bitmaps, never raw trajectories).
    The HTTP layer maps this to a structured 400.
    """


@dataclass(frozen=True, slots=True)
class RerankStats:
    """Work accounting for one re-rank pass.

    ``candidates`` entered the stage from the Jaccard tier, ``computed``
    paid the full O(n*m) dynamic program, ``pruned`` were eliminated by
    the bound test alone.
    """

    candidates: int
    computed: int
    pruned: int


def exact_distance(p: Trajectory, q: Trajectory, spec: QuerySpec) -> float:
    """The spec's exact trajectory distance, in meters.

    This is the *definition* of the metric the tiered pipeline answers
    in: the re-rank stage, the brute-force oracle, and the tests all
    call it, so they cannot disagree.  For ``dtw`` with a ``band`` the
    Sakoe-Chiba half-width is widened to at least ``|len(p) - len(q)|``
    so an in-band alignment always exists (the distance is then finite
    and well-defined for every candidate pair).
    """
    if spec.metric == "dtw":
        if spec.band is None:
            return dtw(p, q)
        return dtw_banded(p, q, max(spec.band, abs(len(p) - len(q))))
    if spec.metric == "frechet":
        return discrete_frechet(p, q)
    raise ValueError(f"no exact distance for metric {spec.metric!r}")


def _lower_bound(p: Trajectory, q: Trajectory, spec: QuerySpec) -> float:
    """A distance every alignment must pay (O(1) haversines).

    Both metrics couple the first pair and the last pair of points.
    For DTW the costs add (unless the alignment is the single cell of
    two length-1 trajectories, where they would double count); for the
    discrete Fréchet distance the leash must cover the larger one.
    Banded DTW only *restricts* alignments, so the unbanded bound holds.
    """
    first = haversine(p[0], q[0])
    last = haversine(p[-1], q[-1])
    if spec.metric == "dtw":
        if len(p) == 1 and len(q) == 1:
            return first
        return first + last
    return first if first > last else last


def _dtw_upper_bound(p: Trajectory, q: Trajectory) -> float:
    """Cost of the diagonal-then-edge coupling (O(n + m) haversines).

    Pair ``p[i]`` with ``q[i]`` along the diagonal, then walk the longer
    trajectory's tail against the shorter one's endpoint.  That is one
    concrete valid warping path, so its summed cost bounds DTW from
    above — and it deviates from the diagonal by at most
    ``|len(p) - len(q)|`` steps, so it stays inside the widened band
    :func:`exact_distance` uses and bounds the banded distance too.
    """
    n, m = len(p), len(q)
    shared = n if n < m else m
    total = 0.0
    for i in range(shared):
        total += haversine(p[i], q[i])
    for i in range(shared, n):
        total += haversine(p[i], q[m - 1])
    for j in range(shared, m):
        total += haversine(p[n - 1], q[j])
    return total


def _upper_bound(p: Trajectory, q: Trajectory, spec: QuerySpec) -> float:
    if spec.metric == "dtw":
        return _dtw_upper_bound(p, q)
    return greedy_frechet_upper_bound(p, q)


def _kth_smallest(values: list[float], k: int) -> float:
    """The k-th smallest value, or +inf when there are fewer than k."""
    if len(values) < k:
        return math.inf
    return sorted(values)[k - 1]


def rerank_candidates(
    query_points: Sequence[Point],
    candidates: Sequence[SearchResult],
    spec: QuerySpec,
    points_of: Callable[[Hashable], Trajectory],
    map_fn: Callable | None = None,
) -> tuple[list[SearchResult], RerankStats]:
    """Exact re-rank of the Jaccard tier's survivors.

    ``points_of`` resolves a candidate's trajectory id to its stored raw
    points (the arena column populated by ``store_points=True``).
    ``map_fn`` runs the surviving dynamic programs — pass a worker
    pool's ``map`` to spread them over the executor's threads, default
    is the builtin.  Results keep each candidate's tier-1
    ``shared_terms`` so responses stay shape-compatible; ``distance``
    becomes the exact metric distance in meters.  Ordering is
    ``(distance, str(id))`` — the same deterministic tie-break as the
    Jaccard tier.
    """
    if not query_points:
        raise ValueError("exact query requires a non-empty trajectory")
    query = list(query_points)
    fetched = [(result, points_of(result.trajectory_id)) for result in candidates]
    bounds = [
        (_lower_bound(query, points, spec), _upper_bound(query, points, spec))
        for _, points in fetched
    ]
    if spec.mode == "exact_knn":
        assert spec.limit is not None
        threshold = _kth_smallest([ub for _, ub in bounds], spec.limit)
    else:
        assert spec.max_distance is not None
        threshold = spec.max_distance
    survivors = [
        (result, points)
        for (result, points), (lb, _) in zip(fetched, bounds)
        if lb <= threshold
    ]
    mapper = map_fn if map_fn is not None else map
    distances: Iterable[float] = mapper(
        lambda pair: exact_distance(query, pair[1], spec), survivors
    )
    scored = [
        SearchResult(result.trajectory_id, distance, result.shared_terms)
        for (result, _), distance in zip(survivors, distances)
    ]
    if spec.mode == "exact_range":
        assert spec.max_distance is not None
        scored = [r for r in scored if r.distance <= spec.max_distance]
    scored.sort(key=lambda r: (r.distance, str(r.trajectory_id)))
    if spec.limit is not None:
        scored = scored[: spec.limit]
    stats = RerankStats(
        candidates=len(fetched),
        computed=len(survivors),
        pruned=len(fetched) - len(survivors),
    )
    return scored, stats


def exact_search(
    query_points: Sequence[Point],
    items: Iterable[tuple[Hashable, Trajectory]],
    spec: QuerySpec,
) -> list[SearchResult]:
    """Brute-force exact search over ``(id, points)`` pairs (the oracle).

    Computes :func:`exact_distance` against *every* item — no
    fingerprint tier, no bounds — then applies the spec's mode.  Tests
    and the re-rank benchmark compare the tiered pipeline against this.
    ``shared_terms`` is reported as 0 (no fingerprint tier ran).
    """
    query = list(query_points)
    scored = [
        SearchResult(trajectory_id, exact_distance(query, list(points), spec), 0)
        for trajectory_id, points in items
    ]
    if spec.mode == "exact_range":
        assert spec.max_distance is not None
        scored = [r for r in scored if r.distance <= spec.max_distance]
    scored.sort(key=lambda r: (r.distance, str(r.trajectory_id)))
    if spec.limit is not None:
        scored = scored[: spec.limit]
    return scored
